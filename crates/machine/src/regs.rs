//! Register files, register references and register classes.
//!
//! The survey stresses (§2.1.3) that "the microregister set is generally not
//! homogeneous": which operations apply to a value depends on where it
//! lives. We model this with *register classes* — each micro-operation
//! template constrains each operand to a class, and the register allocator
//! must honour those classes.

use serde::{Deserialize, Serialize};

use crate::ids::FileId;

/// A register file: a named, uniformly-sized group of registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegisterFile {
    /// File name, e.g. `"R"` (general purpose) or `"LS"` (local store).
    pub name: String,
    /// Number of registers in the file.
    pub count: u16,
    /// Register width in bits.
    pub width: u16,
    /// Whether the file is part of the *macro*architecture — i.e. saved at
    /// microprogram entry and restored when a microtrap restarts the
    /// program (see the `incread` example of §2.1.5 of the paper).
    pub macro_visible: bool,
}

impl RegisterFile {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, count: u16, width: u16, macro_visible: bool) -> Self {
        RegisterFile {
            name: name.into(),
            count,
            width,
            macro_visible,
        }
    }
}

/// A reference to one concrete register: a file and an index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegRef {
    /// The register file.
    pub file: FileId,
    /// Index within the file.
    pub index: u16,
}

impl RegRef {
    /// Creates a reference to register `index` of `file`.
    pub fn new(file: FileId, index: u16) -> Self {
        RegRef { file, index }
    }
}

impl std::fmt::Display for RegRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}:{}", self.file.0, self.index)
    }
}

/// A register class: the set of registers admissible as a particular
/// operand. Classes are unions of contiguous ranges of register files.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegClass {
    /// Class name, e.g. `"gp"`, `"alu_left"`, `"mar_only"`.
    pub name: String,
    /// The member ranges: `(file, first_index, count)`.
    pub ranges: Vec<(FileId, u16, u16)>,
}

impl RegClass {
    /// Creates a class covering one whole file.
    pub fn whole_file(name: impl Into<String>, file: FileId, count: u16) -> Self {
        RegClass {
            name: name.into(),
            ranges: vec![(file, 0, count)],
        }
    }

    /// Creates a class covering exactly one register.
    pub fn singleton(name: impl Into<String>, reg: RegRef) -> Self {
        RegClass {
            name: name.into(),
            ranges: vec![(reg.file, reg.index, 1)],
        }
    }

    /// Creates a class from explicit ranges.
    pub fn from_ranges(name: impl Into<String>, ranges: Vec<(FileId, u16, u16)>) -> Self {
        RegClass {
            name: name.into(),
            ranges,
        }
    }

    /// Whether `reg` belongs to the class.
    pub fn contains(&self, reg: RegRef) -> bool {
        self.ranges
            .iter()
            .any(|&(f, lo, n)| f == reg.file && reg.index >= lo && reg.index < lo + n)
    }

    /// Total number of member registers.
    pub fn size(&self) -> usize {
        self.ranges.iter().map(|&(_, _, n)| n as usize).sum()
    }

    /// Enumerates all member registers in a canonical order (range order).
    /// The position of a register in this enumeration is its *encoding*
    /// when a control field selects among the members of the class.
    pub fn members(&self) -> impl Iterator<Item = RegRef> + '_ {
        self.ranges
            .iter()
            .flat_map(|&(f, lo, n)| (lo..lo + n).map(move |i| RegRef::new(f, i)))
    }

    /// The canonical encoding of `reg` within the class, if it is a member.
    pub fn encoding_of(&self, reg: RegRef) -> Option<u64> {
        self.members().position(|r| r == reg).map(|p| p as u64)
    }

    /// The member register with canonical encoding `code`, if in range.
    pub fn member_at(&self, code: u64) -> Option<RegRef> {
        self.members().nth(code as usize)
    }

    /// Minimum field width (bits) needed to encode a member selector.
    pub fn selector_bits(&self) -> u16 {
        let n = self.size().max(1);
        (usize::BITS - (n - 1).leading_zeros()).max(1) as u16
    }
}

/// Well-known special register roles a machine may designate.
///
/// The simulator and several passes need to find "the MAR", "the flags
/// register", etc. without string matching; machines record them here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecialRegs {
    /// Memory address register.
    pub mar: Option<RegRef>,
    /// Memory buffer (data) register.
    pub mbr: Option<RegRef>,
    /// Condition flags pseudo-register (Z, N, C, V, UF packed as bits).
    pub flags: Option<RegRef>,
    /// Accumulator, when the machine has a distinguished one.
    pub acc: Option<RegRef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_membership_and_encoding() {
        let c = RegClass::from_ranges("mix", vec![(FileId(0), 0, 4), (FileId(1), 2, 2)]);
        assert_eq!(c.size(), 6);
        assert!(c.contains(RegRef::new(FileId(0), 3)));
        assert!(!c.contains(RegRef::new(FileId(0), 4)));
        assert!(c.contains(RegRef::new(FileId(1), 2)));
        assert!(!c.contains(RegRef::new(FileId(1), 1)));

        // Canonical encodings walk the ranges in order.
        assert_eq!(c.encoding_of(RegRef::new(FileId(0), 0)), Some(0));
        assert_eq!(c.encoding_of(RegRef::new(FileId(1), 2)), Some(4));
        assert_eq!(c.member_at(5), Some(RegRef::new(FileId(1), 3)));
        assert_eq!(c.member_at(6), None);
    }

    #[test]
    fn selector_bits_rounds_up() {
        let c1 = RegClass::whole_file("r16", FileId(0), 16);
        assert_eq!(c1.selector_bits(), 4);
        let c2 = RegClass::whole_file("r17", FileId(0), 17);
        assert_eq!(c2.selector_bits(), 5);
        let c3 = RegClass::singleton("one", RegRef::new(FileId(0), 0));
        assert_eq!(c3.selector_bits(), 1);
    }

    #[test]
    fn whole_file_and_singleton() {
        let f = RegClass::whole_file("gp", FileId(2), 8);
        assert_eq!(f.size(), 8);
        assert!(f.contains(RegRef::new(FileId(2), 7)));
        let s = RegClass::singleton("acc", RegRef::new(FileId(3), 0));
        assert_eq!(s.size(), 1);
        assert_eq!(s.encoding_of(RegRef::new(FileId(3), 0)), Some(0));
    }

    #[test]
    fn display_of_regref() {
        assert_eq!(RegRef::new(FileId(1), 9).to_string(), "f1:9");
    }
}
