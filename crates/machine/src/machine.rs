//! The machine description proper, its validation, and the micro-operation
//! conflict oracle.

use serde::{Deserialize, Serialize};

use crate::field::ControlWordFormat;
use crate::ids::{ClassId, FileId, ResourceId, TemplateId};
use crate::op::{BoundOp, MicroInstr};
use crate::regs::{RegClass, RegRef, RegisterFile, SpecialRegs};
use crate::resource::Resource;
use crate::semantic::{CondKind, Semantic};
use crate::template::{FieldValueSrc, MicroOpTemplate, SrcSpec};

/// Which conflict model the compactor uses (experiment E2 compares them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConflictModel {
    /// Coarse: two operations touching the same resource conflict no matter
    /// the phases — the classic "one user per unit per cycle" model.
    #[default]
    Coarse,
    /// Fine: occupancies conflict only when their phase intervals overlap
    /// (Tokoro et al.'s resource-occupancy model).
    Fine,
}

/// Errors found while validating a machine description or a bound
/// operation against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The control word format is malformed.
    BadControlWord(String),
    /// A template references a missing field/class/resource.
    DanglingRef(String),
    /// A constant does not fit the field it is assigned to.
    FieldOverflow(String),
    /// An occupancy extends past the machine's last phase.
    PhaseOutOfRange(String),
    /// A bound op does not match its template's operand specification.
    OperandMismatch(String),
    /// Two operations in one microinstruction conflict.
    Conflict(String),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::BadControlWord(s) => write!(f, "bad control word: {s}"),
            MachineError::DanglingRef(s) => write!(f, "dangling reference: {s}"),
            MachineError::FieldOverflow(s) => write!(f, "field overflow: {s}"),
            MachineError::PhaseOutOfRange(s) => write!(f, "phase out of range: {s}"),
            MachineError::OperandMismatch(s) => write!(f, "operand mismatch: {s}"),
            MachineError::Conflict(s) => write!(f, "microinstruction conflict: {s}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// A complete microarchitecture description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineDesc {
    /// Machine name, e.g. `"HM-1"`.
    pub name: String,
    /// Datapath width in bits.
    pub word_bits: u16,
    /// Number of phases per microcycle.
    pub phases: u8,
    /// The control word format.
    pub control: ControlWordFormat,
    /// Register files.
    pub files: Vec<RegisterFile>,
    /// Register classes.
    pub classes: Vec<RegClass>,
    /// Hardware resources.
    pub resources: Vec<Resource>,
    /// Micro-operation templates.
    pub templates: Vec<MicroOpTemplate>,
    /// Testable conditions; the encoding of a condition is its index here.
    pub conditions: Vec<CondKind>,
    /// Designated special registers.
    pub special: SpecialRegs,
    /// File used by the register allocator for spills (a local store).
    pub scratch_file: Option<FileId>,
    /// Cycles charged for servicing one interrupt (experiment E7).
    pub interrupt_service_cycles: u64,
    /// Cycles charged for servicing one microtrap/page fault.
    pub trap_service_cycles: u64,
}

impl MachineDesc {
    /// Creates an empty machine with the given name, datapath width and
    /// phase count.
    pub fn new(name: impl Into<String>, word_bits: u16, phases: u8) -> Self {
        MachineDesc {
            name: name.into(),
            word_bits,
            phases,
            control: ControlWordFormat::new(),
            files: Vec::new(),
            classes: Vec::new(),
            resources: Vec::new(),
            templates: Vec::new(),
            conditions: Vec::new(),
            special: SpecialRegs::default(),
            scratch_file: None,
            interrupt_service_cycles: 50,
            trap_service_cycles: 400,
        }
    }

    // ---- construction -----------------------------------------------------

    /// Adds a register file and returns its id.
    pub fn add_file(&mut self, file: RegisterFile) -> FileId {
        let id = FileId(self.files.len() as u16);
        self.files.push(file);
        id
    }

    /// Adds a register class and returns its id.
    pub fn add_class(&mut self, class: RegClass) -> ClassId {
        let id = ClassId(self.classes.len() as u16);
        self.classes.push(class);
        id
    }

    /// Adds a resource and returns its id.
    pub fn add_resource(&mut self, res: Resource) -> ResourceId {
        let id = ResourceId(self.resources.len() as u16);
        self.resources.push(res);
        id
    }

    /// Adds a micro-operation template and returns its id.
    pub fn add_template(&mut self, t: MicroOpTemplate) -> TemplateId {
        let id = TemplateId(self.templates.len() as u16);
        self.templates.push(t);
        id
    }

    /// Declares a testable condition and returns its encoding index.
    pub fn add_condition(&mut self, c: CondKind) -> u64 {
        if let Some(i) = self.conditions.iter().position(|&k| k == c) {
            return i as u64;
        }
        self.conditions.push(c);
        (self.conditions.len() - 1) as u64
    }

    // ---- lookups ----------------------------------------------------------

    /// Control word width in bits.
    pub fn control_word_bits(&self) -> u16 {
        self.control.total_bits()
    }

    /// Looks a template up by id.
    pub fn template(&self, id: TemplateId) -> &MicroOpTemplate {
        &self.templates[id.index()]
    }

    /// Finds a template id by name.
    pub fn find_template(&self, name: &str) -> Option<TemplateId> {
        self.templates
            .iter()
            .position(|t| t.name == name)
            .map(|i| TemplateId(i as u16))
    }

    /// All templates realising the given semantic, in declaration order.
    pub fn templates_for(&self, sem: Semantic) -> impl Iterator<Item = TemplateId> + '_ {
        self.templates
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.semantic == sem)
            .map(|(i, _)| TemplateId(i as u16))
    }

    /// Looks a class up by id.
    pub fn class(&self, id: ClassId) -> &RegClass {
        &self.classes[id.index()]
    }

    /// Finds a class id by name.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u16))
    }

    /// Finds a register file id by name.
    pub fn find_file(&self, name: &str) -> Option<FileId> {
        self.files
            .iter()
            .position(|f| f.name == name)
            .map(|i| FileId(i as u16))
    }

    /// Looks a file up by id.
    pub fn file(&self, id: FileId) -> &RegisterFile {
        &self.files[id.index()]
    }

    /// Width in bits of the given register.
    pub fn reg_width(&self, reg: RegRef) -> u16 {
        self.file(reg.file).width
    }

    /// The encoding of a condition, if the machine can test it.
    pub fn cond_encoding(&self, c: CondKind) -> Option<u64> {
        self.conditions.iter().position(|&k| k == c).map(|i| i as u64)
    }

    /// Whether the machine can test the given condition.
    pub fn supports_cond(&self, c: CondKind) -> bool {
        self.cond_encoding(c).is_some()
    }

    /// The flags pseudo-register, when the machine has one.
    pub fn flags_reg(&self) -> Option<RegRef> {
        self.special.flags
    }

    /// Resolves a register name of the form `FILE<index>` (`R3`, `G2`,
    /// `LS7`) or a special-role name (`ACC`, `MAR`, `MBR`), as used by the
    /// register-oriented frontends. Case-insensitive.
    pub fn resolve_reg_name(&self, name: &str) -> Option<RegRef> {
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "ACC" => return self.special.acc,
            "MAR" => return self.special.mar,
            "MBR" => return self.special.mbr,
            _ => {}
        }
        let mut files: Vec<(usize, &str)> = self
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.name.as_str()))
            .collect();
        files.sort_by_key(|(_, n)| std::cmp::Reverse(n.len()));
        for (fi, fname) in files {
            if let Some(rest) = upper.strip_prefix(&fname.to_ascii_uppercase()) {
                if let Ok(idx) = rest.parse::<u16>() {
                    if idx < self.files[fi].count {
                        return Some(RegRef::new(FileId(fi as u16), idx));
                    }
                }
            }
        }
        None
    }

    // ---- def/use sets -----------------------------------------------------

    /// All registers written by a bound op (explicit destination, implicit
    /// writes, and the flags register when the template updates flags).
    pub fn write_set(&self, op: &BoundOp) -> Vec<RegRef> {
        let t = self.template(op.template);
        let mut w = Vec::with_capacity(1 + t.implicit_writes.len() + 1);
        if let Some(d) = op.dst {
            w.push(d);
        }
        w.extend_from_slice(&t.implicit_writes);
        if t.writes_flags {
            if let Some(f) = self.special.flags {
                w.push(f);
            }
        }
        w
    }

    /// All registers read by a bound op (explicit sources, implicit reads,
    /// and the flags register for condition-testing templates).
    pub fn read_set(&self, op: &BoundOp) -> Vec<RegRef> {
        let t = self.template(op.template);
        let mut r = Vec::with_capacity(op.srcs.len() + t.implicit_reads.len() + 1);
        r.extend_from_slice(&op.srcs);
        r.extend_from_slice(&t.implicit_reads);
        if t.takes_cond {
            if let Some(f) = self.special.flags {
                r.push(f);
            }
        }
        r
    }

    // ---- conflict oracle ----------------------------------------------------

    /// Whether two bound operations may share one microinstruction.
    ///
    /// They conflict when (a) they drive the same control field — unless
    /// both drive it with the same constant, (b) their resource occupancies
    /// collide under the chosen [`ConflictModel`], or (c) their write sets
    /// intersect.
    pub fn conflicts(&self, a: &BoundOp, b: &BoundOp, model: ConflictModel) -> bool {
        self.conflict_reason(a, b, model).is_some()
    }

    /// Like [`conflicts`](Self::conflicts) but reports why.
    pub fn conflict_reason(
        &self,
        a: &BoundOp,
        b: &BoundOp,
        model: ConflictModel,
    ) -> Option<String> {
        let ta = self.template(a.template);
        let tb = self.template(b.template);

        // (a) control-field conflicts (DeWitt's model).
        for fa in &ta.fields {
            for fb in &tb.fields {
                if fa.field == fb.field {
                    let compatible = matches!(
                        (fa.value, fb.value),
                        (FieldValueSrc::Const(x), FieldValueSrc::Const(y)) if x == y
                    );
                    if !compatible {
                        let name = self
                            .control
                            .get(fa.field)
                            .map(|f| f.name.clone())
                            .unwrap_or_else(|| format!("{}", fa.field));
                        return Some(format!(
                            "field `{name}` driven by both `{}` and `{}`",
                            ta.name, tb.name
                        ));
                    }
                }
            }
        }

        // (b) resource occupancy conflicts (Tokoro's model).
        for ua in &ta.occupancy {
            for ub in &tb.occupancy {
                let hit = match model {
                    ConflictModel::Coarse => ua.same_resource(ub),
                    ConflictModel::Fine => ua.overlaps(ub),
                };
                if hit {
                    let name = self
                        .resources
                        .get(ua.resource.index())
                        .map(|r| r.name.clone())
                        .unwrap_or_else(|| format!("{}", ua.resource));
                    return Some(format!(
                        "resource `{name}` occupied by both `{}` and `{}`",
                        ta.name, tb.name
                    ));
                }
            }
        }

        // (c) write/write collisions.
        let wa = self.write_set(a);
        let wb = self.write_set(b);
        for r in &wa {
            if wb.contains(r) {
                return Some(format!(
                    "register {r} written by both `{}` and `{}`",
                    ta.name, tb.name
                ));
            }
        }

        None
    }

    // ---- validation ---------------------------------------------------------

    /// Checks the machine description for internal consistency.
    pub fn validate(&self) -> Result<(), MachineError> {
        self.control
            .validate()
            .map_err(MachineError::BadControlWord)?;

        for c in &self.classes {
            for &(f, lo, n) in &c.ranges {
                let file = self
                    .files
                    .get(f.index())
                    .ok_or_else(|| MachineError::DanglingRef(format!("class `{}`: no file {f}", c.name)))?;
                if lo + n > file.count {
                    return Err(MachineError::DanglingRef(format!(
                        "class `{}` range exceeds file `{}`",
                        c.name, file.name
                    )));
                }
            }
        }

        for t in &self.templates {
            if let Some(c) = t.dst {
                self.check_class(c, &t.name)?;
            }
            for s in &t.srcs {
                if let SrcSpec::Class(c) = s {
                    self.check_class(*c, &t.name)?;
                }
            }
            for fs in &t.fields {
                let field = self.control.get(fs.field).ok_or_else(|| {
                    MachineError::DanglingRef(format!("template `{}`: no field {}", t.name, fs.field))
                })?;
                match fs.value {
                    FieldValueSrc::Const(v) => {
                        if v > field.max_value() {
                            return Err(MachineError::FieldOverflow(format!(
                                "template `{}`: constant {v} too wide for field `{}`",
                                t.name, field.name
                            )));
                        }
                    }
                    FieldValueSrc::Dst => {
                        let c = t.dst.ok_or_else(|| {
                            MachineError::DanglingRef(format!(
                                "template `{}` encodes Dst but has no destination",
                                t.name
                            ))
                        })?;
                        if self.class(c).selector_bits() > field.width {
                            return Err(MachineError::FieldOverflow(format!(
                                "template `{}`: class `{}` needs more bits than field `{}`",
                                t.name,
                                self.class(c).name,
                                field.name
                            )));
                        }
                    }
                    FieldValueSrc::Src(n) => {
                        let regs: Vec<ClassId> = t
                            .srcs
                            .iter()
                            .filter_map(|s| match s {
                                SrcSpec::Class(c) => Some(*c),
                                SrcSpec::Imm { .. } => None,
                            })
                            .collect();
                        let c = *regs.get(n as usize).ok_or_else(|| {
                            MachineError::DanglingRef(format!(
                                "template `{}` encodes Src({n}) but has fewer register sources",
                                t.name
                            ))
                        })?;
                        if self.class(c).selector_bits() > field.width {
                            return Err(MachineError::FieldOverflow(format!(
                                "template `{}`: class `{}` needs more bits than field `{}`",
                                t.name,
                                self.class(c).name,
                                field.name
                            )));
                        }
                    }
                    FieldValueSrc::Imm => {
                        let bits = t.imm_bits().ok_or_else(|| {
                            MachineError::DanglingRef(format!(
                                "template `{}` encodes Imm but takes none",
                                t.name
                            ))
                        })?;
                        if bits > field.width {
                            return Err(MachineError::FieldOverflow(format!(
                                "template `{}`: immediate of {bits} bits exceeds field `{}`",
                                t.name, field.name
                            )));
                        }
                    }
                    FieldValueSrc::Target | FieldValueSrc::Cond => {}
                }
            }
            for u in &t.occupancy {
                if self.resources.get(u.resource.index()).is_none() {
                    return Err(MachineError::DanglingRef(format!(
                        "template `{}`: no resource {}",
                        t.name, u.resource
                    )));
                }
                if u.to_phase > self.phases {
                    return Err(MachineError::PhaseOutOfRange(format!(
                        "template `{}` occupies phase {} of a {}-phase machine",
                        t.name,
                        u.to_phase - 1,
                        self.phases
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_class(&self, c: ClassId, tname: &str) -> Result<(), MachineError> {
        if self.classes.get(c.index()).is_none() {
            return Err(MachineError::DanglingRef(format!(
                "template `{tname}`: no class {c}"
            )));
        }
        Ok(())
    }

    /// Checks a bound operation against its template.
    pub fn validate_op(&self, op: &BoundOp) -> Result<(), MachineError> {
        let t = self
            .templates
            .get(op.template.index())
            .ok_or_else(|| MachineError::DanglingRef(format!("no template {}", op.template)))?;

        match (t.dst, op.dst) {
            (Some(c), Some(r)) => {
                if !self.class(c).contains(r) {
                    return Err(MachineError::OperandMismatch(format!(
                        "`{}`: destination {r} not in class `{}`",
                        t.name,
                        self.class(c).name
                    )));
                }
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(MachineError::OperandMismatch(format!(
                    "`{}`: missing destination",
                    t.name
                )))
            }
            (None, Some(_)) => {
                return Err(MachineError::OperandMismatch(format!(
                    "`{}`: unexpected destination",
                    t.name
                )))
            }
        }

        let reg_specs: Vec<ClassId> = t
            .srcs
            .iter()
            .filter_map(|s| match s {
                SrcSpec::Class(c) => Some(*c),
                SrcSpec::Imm { .. } => None,
            })
            .collect();
        if reg_specs.len() != op.srcs.len() {
            return Err(MachineError::OperandMismatch(format!(
                "`{}`: expected {} register sources, got {}",
                t.name,
                reg_specs.len(),
                op.srcs.len()
            )));
        }
        for (i, (&c, &r)) in reg_specs.iter().zip(op.srcs.iter()).enumerate() {
            if !self.class(c).contains(r) {
                return Err(MachineError::OperandMismatch(format!(
                    "`{}`: source {i} register {r} not in class `{}`",
                    t.name,
                    self.class(c).name
                )));
            }
        }

        match (t.imm_bits(), op.imm) {
            (Some(bits), Some(v)) => {
                if bits < 64 && v >= (1u64 << bits) {
                    return Err(MachineError::OperandMismatch(format!(
                        "`{}`: immediate {v} does not fit {bits} bits",
                        t.name
                    )));
                }
            }
            (None, None) => {}
            (Some(_), None) => {
                return Err(MachineError::OperandMismatch(format!(
                    "`{}`: missing immediate",
                    t.name
                )))
            }
            (None, Some(_)) => {
                return Err(MachineError::OperandMismatch(format!(
                    "`{}`: unexpected immediate",
                    t.name
                )))
            }
        }

        if t.takes_target != op.target.is_some() {
            return Err(MachineError::OperandMismatch(format!(
                "`{}`: branch target {}",
                t.name,
                if t.takes_target { "missing" } else { "unexpected" }
            )));
        }
        match (t.takes_cond, op.cond) {
            (true, Some(c)) => {
                if !self.supports_cond(c) {
                    return Err(MachineError::OperandMismatch(format!(
                        "`{}`: machine cannot test condition {c:?}",
                        t.name
                    )));
                }
            }
            (false, None) => {}
            (true, None) => {
                return Err(MachineError::OperandMismatch(format!(
                    "`{}`: missing condition",
                    t.name
                )))
            }
            (false, Some(_)) => {
                return Err(MachineError::OperandMismatch(format!(
                    "`{}`: unexpected condition",
                    t.name
                )))
            }
        }
        Ok(())
    }

    /// Checks a whole microinstruction: every op valid, no pairwise
    /// conflicts, and at most one control-flow operation.
    pub fn validate_instr(&self, mi: &MicroInstr, model: ConflictModel) -> Result<(), MachineError> {
        let mut control_ops = 0;
        for op in &mi.ops {
            self.validate_op(op)?;
            if self.template(op.template).semantic.is_control() {
                control_ops += 1;
            }
        }
        if control_ops > 1 {
            return Err(MachineError::Conflict(
                "more than one control-flow operation in a microinstruction".into(),
            ));
        }
        for i in 0..mi.ops.len() {
            for j in i + 1..mi.ops.len() {
                if let Some(why) = self.conflict_reason(&mi.ops[i], &mi.ops[j], model) {
                    return Err(MachineError::Conflict(why));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::RegisterFile;
    use crate::resource::{ResourceKind, ResourceUse};
    use crate::semantic::AluOp;
    use crate::template::FieldValueSrc as V;

    /// A tiny two-unit machine for oracle tests.
    fn toy() -> MachineDesc {
        let mut m = MachineDesc::new("toy", 16, 2);
        let gp = m.add_file(RegisterFile::new("R", 4, 16, true));
        let flags = m.add_file(RegisterFile::new("F", 1, 8, false));
        m.special.flags = Some(RegRef::new(flags, 0));
        let gpc = m.add_class(RegClass::whole_file("gp", gp, 4));
        let alu = m.add_resource(Resource::new("alu", ResourceKind::Alu));
        let bus = m.add_resource(Resource::new("bus", ResourceKind::Bus));
        let f_op = m.control.push("alu_op", 4);
        let f_l = m.control.push("alu_l", 2);
        let f_r = m.control.push("alu_r", 2);
        let f_d = m.control.push("alu_d", 2);
        let f_mv = m.control.push("mv", 1);
        let f_ms = m.control.push("mv_s", 2);
        let f_md = m.control.push("mv_d", 2);
        m.add_template(
            MicroOpTemplate::new("add", Semantic::Alu(AluOp::Add))
                .with_dst(gpc)
                .with_src(gpc)
                .with_src(gpc)
                .flags()
                .set(f_op, V::Const(1))
                .set(f_l, V::Src(0))
                .set(f_r, V::Src(1))
                .set(f_d, V::Dst)
                .occupies(ResourceUse::phases(alu, 0, 2)),
        );
        m.add_template(
            MicroOpTemplate::new("mov", Semantic::Move)
                .with_dst(gpc)
                .with_src(gpc)
                .set(f_mv, V::Const(1))
                .set(f_ms, V::Src(0))
                .set(f_md, V::Dst)
                .occupies(ResourceUse::phases(bus, 0, 1)),
        );
        m
    }

    fn r(i: u16) -> RegRef {
        RegRef::new(FileId(0), i)
    }

    #[test]
    fn toy_validates() {
        assert!(toy().validate().is_ok());
    }

    #[test]
    fn same_unit_conflicts() {
        let m = toy();
        let add = m.find_template("add").unwrap();
        let a = BoundOp::new(add).with_dst(r(0)).with_src(r(1)).with_src(r(2));
        let b = BoundOp::new(add).with_dst(r(3)).with_src(r(1)).with_src(r(2));
        assert!(m.conflicts(&a, &b, ConflictModel::Coarse));
        assert!(m.conflicts(&a, &b, ConflictModel::Fine));
    }

    #[test]
    fn different_units_do_not_conflict() {
        let m = toy();
        let add = m.find_template("add").unwrap();
        let mov = m.find_template("mov").unwrap();
        let a = BoundOp::new(add).with_dst(r(0)).with_src(r(1)).with_src(r(2));
        let b = BoundOp::new(mov).with_dst(r(3)).with_src(r(1));
        assert!(!m.conflicts(&a, &b, ConflictModel::Coarse));
    }

    #[test]
    fn same_destination_conflicts_even_across_units() {
        let m = toy();
        let add = m.find_template("add").unwrap();
        let mov = m.find_template("mov").unwrap();
        let a = BoundOp::new(add).with_dst(r(0)).with_src(r(1)).with_src(r(2));
        let b = BoundOp::new(mov).with_dst(r(0)).with_src(r(1));
        assert!(m.conflicts(&a, &b, ConflictModel::Coarse));
        let why = m.conflict_reason(&a, &b, ConflictModel::Coarse).unwrap();
        assert!(why.contains("written by both"), "{why}");
    }

    #[test]
    fn flag_writers_conflict() {
        let m = toy();
        let add = m.find_template("add").unwrap();
        let a = BoundOp::new(add).with_dst(r(0)).with_src(r(1)).with_src(r(2));
        let b = BoundOp::new(add).with_dst(r(3)).with_src(r(1)).with_src(r(2));
        // Both write flags *and* share the ALU; either way they conflict.
        assert!(m.conflicts(&a, &b, ConflictModel::Fine));
    }

    #[test]
    fn validate_op_checks_operands() {
        let m = toy();
        let add = m.find_template("add").unwrap();
        let good = BoundOp::new(add).with_dst(r(0)).with_src(r(1)).with_src(r(2));
        assert!(m.validate_op(&good).is_ok());
        let missing_src = BoundOp::new(add).with_dst(r(0)).with_src(r(1));
        assert!(m.validate_op(&missing_src).is_err());
        let no_dst = BoundOp::new(add).with_src(r(1)).with_src(r(2));
        assert!(m.validate_op(&no_dst).is_err());
        let stray_imm = good.clone().with_imm(3);
        assert!(m.validate_op(&stray_imm).is_err());
    }

    #[test]
    fn validate_instr_rejects_conflicting_pack() {
        let m = toy();
        let add = m.find_template("add").unwrap();
        let a = BoundOp::new(add).with_dst(r(0)).with_src(r(1)).with_src(r(2));
        let b = BoundOp::new(add).with_dst(r(3)).with_src(r(1)).with_src(r(2));
        let mi = MicroInstr::of(vec![a, b]);
        assert!(m.validate_instr(&mi, ConflictModel::Coarse).is_err());
    }

    #[test]
    fn write_and_read_sets_include_flags() {
        let m = toy();
        let add = m.find_template("add").unwrap();
        let a = BoundOp::new(add).with_dst(r(0)).with_src(r(1)).with_src(r(2));
        let w = m.write_set(&a);
        assert!(w.contains(&r(0)));
        assert!(w.contains(&m.special.flags.unwrap()));
        let rd = m.read_set(&a);
        assert_eq!(rd.len(), 2);
    }

    #[test]
    fn add_condition_dedups() {
        let mut m = toy();
        let a = m.add_condition(CondKind::Zero);
        let b = m.add_condition(CondKind::Zero);
        assert_eq!(a, b);
        let c = m.add_condition(CondKind::Carry);
        assert_ne!(a, c);
        assert_eq!(m.cond_encoding(CondKind::Carry), Some(c));
        assert!(m.supports_cond(CondKind::Zero));
        assert!(!m.supports_cond(CondKind::Uf));
    }

    #[test]
    fn validation_catches_dangling_class() {
        let mut m = toy();
        m.add_template(MicroOpTemplate::new("bad", Semantic::Move).with_dst(ClassId(99)));
        assert!(matches!(m.validate(), Err(MachineError::DanglingRef(_))));
    }

    #[test]
    fn validation_catches_phase_overrun() {
        let mut m = toy();
        let alu = ResourceId(0);
        m.add_template(
            MicroOpTemplate::new("bad", Semantic::Nop).occupies(ResourceUse::phases(alu, 0, 5)),
        );
        assert!(matches!(m.validate(), Err(MachineError::PhaseOutOfRange(_))));
    }
}
