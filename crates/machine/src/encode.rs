//! Binary encoding and decoding of microinstructions.
//!
//! Encoding resolves every [`FieldSetting`](crate::template::FieldSetting)
//! of every packed operation into bits of the control word (up to 128 bits
//! wide). Decoding matches templates back against a word — possible because
//! every template carries at least one nonzero constant *selector* field
//! (field value 0 means "unit idle" on all reference machines).

use crate::ids::FieldId;
use crate::machine::MachineDesc;
use crate::op::{BoundOp, MicroInstr, MicroProgram};
use crate::template::{FieldValueSrc, MicroOpTemplate, SrcSpec};

/// Errors during encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A value does not fit its field.
    ValueTooWide {
        /// Field name.
        field: String,
        /// The offending value.
        value: u64,
    },
    /// Two operations drive the same field with different values.
    FieldCollision {
        /// Field name.
        field: String,
    },
    /// An operand needed by a field setting is missing or unencodable.
    MissingOperand(String),
    /// The control word is wider than 128 bits.
    WordTooWide(u16),
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::ValueTooWide { field, value } => {
                write!(f, "value {value} too wide for field `{field}`")
            }
            EncodeError::FieldCollision { field } => {
                write!(f, "conflicting assignments to field `{field}`")
            }
            EncodeError::MissingOperand(s) => write!(f, "missing operand: {s}"),
            EncodeError::WordTooWide(b) => write!(f, "control word of {b} bits exceeds 128"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors during decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Bits remain set that no template accounts for.
    UnknownBits(u128),
    /// An operand field held an out-of-range encoding.
    BadOperand(String),
    /// A matched template is missing operand metadata (corrupt machine
    /// description rather than corrupt word).
    MalformedTemplate(String),
    /// The parity check word disagrees with the control word.
    EccMismatch {
        /// XOR of stored and recomputed check bits; nonzero by definition.
        syndrome: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownBits(w) => write!(f, "undecodable bits: {w:#x}"),
            DecodeError::BadOperand(s) => write!(f, "bad operand encoding: {s}"),
            DecodeError::MalformedTemplate(s) => {
                write!(f, "template `{s}` lacks operand metadata")
            }
            DecodeError::EccMismatch { syndrome } => {
                write!(f, "control-word parity mismatch (syndrome {syndrome:#04x})")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Eight-way interleaved parity over a control word: check bit `j` is the
/// XOR of word bits `i` with `i ≡ j (mod 8)`. Any single-bit upset in the
/// word (or in the check byte itself) flips exactly one syndrome bit, so
/// single-event upsets are always detected; correction is not attempted —
/// recovery re-fetches from a golden copy.
pub fn ecc_of(word: u128) -> u8 {
    word.to_le_bytes().iter().fold(0, |acc, b| acc ^ b)
}

/// The parity syndrome of a stored `(word, check)` pair; zero means clean.
pub fn ecc_syndrome(word: u128, check: u8) -> u8 {
    ecc_of(word) ^ check
}

/// Decodes a control word after verifying its parity check byte.
///
/// # Errors
///
/// Returns [`DecodeError::EccMismatch`] when the check byte disagrees with
/// the word, otherwise behaves as [`decode_instr`].
pub fn decode_checked(m: &MachineDesc, word: u128, check: u8) -> Result<MicroInstr, DecodeError> {
    let syndrome = ecc_syndrome(word, check);
    if syndrome != 0 {
        return Err(DecodeError::EccMismatch { syndrome });
    }
    decode_instr(m, word)
}

fn field_value(
    m: &MachineDesc,
    t: &MicroOpTemplate,
    op: &BoundOp,
    src: FieldValueSrc,
) -> Result<u64, EncodeError> {
    match src {
        FieldValueSrc::Const(v) => Ok(v),
        FieldValueSrc::Dst => {
            let class = t
                .dst
                .ok_or_else(|| EncodeError::MissingOperand(format!("`{}`: dst class", t.name)))?;
            let reg = op
                .dst
                .ok_or_else(|| EncodeError::MissingOperand(format!("`{}`: dst reg", t.name)))?;
            m.class(class)
                .encoding_of(reg)
                .ok_or_else(|| EncodeError::MissingOperand(format!("`{}`: dst not in class", t.name)))
        }
        FieldValueSrc::Src(n) => {
            let classes: Vec<_> = t
                .srcs
                .iter()
                .filter_map(|s| match s {
                    SrcSpec::Class(c) => Some(*c),
                    SrcSpec::Imm { .. } => None,
                })
                .collect();
            let class = *classes.get(n as usize).ok_or_else(|| {
                EncodeError::MissingOperand(format!("`{}`: src {n} class", t.name))
            })?;
            let reg = *op.srcs.get(n as usize).ok_or_else(|| {
                EncodeError::MissingOperand(format!("`{}`: src {n} reg", t.name))
            })?;
            m.class(class)
                .encoding_of(reg)
                .ok_or_else(|| EncodeError::MissingOperand(format!("`{}`: src not in class", t.name)))
        }
        FieldValueSrc::Imm => op
            .imm
            .ok_or_else(|| EncodeError::MissingOperand(format!("`{}`: immediate", t.name))),
        FieldValueSrc::Target => op
            .target
            .map(u64::from)
            .ok_or_else(|| EncodeError::MissingOperand(format!("`{}`: target", t.name))),
        FieldValueSrc::Cond => {
            let c = op
                .cond
                .ok_or_else(|| EncodeError::MissingOperand(format!("`{}`: condition", t.name)))?;
            m.cond_encoding(c)
                .ok_or_else(|| EncodeError::MissingOperand(format!("`{}`: condition {c:?}", t.name)))
        }
    }
}

/// Encodes one microinstruction into a control word.
///
/// # Errors
///
/// Fails when a value overflows its field, when two packed operations drive
/// a field inconsistently, or when the word exceeds 128 bits.
pub fn encode_instr(m: &MachineDesc, mi: &MicroInstr) -> Result<u128, EncodeError> {
    let bits = m.control_word_bits();
    if bits > 128 {
        return Err(EncodeError::WordTooWide(bits));
    }
    let mut word: u128 = 0;
    let mut assigned: Vec<Option<u64>> = vec![None; m.control.len()];
    for op in &mi.ops {
        let t = m.template(op.template);
        for fs in &t.fields {
            let field = m.control.get(fs.field).expect("validated field");
            let v = field_value(m, t, op, fs.value)?;
            if v > field.max_value() {
                return Err(EncodeError::ValueTooWide {
                    field: field.name.clone(),
                    value: v,
                });
            }
            match assigned[fs.field.index()] {
                Some(prev) if prev != v => {
                    return Err(EncodeError::FieldCollision {
                        field: field.name.clone(),
                    })
                }
                Some(_) => {}
                None => {
                    assigned[fs.field.index()] = Some(v);
                    word |= (v as u128) << field.offset;
                }
            }
        }
    }
    Ok(word)
}

fn extract(word: u128, m: &MachineDesc, f: FieldId) -> u64 {
    let field = m.control.get(f).expect("field");
    ((word >> field.offset) as u64) & field.max_value()
}

/// Whether `t`'s constant selectors match the word, with at least one
/// nonzero constant (so idle units never match).
fn template_matches(m: &MachineDesc, t: &MicroOpTemplate, word: u128) -> bool {
    let mut nonzero = false;
    for fs in &t.fields {
        if let FieldValueSrc::Const(v) = fs.value {
            if extract(word, m, fs.field) != v {
                return false;
            }
            if v != 0 {
                nonzero = true;
            }
        }
    }
    nonzero
}

/// Decodes a control word back into a set of bound operations.
///
/// Templates are matched most-specific-first (most constant fields), and
/// each control field may be claimed by at most one operation.
///
/// # Errors
///
/// Returns [`DecodeError::BadOperand`] when an operand field holds an
/// encoding outside its register class.
pub fn decode_instr(m: &MachineDesc, word: u128) -> Result<MicroInstr, DecodeError> {
    let mut order: Vec<usize> = (0..m.templates.len()).collect();
    order.sort_by_key(|&i| {
        std::cmp::Reverse(
            m.templates[i]
                .fields
                .iter()
                .filter(|f| matches!(f.value, FieldValueSrc::Const(_)))
                .count(),
        )
    });

    let mut claimed = vec![false; m.control.len()];
    let mut ops = Vec::new();
    for i in order {
        let t = &m.templates[i];
        if !template_matches(m, t, word) {
            continue;
        }
        if t.fields.iter().any(|f| claimed[f.field.index()]) {
            continue;
        }
        // Reconstruct operands.
        let mut op = BoundOp::new(crate::ids::TemplateId(i as u16));
        let mut ok = true;
        for fs in &t.fields {
            match fs.value {
                FieldValueSrc::Const(_) => {}
                FieldValueSrc::Dst => {
                    let Some(class) = t.dst else {
                        return Err(DecodeError::MalformedTemplate(t.name.clone()));
                    };
                    match m.class(class).member_at(extract(word, m, fs.field)) {
                        Some(r) => op.dst = Some(r),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                FieldValueSrc::Src(n) => {
                    let classes: Vec<_> = t
                        .srcs
                        .iter()
                        .filter_map(|s| match s {
                            SrcSpec::Class(c) => Some(*c),
                            SrcSpec::Imm { .. } => None,
                        })
                        .collect();
                    let Some(&class) = classes.get(n as usize) else {
                        return Err(DecodeError::MalformedTemplate(t.name.clone()));
                    };
                    match m.class(class).member_at(extract(word, m, fs.field)) {
                        Some(r) => {
                            while op.srcs.len() <= n as usize {
                                op.srcs.push(r);
                            }
                            op.srcs[n as usize] = r;
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                FieldValueSrc::Imm => op.imm = Some(extract(word, m, fs.field)),
                FieldValueSrc::Target => {
                    // Reject, never truncate: a >32-bit target field could
                    // otherwise decode to a silently wrapped address.
                    match u32::try_from(extract(word, m, fs.field)) {
                        Ok(t) => op.target = Some(t),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                FieldValueSrc::Cond => {
                    let code = extract(word, m, fs.field) as usize;
                    match m.conditions.get(code) {
                        Some(&c) => op.cond = Some(c),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
        }
        if !ok {
            return Err(DecodeError::BadOperand(t.name.clone()));
        }
        for fs in &t.fields {
            claimed[fs.field.index()] = true;
        }
        ops.push(op);
    }
    // Restore a canonical order (template id) so decode is deterministic.
    ops.sort_by_key(|o| o.template);
    let mi = MicroInstr::of(ops);
    // Strict inverse check: bits no template claimed (or claimed
    // inconsistently) would otherwise be dropped silently — exactly the
    // failure mode a fault campaign must detect, not mask.
    let back = encode_instr(m, &mi).map_err(|e| DecodeError::BadOperand(e.to_string()))?;
    if back != word {
        return Err(DecodeError::UnknownBits(word ^ back));
    }
    Ok(mi)
}

/// Encodes a whole program into a control store image (one word per
/// microinstruction, symbolic targets resolved to absolute addresses).
///
/// # Errors
///
/// Propagates any [`EncodeError`] from the individual instructions.
pub fn encode_program(m: &MachineDesc, p: &MicroProgram) -> Result<Vec<u128>, EncodeError> {
    p.flatten().iter().map(|mi| encode_instr(m, mi)).collect()
}

/// Encodes a whole program into `(control word, parity check)` pairs, the
/// image a fault-tolerant control store loads (see [`ecc_of`]).
///
/// # Errors
///
/// Propagates any [`EncodeError`] from the individual instructions.
pub fn encode_program_ecc(
    m: &MachineDesc,
    p: &MicroProgram,
) -> Result<Vec<(u128, u8)>, EncodeError> {
    Ok(encode_program(m, p)?
        .into_iter()
        .map(|w| (w, ecc_of(w)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::hm1;
    use crate::op::{MicroBlock, MicroProgram};
    use crate::regs::RegRef;
    use crate::semantic::CondKind;

    #[test]
    fn encode_empty_is_zero() {
        let m = hm1();
        let w = encode_instr(&m, &MicroInstr::new()).unwrap();
        assert_eq!(w, 0, "an empty microinstruction is the all-idle word");
    }

    #[test]
    fn roundtrip_single_add() {
        let m = hm1();
        let add = m.find_template("add").unwrap();
        let gp = m.find_file("R").unwrap();
        let op = BoundOp::new(add)
            .with_dst(RegRef::new(gp, 1))
            .with_src(RegRef::new(gp, 2))
            .with_src(RegRef::new(gp, 3));
        let mi = MicroInstr::single(op);
        let w = encode_instr(&m, &mi).unwrap();
        let back = decode_instr(&m, w).unwrap();
        assert_eq!(back, mi);
    }

    #[test]
    fn roundtrip_parallel_pack() {
        let m = hm1();
        let add = m.find_template("add").unwrap();
        let mov = m.find_template("mov").unwrap();
        let gp = m.find_file("R").unwrap();
        let a = BoundOp::new(add)
            .with_dst(RegRef::new(gp, 1))
            .with_src(RegRef::new(gp, 2))
            .with_src(RegRef::new(gp, 3));
        let b = BoundOp::new(mov)
            .with_dst(RegRef::new(gp, 4))
            .with_src(RegRef::new(gp, 5));
        let mi = MicroInstr::of(vec![a, b]);
        let w = encode_instr(&m, &mi).unwrap();
        let mut back = decode_instr(&m, w).unwrap();
        back.ops.sort_by_key(|o| o.template);
        let mut want = mi.clone();
        want.ops.sort_by_key(|o| o.template);
        assert_eq!(back, want);
    }

    #[test]
    fn roundtrip_branch() {
        let m = hm1();
        let br = m.find_template("br").unwrap();
        let op = BoundOp::new(br).with_cond(CondKind::Zero).with_target(7);
        let mi = MicroInstr::single(op);
        let w = encode_instr(&m, &mi).unwrap();
        let back = decode_instr(&m, w).unwrap();
        assert_eq!(back, mi);
    }

    #[test]
    fn collision_detected() {
        let m = hm1();
        let add = m.find_template("add").unwrap();
        let sub = m.find_template("sub").unwrap();
        let gp = m.find_file("R").unwrap();
        let a = BoundOp::new(add)
            .with_dst(RegRef::new(gp, 1))
            .with_src(RegRef::new(gp, 2))
            .with_src(RegRef::new(gp, 3));
        let b = BoundOp::new(sub)
            .with_dst(RegRef::new(gp, 4))
            .with_src(RegRef::new(gp, 5))
            .with_src(RegRef::new(gp, 6));
        let mi = MicroInstr::of(vec![a, b]);
        assert!(matches!(
            encode_instr(&m, &mi),
            Err(EncodeError::FieldCollision { .. })
        ));
    }

    #[test]
    fn ecc_detects_every_single_bit_flip() {
        let m = hm1();
        let add = m.find_template("add").unwrap();
        let gp = m.find_file("R").unwrap();
        let op = BoundOp::new(add)
            .with_dst(RegRef::new(gp, 1))
            .with_src(RegRef::new(gp, 2))
            .with_src(RegRef::new(gp, 3));
        let w = encode_instr(&m, &MicroInstr::single(op)).unwrap();
        let check = ecc_of(w);
        assert_eq!(ecc_syndrome(w, check), 0);
        for bit in 0..128 {
            let flipped = w ^ (1u128 << bit);
            assert_ne!(
                ecc_syndrome(flipped, check),
                0,
                "flip of word bit {bit} must raise a nonzero syndrome"
            );
            assert!(matches!(
                decode_checked(&m, flipped, check),
                Err(DecodeError::EccMismatch { .. })
            ));
        }
        for bit in 0..8 {
            assert_ne!(
                ecc_syndrome(w, check ^ (1 << bit)),
                0,
                "flip of check bit {bit} must raise a nonzero syndrome"
            );
        }
    }

    #[test]
    fn decode_checked_round_trips_clean_words() {
        let m = hm1();
        let mov = m.find_template("mov").unwrap();
        let gp = m.find_file("R").unwrap();
        let op = BoundOp::new(mov)
            .with_dst(RegRef::new(gp, 4))
            .with_src(RegRef::new(gp, 5));
        let mi = MicroInstr::single(op);
        let w = encode_instr(&m, &mi).unwrap();
        assert_eq!(decode_checked(&m, w, ecc_of(w)).unwrap(), mi);
    }

    #[test]
    fn corrupted_words_error_or_roundtrip_without_panicking() {
        let m = hm1();
        let add = m.find_template("add").unwrap();
        let gp = m.find_file("R").unwrap();
        let op = BoundOp::new(add)
            .with_dst(RegRef::new(gp, 1))
            .with_src(RegRef::new(gp, 2))
            .with_src(RegRef::new(gp, 3));
        let w = encode_instr(&m, &MicroInstr::single(op)).unwrap();
        for bit in 0..m.control_word_bits() as u32 {
            let flipped = w ^ (1u128 << bit);
            if let Ok(mi) = decode_instr(&m, flipped) {
                let back = encode_instr(&m, &mi).unwrap();
                assert_eq!(back, flipped, "a decode that succeeds must be exact");
            }
        }
    }

    /// A deliberately skewed machine: every operand field is wider than
    /// the value space behind it (3 registers in 3-bit fields, 2
    /// conditions in a 3-bit field, a 40-bit branch target), so each field
    /// kind has encodings that must be *rejected* on decode, not masked.
    const SKEWED: &str = "\
machine SKEWED width 8 phases 2
file R count 3 width 8
class gp = R[0..3]
resource alu kind alu
resource seq kind sequencer
field alu_op width 4
field alu_a width 3
field alu_d width 3
field imm width 8
field seq_op width 3
field cond width 3
field addr width 40
cond true
cond zero
template pass semantic alu.pass
  dst gp
  src gp
  flags
  set alu_op = const 1
  set alu_a = src 0
  set alu_d = dst
  occupy alu 0..2
end
template ldi semantic loadimm
  dst gp
  imm 8
  set alu_op = const 2
  set alu_d = dst
  set imm = imm
  occupy alu 0..2
end
template br semantic branch
  cond
  target
  set seq_op = const 2
  set cond = cond
  set addr = target
  occupy seq 1..2
end
";

    fn skewed() -> MachineDesc {
        crate::mdl::parse(SKEWED).unwrap()
    }

    /// Overwrites one control field of an encoded word.
    fn poke(m: &MachineDesc, word: u128, field: &str, v: u64) -> u128 {
        let f = m.control.find(field).unwrap();
        let fld = m.control.get(f).unwrap();
        let mask = (fld.max_value() as u128) << fld.offset;
        (word & !mask) | (((v & fld.max_value()) as u128) << fld.offset)
    }

    #[test]
    fn out_of_range_dst_field_rejected() {
        let m = skewed();
        let pass = m.find_template("pass").unwrap();
        let gp = m.find_file("R").unwrap();
        let op = BoundOp::new(pass)
            .with_dst(RegRef::new(gp, 1))
            .with_src(RegRef::new(gp, 2));
        let w = encode_instr(&m, &MicroInstr::single(op)).unwrap();
        // Encodings 3..=7 name no register in the 3-member class.
        let bad = poke(&m, w, "alu_d", 5);
        assert!(matches!(decode_instr(&m, bad), Err(DecodeError::BadOperand(_))));
    }

    #[test]
    fn out_of_range_src_field_rejected() {
        let m = skewed();
        let pass = m.find_template("pass").unwrap();
        let gp = m.find_file("R").unwrap();
        let op = BoundOp::new(pass)
            .with_dst(RegRef::new(gp, 1))
            .with_src(RegRef::new(gp, 2));
        let w = encode_instr(&m, &MicroInstr::single(op)).unwrap();
        let bad = poke(&m, w, "alu_a", 7);
        assert!(matches!(decode_instr(&m, bad), Err(DecodeError::BadOperand(_))));
    }

    #[test]
    fn out_of_range_cond_field_rejected() {
        let m = skewed();
        let br = m.find_template("br").unwrap();
        let op = BoundOp::new(br).with_cond(CondKind::Zero).with_target(3);
        let w = encode_instr(&m, &MicroInstr::single(op)).unwrap();
        // Only two conditions are declared; code 6 names none.
        let bad = poke(&m, w, "cond", 6);
        assert!(matches!(decode_instr(&m, bad), Err(DecodeError::BadOperand(_))));
    }

    #[test]
    fn overwide_target_field_rejected_not_truncated() {
        let m = skewed();
        let br = m.find_template("br").unwrap();
        let op = BoundOp::new(br).with_cond(CondKind::Zero).with_target(3);
        let w = encode_instr(&m, &MicroInstr::single(op)).unwrap();
        // 2^33 fits the 40-bit addr field but overflows the u32 target; a
        // truncating decode would report target 0 and mask the corruption.
        let bad = poke(&m, w, "addr", 1 << 33);
        assert!(matches!(decode_instr(&m, bad), Err(DecodeError::BadOperand(_))));
    }

    #[test]
    fn full_width_imm_field_round_trips_exactly() {
        let m = skewed();
        let ldi = m.find_template("ldi").unwrap();
        let gp = m.find_file("R").unwrap();
        // Every bit pattern of an immediate field is a legal value; the
        // full-width one must survive decode unmasked.
        let op = BoundOp::new(ldi).with_dst(RegRef::new(gp, 0)).with_imm(0xFF);
        let mi = MicroInstr::single(op);
        let w = encode_instr(&m, &mi).unwrap();
        let back = decode_instr(&m, w).unwrap();
        assert_eq!(back.ops[0].imm, Some(0xFF));
    }

    #[test]
    fn program_encoding_resolves_block_targets() {
        let m = hm1();
        let jmp = m.find_template("jmp").unwrap();
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(BoundOp::new(jmp).with_target(1))],
        });
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(BoundOp::new(jmp).with_target(1))],
        });
        let words = encode_program(&m, &p).unwrap();
        assert_eq!(words.len(), 2);
        let mi0 = decode_instr(&m, words[0]).unwrap();
        assert_eq!(mi0.ops[0].target, Some(1), "block 1 starts at address 1");
    }
}
