//! The control word format: named bit fields of a horizontal control word.
//!
//! A horizontal microinstruction is, physically, one wide word whose bit
//! fields directly drive datapath selectors. Two micro-operations that want
//! to drive the same field with different values cannot live in the same
//! microinstruction — this is DeWitt's control-word conflict model, and it
//! is one half of the conflict oracle in
//! [`MachineDesc::conflicts`](crate::MachineDesc::conflicts).

use serde::{Deserialize, Serialize};

use crate::ids::FieldId;

/// One named bit field of the control word.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControlField {
    /// Field name, e.g. `"alu_op"` or `"next_addr"`.
    pub name: String,
    /// Bit offset of the least significant bit of the field within the word.
    pub offset: u16,
    /// Width of the field in bits (1..=64).
    pub width: u16,
}

impl ControlField {
    /// Creates a field. Offsets are assigned by
    /// [`ControlWordFormat::push`]; use that in preference to filling
    /// `offset` by hand.
    pub fn new(name: impl Into<String>, offset: u16, width: u16) -> Self {
        ControlField {
            name: name.into(),
            offset,
            width,
        }
    }

    /// Largest value representable in this field.
    pub fn max_value(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// The half-open bit range `[offset, offset + width)` this field covers.
    pub fn bit_range(&self) -> std::ops::Range<u32> {
        self.offset as u32..self.offset as u32 + self.width as u32
    }
}

/// The complete control word format of a machine: an ordered list of
/// non-overlapping fields.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlWordFormat {
    fields: Vec<ControlField>,
}

impl ControlWordFormat {
    /// Creates an empty format.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field of `width` bits immediately after the previous field
    /// and returns its id.
    pub fn push(&mut self, name: impl Into<String>, width: u16) -> FieldId {
        let offset = self.total_bits();
        let id = FieldId(self.fields.len() as u16);
        self.fields.push(ControlField::new(name, offset, width));
        id
    }

    /// Total number of bits of the control word.
    pub fn total_bits(&self) -> u16 {
        self.fields.iter().map(|f| f.width).sum()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the format has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks a field up by id.
    pub fn get(&self, id: FieldId) -> Option<&ControlField> {
        self.fields.get(id.index())
    }

    /// Finds a field id by name.
    pub fn find(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId(i as u16))
    }

    /// Iterates over `(id, field)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &ControlField)> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, f)| (FieldId(i as u16), f))
    }

    /// Checks structural validity: unique names, no overlapping bit ranges,
    /// nonzero widths.
    pub fn validate(&self) -> Result<(), String> {
        let mut names = std::collections::HashSet::new();
        for f in &self.fields {
            if f.width == 0 {
                return Err(format!("field `{}` has zero width", f.name));
            }
            if f.width > 64 {
                return Err(format!("field `{}` is wider than 64 bits", f.name));
            }
            if !names.insert(f.name.as_str()) {
                return Err(format!("duplicate field name `{}`", f.name));
            }
        }
        let mut sorted: Vec<_> = self.fields.iter().collect();
        sorted.sort_by_key(|f| f.offset);
        for w in sorted.windows(2) {
            if w[0].offset + w[0].width > w[1].offset {
                return Err(format!(
                    "fields `{}` and `{}` overlap",
                    w[0].name, w[1].name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt3() -> ControlWordFormat {
        let mut f = ControlWordFormat::new();
        f.push("alu_op", 4);
        f.push("alu_left", 5);
        f.push("next_addr", 12);
        f
    }

    #[test]
    fn push_assigns_consecutive_offsets() {
        let f = fmt3();
        assert_eq!(f.total_bits(), 21);
        assert_eq!(f.get(FieldId(0)).unwrap().offset, 0);
        assert_eq!(f.get(FieldId(1)).unwrap().offset, 4);
        assert_eq!(f.get(FieldId(2)).unwrap().offset, 9);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn find_by_name() {
        let f = fmt3();
        assert_eq!(f.find("alu_left"), Some(FieldId(1)));
        assert_eq!(f.find("nope"), None);
    }

    #[test]
    fn max_value_and_bit_range() {
        let f = ControlField::new("x", 3, 4);
        assert_eq!(f.max_value(), 15);
        assert_eq!(f.bit_range(), 3..7);
    }

    #[test]
    fn validate_rejects_duplicates_and_overlap() {
        let mut f = ControlWordFormat::new();
        f.push("a", 4);
        f.push("a", 4);
        assert!(f.validate().is_err());

        let mut g = ControlWordFormat::new();
        g.push("a", 4);
        // Hand-craft an overlapping field.
        g.fields.push(ControlField::new("b", 2, 4));
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_width() {
        let mut f = ControlWordFormat::new();
        f.push("z", 0);
        assert!(f.validate().is_err());
    }
}
