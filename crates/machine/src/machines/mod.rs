//! The reference machine descriptions.
//!
//! | Machine | Plays the role of | Character |
//! |---|---|---|
//! | [`hm1`] | Tucker–Flynn processor / HP300 | clean horizontal, 5 units |
//! | [`vm1`] | Burroughs B1700 class | vertical, 1 op per instruction |
//! | [`bx2`] | VAX-11 microarchitecture | baroque: shared bus, shared fields |
//! | [`wm64`] | Control Data 480 class | wide: 256 registers, two ALUs |
//!
//! All four expose the same abstract [`Semantic`](crate::Semantic) space, so
//! the same IR compiles to each — with very different results, which is the
//! point of experiments E2–E4.

mod bx2;
mod hm1;
mod vm1;
mod wm64;

pub use bx2::bx2;
pub use hm1::hm1;
pub use vm1::vm1;
pub use wm64::wm64;

use crate::machine::MachineDesc;

/// All reference machines, in a canonical order.
pub fn all() -> Vec<MachineDesc> {
    vec![hm1(), vm1(), bx2(), wm64()]
}

/// Looks a reference machine up by name (case-insensitive).
pub fn by_name(name: &str) -> Option<MachineDesc> {
    match name.to_ascii_lowercase().as_str() {
        "hm-1" | "hm1" | "horizon" => Some(hm1()),
        "vm-1" | "vm1" | "vertica" => Some(vm1()),
        "bx-2" | "bx2" | "baroque" => Some(bx2()),
        "wm-64" | "wm64" | "wide" => Some(wm64()),
        _ => None,
    }
}

/// Whether a name resolves, without building the description — the
/// hot-path validity check for servers that memoize compilers by name.
/// Must accept exactly the names [`by_name`] accepts.
pub fn is_known(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "hm-1" | "hm1" | "horizon"
            | "vm-1" | "vm1" | "vertica"
            | "bx-2" | "bx2" | "baroque"
            | "wm-64" | "wm64" | "wide"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reference_machines_validate() {
        for m in all() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("hm-1").unwrap().name, "HM-1");
        assert_eq!(by_name("VERTICA").unwrap().name, "VM-1");
        assert_eq!(by_name("bx2").unwrap().name, "BX-2");
        assert_eq!(by_name("wide").unwrap().name, "WM-64");
        assert!(by_name("pdp-11").is_none());
        for name in ["hm-1", "HM1", "horizon", "vm1", "vertica", "bx-2", "wm64", "WIDE"] {
            assert_eq!(is_known(name), by_name(name).is_some(), "{name}");
        }
        assert!(!is_known("pdp-11"));
    }

    #[test]
    fn horizontal_machines_have_wider_words_than_vertical() {
        let h = hm1().control_word_bits();
        let v = vm1().control_word_bits();
        assert!(
            h > 2 * v,
            "HM-1 ({h} bits) should dwarf VM-1 ({v} bits)"
        );
    }

    #[test]
    fn every_template_has_a_nonzero_selector() {
        // Decoding relies on "all fields zero" meaning idle.
        for m in all() {
            for t in &m.templates {
                let has = t.fields.iter().any(|f| {
                    matches!(f.value, crate::template::FieldValueSrc::Const(v) if v != 0)
                });
                assert!(has, "{}: template `{}` lacks a nonzero selector", m.name, t.name);
            }
        }
    }

    #[test]
    fn machines_declare_special_registers() {
        for m in all() {
            assert!(m.special.mar.is_some(), "{} lacks MAR", m.name);
            assert!(m.special.mbr.is_some(), "{} lacks MBR", m.name);
            assert!(m.special.flags.is_some(), "{} lacks flags", m.name);
        }
    }
}
