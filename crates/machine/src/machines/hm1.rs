//! **HM-1 "Horizon"** — the clean horizontal reference machine.
//!
//! Stands in for the Tucker–Flynn dynamic microprocessor (SIMPL's target)
//! and the HP300 (YALLL's friendlier target). Five independent units — ALU,
//! shifter, move bus, memory interface, sequencer — let up to five
//! micro-operations share one 96-bit control word. The microcycle has three
//! phases: operand read (0), compute (1), write-back (2). ALU results ride
//! the move bus during phase 2, so under the *fine* conflict model a bus
//! move (phases 0–2) and an ALU write-back (phase 2–3) do conflict while a
//! move finishing by phase 2 and the memory unit do not — grist for the
//! Tokoro-style compactor.
//!
//! Register structure (deliberately non-homogeneous, §2.1.3 of the paper):
//!
//! * `R0..R15` — general purpose, **macro-visible** (preserved across
//!   microtrap restarts; this is what makes the `incread` bug observable).
//! * `ACC` — accumulator; the only register besides `R` the ALU reads.
//! * `MAR`, `MBR` — memory address/buffer registers; main memory is reached
//!   *only* through them.
//! * `LS0..LS31` — local store, reachable only over the move bus; the
//!   register allocator spills here.

use crate::field::ControlWordFormat;
use crate::machine::MachineDesc;
use crate::regs::{RegClass, RegRef, RegisterFile};
use crate::resource::{Resource, ResourceKind, ResourceUse};
use crate::semantic::{AluOp, CondKind, Semantic, ShiftOp};
use crate::template::{FieldValueSrc as V, MicroOpTemplate};

/// Builds the HM-1 machine description.
pub fn hm1() -> MachineDesc {
    let mut m = MachineDesc::new("HM-1", 16, 3);
    m.interrupt_service_cycles = 40;
    m.trap_service_cycles = 300;

    // ---- storage ----------------------------------------------------------
    let r = m.add_file(RegisterFile::new("R", 16, 16, true));
    let s = m.add_file(RegisterFile::new("S", 3, 16, false)); // ACC, MAR, MBR
    let f = m.add_file(RegisterFile::new("F", 1, 8, false));
    let ls = m.add_file(RegisterFile::new("LS", 32, 16, false));
    m.scratch_file = Some(ls);

    let acc = RegRef::new(s, 0);
    let mar = RegRef::new(s, 1);
    let mbr = RegRef::new(s, 2);
    let flags = RegRef::new(f, 0);
    m.special.acc = Some(acc);
    m.special.mar = Some(mar);
    m.special.mbr = Some(mbr);
    m.special.flags = Some(flags);

    // ---- register classes --------------------------------------------------
    // ALU reads R or ACC on the left, R only on the right; writes R, ACC or
    // MAR (address arithmetic lands directly in MAR).
    let _gp = m.add_class(RegClass::whole_file("gp", r, 16));
    let alu_l = m.add_class(RegClass::from_ranges(
        "alu_left",
        vec![(r, 0, 16), (s, 0, 1)],
    ));
    let alu_r = m.add_class(RegClass::from_ranges(
        "alu_right",
        vec![(r, 0, 16), (s, 0, 1)],
    ));
    let alu_d = m.add_class(RegClass::from_ranges(
        "alu_dst",
        vec![(r, 0, 16), (s, 0, 2)],
    ));
    let sh_sd = m.add_class(RegClass::from_ranges(
        "shift_reg",
        vec![(r, 0, 16), (s, 0, 1)],
    ));
    let mv_s = m.add_class(RegClass::from_ranges(
        "mv_src",
        vec![(r, 0, 16), (s, 0, 3), (ls, 0, 32)],
    ));
    let mv_d = m.add_class(RegClass::from_ranges(
        "mv_dst",
        vec![(r, 0, 16), (s, 0, 3), (ls, 0, 32)],
    ));
    let dsp = m.add_class(RegClass::from_ranges(
        "dispatch_idx",
        vec![(r, 0, 16), (s, 0, 1)],
    ));

    // ---- resources -----------------------------------------------------------
    let alu = m.add_resource(Resource::new("alu", ResourceKind::Alu));
    let sh = m.add_resource(Resource::new("shifter", ResourceKind::Shifter));
    let mem = m.add_resource(Resource::new("mem", ResourceKind::Memory));
    let seq = m.add_resource(Resource::new("seq", ResourceKind::Sequencer));
    let bus = m.add_resource(Resource::new("move_bus", ResourceKind::Bus));

    // ---- control word ---------------------------------------------------------
    let mut cw = ControlWordFormat::new();
    let f_alu_op = cw.push("alu_op", 5);
    let f_alu_l = cw.push("alu_l", 5);
    let f_alu_r = cw.push("alu_r", 5);
    let f_alu_rsel = cw.push("alu_rsel", 1);
    let f_alu_d = cw.push("alu_d", 5);
    let f_alu_fe = cw.push("alu_fe", 1); // flag enable
    let f_sh_op = cw.push("sh_op", 3);
    let f_sh_s = cw.push("sh_s", 5);
    let f_sh_d = cw.push("sh_d", 5);
    let f_sh_n = cw.push("sh_n", 4);
    let f_sh_fe = cw.push("sh_fe", 1); // flag enable
    let f_mem_op = cw.push("mem_op", 2);
    let f_mv_op = cw.push("mv_op", 2);
    let f_mv_s = cw.push("mv_s", 6);
    let f_mv_d = cw.push("mv_d", 6);
    let f_imm = cw.push("imm", 16);
    let f_seq_op = cw.push("seq_op", 3);
    let f_seq_cond = cw.push("seq_cond", 4);
    let f_seq_addr = cw.push("seq_addr", 12);
    let f_dsp_s = cw.push("dsp_s", 5);
    m.control = cw;

    // ---- conditions -----------------------------------------------------------
    for c in [
        CondKind::True,
        CondKind::Zero,
        CondKind::NotZero,
        CondKind::Neg,
        CondKind::NotNeg,
        CondKind::Carry,
        CondKind::NotCarry,
        CondKind::Overflow,
        CondKind::Uf,
        CondKind::NotUf,
    ] {
        m.add_condition(c);
    }

    // ---- ALU templates ----------------------------------------------------------
    // Binary register-register forms.
    let bin = [
        ("add", AluOp::Add, 1u64),
        ("adc", AluOp::Adc, 2),
        ("sub", AluOp::Sub, 3),
        ("sbb", AluOp::Sbb, 4),
        ("and", AluOp::And, 5),
        ("or", AluOp::Or, 6),
        ("xor", AluOp::Xor, 7),
        ("nand", AluOp::Nand, 8),
        ("nor", AluOp::Nor, 9),
    ];
    for (name, op, code) in bin {
        let base = MicroOpTemplate::new(name, Semantic::Alu(op))
            .with_dst(alu_d)
            .with_src(alu_l)
            .with_src(alu_r)
            .set(f_alu_op, V::Const(code))
            .set(f_alu_rsel, V::Const(0))
            .set(f_alu_l, V::Src(0))
            .set(f_alu_r, V::Src(1))
            .set(f_alu_d, V::Dst)
            .occupies(ResourceUse::phases(alu, 0, 3))
            .occupies(ResourceUse::phases(bus, 2, 3));
        let mut t = base.clone().flags().set(f_alu_fe, V::Const(1));
        if matches!(op, AluOp::Adc | AluOp::Sbb) {
            t = t.reads(flags);
        }
        m.add_template(t);
        // The flag-free twin (the control word's flag-enable bit cleared):
        // used by selection only when the flags are provably dead.
        if !matches!(op, AluOp::Adc | AluOp::Sbb) {
            let mut nf = base;
            nf.name = format!("{name}.nf");
            m.add_template(nf.set(f_alu_fe, V::Const(0)));
        }
    }
    // Binary register-immediate forms (share the `imm` field).
    let bin_imm = [
        ("addi", AluOp::Add, 1u64),
        ("subi", AluOp::Sub, 3),
        ("andi", AluOp::And, 5),
        ("ori", AluOp::Or, 6),
        ("xori", AluOp::Xor, 7),
    ];
    for (name, op, code) in bin_imm {
        let base = MicroOpTemplate::new(name, Semantic::Alu(op))
            .with_dst(alu_d)
            .with_src(alu_l)
            .with_imm(16)
            .set(f_alu_op, V::Const(code))
            .set(f_alu_rsel, V::Const(1))
            .set(f_alu_l, V::Src(0))
            .set(f_alu_d, V::Dst)
            .set(f_imm, V::Imm)
            .occupies(ResourceUse::phases(alu, 0, 3))
            .occupies(ResourceUse::phases(bus, 2, 3));
        m.add_template(base.clone().flags().set(f_alu_fe, V::Const(1)));
        let mut nf = base;
        nf.name = format!("{name}.nf");
        m.add_template(nf.set(f_alu_fe, V::Const(0)));
    }
    // Unary forms.
    let un = [
        ("not", AluOp::Not, 10u64),
        ("neg", AluOp::Neg, 11),
        ("inc", AluOp::Inc, 12),
        ("dec", AluOp::Dec, 13),
        ("pass", AluOp::Pass, 14),
    ];
    for (name, op, code) in un {
        let base = MicroOpTemplate::new(name, Semantic::Alu(op))
            .with_dst(alu_d)
            .with_src(alu_l)
            .set(f_alu_op, V::Const(code))
            .set(f_alu_rsel, V::Const(0))
            .set(f_alu_l, V::Src(0))
            .set(f_alu_d, V::Dst)
            .occupies(ResourceUse::phases(alu, 0, 3))
            .occupies(ResourceUse::phases(bus, 2, 3));
        m.add_template(base.clone().flags().set(f_alu_fe, V::Const(1)));
        let mut nf = base;
        nf.name = format!("{name}.nf");
        m.add_template(nf.set(f_alu_fe, V::Const(0)));
    }

    // ---- shifter ----------------------------------------------------------------
    let shifts = [
        ("shl", ShiftOp::Shl, 1u64),
        ("shr", ShiftOp::Shr, 2),
        ("sar", ShiftOp::Sar, 3),
        ("rol", ShiftOp::Rol, 4),
        ("ror", ShiftOp::Ror, 5),
    ];
    for (name, op, code) in shifts {
        let base = MicroOpTemplate::new(name, Semantic::Shift(op))
            .with_dst(sh_sd)
            .with_src(sh_sd)
            .with_imm(4)
            .set(f_sh_op, V::Const(code))
            .set(f_sh_s, V::Src(0))
            .set(f_sh_d, V::Dst)
            .set(f_sh_n, V::Imm)
            .occupies(ResourceUse::phases(sh, 0, 3));
        m.add_template(base.clone().flags().set(f_sh_fe, V::Const(1)));
        let mut nf = base;
        nf.name = format!("{name}.nf");
        m.add_template(nf.set(f_sh_fe, V::Const(0)));
    }

    // ---- move bus -----------------------------------------------------------------
    m.add_template(
        MicroOpTemplate::new("mov", Semantic::Move)
            .with_dst(mv_d)
            .with_src(mv_s)
            .set(f_mv_op, V::Const(1))
            .set(f_mv_s, V::Src(0))
            .set(f_mv_d, V::Dst)
            .occupies(ResourceUse::phases(bus, 0, 2)),
    );
    m.add_template(
        MicroOpTemplate::new("ldi", Semantic::LoadImm)
            .with_dst(mv_d)
            .with_imm(16)
            .set(f_mv_op, V::Const(2))
            .set(f_mv_d, V::Dst)
            .set(f_imm, V::Imm)
            .occupies(ResourceUse::phases(bus, 0, 2)),
    );

    // ---- memory ---------------------------------------------------------------------
    m.add_template(
        MicroOpTemplate::new("read", Semantic::MemRead)
            .reads(mar)
            .writes(mbr)
            .set(f_mem_op, V::Const(1))
            .occupies(ResourceUse::phases(mem, 0, 3)),
    );
    m.add_template(
        MicroOpTemplate::new("write", Semantic::MemWrite)
            .reads(mar)
            .reads(mbr)
            .set(f_mem_op, V::Const(2))
            .occupies(ResourceUse::phases(mem, 0, 3)),
    );

    // ---- sequencer --------------------------------------------------------------------
    m.add_template(
        MicroOpTemplate::new("jmp", Semantic::Jump)
            .target()
            .set(f_seq_op, V::Const(1))
            .set(f_seq_addr, V::Target)
            .occupies(ResourceUse::phases(seq, 1, 3)),
    );
    m.add_template(
        MicroOpTemplate::new("br", Semantic::Branch)
            .cond()
            .target()
            .set(f_seq_op, V::Const(2))
            .set(f_seq_cond, V::Cond)
            .set(f_seq_addr, V::Target)
            .occupies(ResourceUse::phases(seq, 1, 3)),
    );
    m.add_template(
        MicroOpTemplate::new("dispatch", Semantic::Dispatch)
            .with_src(dsp)
            .with_imm(16)
            .target()
            .set(f_seq_op, V::Const(3))
            .set(f_dsp_s, V::Src(0))
            .set(f_imm, V::Imm)
            .set(f_seq_addr, V::Target)
            .occupies(ResourceUse::phases(seq, 1, 3)),
    );
    m.add_template(
        MicroOpTemplate::new("call", Semantic::Call)
            .target()
            .set(f_seq_op, V::Const(4))
            .set(f_seq_addr, V::Target)
            .occupies(ResourceUse::phases(seq, 1, 3)),
    );
    m.add_template(
        MicroOpTemplate::new("ret", Semantic::Return)
            .set(f_seq_op, V::Const(5))
            .occupies(ResourceUse::phases(seq, 1, 3)),
    );
    m.add_template(
        MicroOpTemplate::new("poll", Semantic::Poll)
            .set(f_seq_op, V::Const(6))
            .occupies(ResourceUse::phases(seq, 1, 3)),
    );
    m.add_template(
        MicroOpTemplate::new("halt", Semantic::Halt)
            .set(f_seq_op, V::Const(7))
            .occupies(ResourceUse::phases(seq, 1, 3)),
    );

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ConflictModel;
    use crate::op::BoundOp;

    #[test]
    fn hm1_validates() {
        hm1().validate().unwrap();
    }

    #[test]
    fn four_way_parallelism_is_possible() {
        // add + mov + read + jmp can share one word under the fine model:
        // mov uses the bus in phases 0–2, the ALU write-back in 2–3.
        let m = hm1();
        let r = m.find_file("R").unwrap();
        let gp = |i| RegRef::new(r, i);
        let ops = vec![
            BoundOp::new(m.find_template("add").unwrap())
                .with_dst(gp(0))
                .with_src(gp(1))
                .with_src(gp(2)),
            BoundOp::new(m.find_template("mov").unwrap())
                .with_dst(gp(4))
                .with_src(gp(5)),
            BoundOp::new(m.find_template("read").unwrap()),
            BoundOp::new(m.find_template("jmp").unwrap()).with_target(0),
        ];
        let mi = crate::op::MicroInstr::of(ops.clone());
        m.validate_instr(&mi, ConflictModel::Fine).unwrap();
        // ...but add+mov conflict under the coarse model (both touch the
        // move bus at some point of the cycle).
        assert!(m.validate_instr(&mi, ConflictModel::Coarse).is_err());
        // Dropping the mov makes the coarse model happy too.
        let mi2 =
            crate::op::MicroInstr::of(vec![ops[0].clone(), ops[2].clone(), ops[3].clone()]);
        m.validate_instr(&mi2, ConflictModel::Coarse).unwrap();
    }

    #[test]
    fn shift_and_flag_conflict() {
        // Two flag-writing ops cannot pack: add + shr both write flags.
        // (shr uses the shifter, add the ALU — the conflict is the flags
        // register, exactly the "bizarre constraint" flavour of §2.1.3.)
        let m = hm1();
        let r = m.find_file("R").unwrap();
        let a = BoundOp::new(m.find_template("add").unwrap())
            .with_dst(RegRef::new(r, 0))
            .with_src(RegRef::new(r, 1))
            .with_src(RegRef::new(r, 2));
        let b = BoundOp::new(m.find_template("shr").unwrap())
            .with_dst(RegRef::new(r, 3))
            .with_src(RegRef::new(r, 3))
            .with_imm(1);
        assert!(m.conflicts(&a, &b, ConflictModel::Fine));
    }

    #[test]
    fn imm_field_is_shared_between_alu_and_ldi() {
        let m = hm1();
        let r = m.find_file("R").unwrap();
        let a = BoundOp::new(m.find_template("addi").unwrap())
            .with_dst(RegRef::new(r, 0))
            .with_src(RegRef::new(r, 1))
            .with_imm(5);
        let b = BoundOp::new(m.find_template("ldi").unwrap())
            .with_dst(RegRef::new(r, 2))
            .with_imm(9);
        let why = m.conflict_reason(&a, &b, ConflictModel::Fine).unwrap();
        assert!(why.contains("imm"), "{why}");
    }

    #[test]
    fn memory_goes_through_mar_and_mbr() {
        let m = hm1();
        let read = m.find_template("read").unwrap();
        let op = BoundOp::new(read);
        assert_eq!(m.read_set(&op), vec![m.special.mar.unwrap()]);
        assert_eq!(m.write_set(&op), vec![m.special.mbr.unwrap()]);
    }

    #[test]
    fn local_store_is_move_only() {
        let m = hm1();
        let ls = m.find_file("LS").unwrap();
        let alu_l = m.find_class("alu_left").unwrap();
        assert!(!m.class(alu_l).contains(RegRef::new(ls, 0)));
        let mv = m.find_class("mv_src").unwrap();
        assert!(m.class(mv).contains(RegRef::new(ls, 0)));
    }

    #[test]
    fn control_word_is_wide() {
        let m = hm1();
        assert_eq!(m.control_word_bits(), 96);
    }

    #[test]
    fn macro_visibility() {
        let m = hm1();
        assert!(m.file(m.find_file("R").unwrap()).macro_visible);
        assert!(!m.file(m.find_file("LS").unwrap()).macro_visible);
    }
}
