//! **WM-64 "Wide"** — the very wide reference machine.
//!
//! Stands in for the Control Data 480 class of machines the paper cites for
//! its 256 microregisters. Two full ALUs, a shifter, a move bus and the
//! memory interface can all fire in one microcycle; register pressure is a
//! non-issue (experiment E6 sweeps register budgets *up to* this machine's
//! 256).

use crate::field::ControlWordFormat;
use crate::machine::MachineDesc;
use crate::regs::{RegClass, RegRef, RegisterFile};
use crate::resource::{Resource, ResourceKind, ResourceUse};
use crate::semantic::{AluOp, CondKind, Semantic, ShiftOp};
use crate::template::{FieldValueSrc as V, MicroOpTemplate};

/// Builds the WM-64 machine description.
pub fn wm64() -> MachineDesc {
    let mut m = MachineDesc::new("WM-64", 16, 3);
    m.interrupt_service_cycles = 40;
    m.trap_service_cycles = 300;

    let r = m.add_file(RegisterFile::new("R", 256, 16, true));
    let s = m.add_file(RegisterFile::new("S", 2, 16, false)); // MAR, MBR
    let f = m.add_file(RegisterFile::new("F", 1, 8, false));
    m.scratch_file = None; // 256 registers: spilling is academic

    let mar = RegRef::new(s, 0);
    let mbr = RegRef::new(s, 1);
    m.special.mar = Some(mar);
    m.special.mbr = Some(mbr);
    m.special.flags = Some(RegRef::new(f, 0));

    let gp = m.add_class(RegClass::whole_file("gp", r, 256));
    // Real wide machines are not uniform either: the second ALU reaches
    // only the first 64 registers, the shifter the first 128.
    let gp_alu1 = m.add_class(RegClass::from_ranges("gp_alu1", vec![(r, 0, 64)]));
    let gp_sh = m.add_class(RegClass::from_ranges("gp_sh", vec![(r, 0, 128)]));
    let mv_cls = m.add_class(RegClass::from_ranges(
        "mv_any",
        vec![(r, 0, 256), (s, 0, 2)],
    ));

    let alu0 = m.add_resource(Resource::new("alu0", ResourceKind::Alu));
    let alu1 = m.add_resource(Resource::new("alu1", ResourceKind::Alu));
    let sh = m.add_resource(Resource::new("shifter", ResourceKind::Shifter));
    let mem = m.add_resource(Resource::new("mem", ResourceKind::Memory));
    let seq = m.add_resource(Resource::new("seq", ResourceKind::Sequencer));
    let bus = m.add_resource(Resource::new("move_bus", ResourceKind::Bus));

    let mut cw = ControlWordFormat::new();
    let f_a0_op = cw.push("a0_op", 5);
    let f_a0_l = cw.push("a0_l", 8);
    let f_a0_r = cw.push("a0_r", 8);
    let f_a0_rsel = cw.push("a0_rsel", 1);
    let f_a0_d = cw.push("a0_d", 8);
    let f_a1_op = cw.push("a1_op", 5);
    let f_a1_l = cw.push("a1_l", 6);
    let f_a1_r = cw.push("a1_r", 6);
    let f_a1_d = cw.push("a1_d", 6);
    let f_sh_op = cw.push("sh_op", 3);
    let f_sh_s = cw.push("sh_s", 7);
    let f_sh_d = cw.push("sh_d", 7);
    let f_sh_n = cw.push("sh_n", 4);
    let f_mem_op = cw.push("mem_op", 2);
    let f_mv_op = cw.push("mv_op", 2);
    let f_mv_s = cw.push("mv_s", 9);
    let f_mv_d = cw.push("mv_d", 9);
    let f_imm = cw.push("imm", 16);
    let f_seq_op = cw.push("seq_op", 3);
    let f_cond = cw.push("cond", 4);
    let f_addr = cw.push("addr", 9);
    m.control = cw;
    // Dispatch shares the ALU-0 left selector (a field conflict a real
    // encoder would have too).
    let f_dsp = f_a0_l;

    for c in [
        CondKind::True,
        CondKind::Zero,
        CondKind::NotZero,
        CondKind::Neg,
        CondKind::NotNeg,
        CondKind::Carry,
        CondKind::NotCarry,
        CondKind::Overflow,
        CondKind::Uf,
        CondKind::NotUf,
    ] {
        m.add_condition(c);
    }

    // Two ALUs. Only ALU-0 updates the flags (a real-machine quirk: the
    // second ALU exists for address arithmetic), so flag-free packing of
    // two additions is possible.
    let bin = [
        ("add", AluOp::Add, 1u64),
        ("adc", AluOp::Adc, 2),
        ("sub", AluOp::Sub, 3),
        ("sbb", AluOp::Sbb, 4),
        ("and", AluOp::And, 5),
        ("or", AluOp::Or, 6),
        ("xor", AluOp::Xor, 7),
    ];
    for (name, op, code) in bin {
        let mut t0 = MicroOpTemplate::new(name, Semantic::Alu(op))
            .with_dst(gp)
            .with_src(gp)
            .with_src(gp)
            .flags()
            .set(f_a0_op, V::Const(code))
            .set(f_a0_rsel, V::Const(0))
            .set(f_a0_l, V::Src(0))
            .set(f_a0_r, V::Src(1))
            .set(f_a0_d, V::Dst)
            .occupies(ResourceUse::phases(alu0, 0, 3));
        if matches!(op, AluOp::Adc | AluOp::Sbb) {
            t0 = t0.reads(m.special.flags.unwrap());
        }
        m.add_template(t0);
        // The ALU-1 twin: no flags, no immediate form.
        if !matches!(op, AluOp::Adc | AluOp::Sbb) {
            m.add_template(
                MicroOpTemplate::new(format!("{name}.1"), Semantic::Alu(op))
                    .with_dst(gp_alu1)
                    .with_src(gp_alu1)
                    .with_src(gp_alu1)
                    .set(f_a1_op, V::Const(code))
                    .set(f_a1_l, V::Src(0))
                    .set(f_a1_r, V::Src(1))
                    .set(f_a1_d, V::Dst)
                    .occupies(ResourceUse::phases(alu1, 0, 3)),
            );
        }
    }
    let un = [
        ("not", AluOp::Not, 10u64),
        ("neg", AluOp::Neg, 11),
        ("inc", AluOp::Inc, 12),
        ("dec", AluOp::Dec, 13),
        ("pass", AluOp::Pass, 14),
    ];
    for (name, op, code) in un {
        m.add_template(
            MicroOpTemplate::new(name, Semantic::Alu(op))
                .with_dst(gp)
                .with_src(gp)
                .flags()
                .set(f_a0_op, V::Const(code))
                .set(f_a0_rsel, V::Const(0))
                .set(f_a0_l, V::Src(0))
                .set(f_a0_d, V::Dst)
                .occupies(ResourceUse::phases(alu0, 0, 3)),
        );
        m.add_template(
            MicroOpTemplate::new(format!("{name}.1"), Semantic::Alu(op))
                .with_dst(gp_alu1)
                .with_src(gp_alu1)
                .set(f_a1_op, V::Const(code))
                .set(f_a1_l, V::Src(0))
                .set(f_a1_d, V::Dst)
                .occupies(ResourceUse::phases(alu1, 0, 3)),
        );
    }
    let bin_imm = [
        ("addi", AluOp::Add, 1u64),
        ("subi", AluOp::Sub, 3),
        ("andi", AluOp::And, 5),
        ("ori", AluOp::Or, 6),
        ("xori", AluOp::Xor, 7),
    ];
    for (name, op, code) in bin_imm {
        m.add_template(
            MicroOpTemplate::new(name, Semantic::Alu(op))
                .with_dst(gp)
                .with_src(gp)
                .with_imm(16)
                .flags()
                .set(f_a0_op, V::Const(code))
                .set(f_a0_rsel, V::Const(1))
                .set(f_a0_l, V::Src(0))
                .set(f_a0_d, V::Dst)
                .set(f_imm, V::Imm)
                .occupies(ResourceUse::phases(alu0, 0, 3)),
        );
    }

    let shifts = [
        ("shl", ShiftOp::Shl, 1u64),
        ("shr", ShiftOp::Shr, 2),
        ("sar", ShiftOp::Sar, 3),
        ("rol", ShiftOp::Rol, 4),
        ("ror", ShiftOp::Ror, 5),
    ];
    for (name, op, code) in shifts {
        m.add_template(
            MicroOpTemplate::new(name, Semantic::Shift(op))
                .with_dst(gp_sh)
                .with_src(gp_sh)
                .with_imm(4)
                .flags()
                .set(f_sh_op, V::Const(code))
                .set(f_sh_s, V::Src(0))
                .set(f_sh_d, V::Dst)
                .set(f_sh_n, V::Imm)
                .occupies(ResourceUse::phases(sh, 0, 3)),
        );
    }

    m.add_template(
        MicroOpTemplate::new("mov", Semantic::Move)
            .with_dst(mv_cls)
            .with_src(mv_cls)
            .set(f_mv_op, V::Const(1))
            .set(f_mv_s, V::Src(0))
            .set(f_mv_d, V::Dst)
            .occupies(ResourceUse::phases(bus, 0, 2)),
    );
    m.add_template(
        MicroOpTemplate::new("ldi", Semantic::LoadImm)
            .with_dst(mv_cls)
            .with_imm(16)
            .set(f_mv_op, V::Const(2))
            .set(f_mv_d, V::Dst)
            .set(f_imm, V::Imm)
            .occupies(ResourceUse::phases(bus, 0, 2)),
    );
    m.add_template(
        MicroOpTemplate::new("read", Semantic::MemRead)
            .reads(mar)
            .writes(mbr)
            .set(f_mem_op, V::Const(1))
            .occupies(ResourceUse::phases(mem, 0, 3)),
    );
    m.add_template(
        MicroOpTemplate::new("write", Semantic::MemWrite)
            .reads(mar)
            .reads(mbr)
            .set(f_mem_op, V::Const(2))
            .occupies(ResourceUse::phases(mem, 0, 3)),
    );

    let sq = ResourceUse::phases(seq, 1, 3);
    m.add_template(
        MicroOpTemplate::new("jmp", Semantic::Jump)
            .target()
            .set(f_seq_op, V::Const(1))
            .set(f_addr, V::Target)
            .occupies(sq),
    );
    m.add_template(
        MicroOpTemplate::new("br", Semantic::Branch)
            .cond()
            .target()
            .set(f_seq_op, V::Const(2))
            .set(f_cond, V::Cond)
            .set(f_addr, V::Target)
            .occupies(sq),
    );
    m.add_template(
        MicroOpTemplate::new("dispatch", Semantic::Dispatch)
            .with_src(gp)
            .with_imm(16)
            .target()
            .set(f_seq_op, V::Const(3))
            .set(f_dsp, V::Src(0))
            .set(f_imm, V::Imm)
            .set(f_addr, V::Target)
            .occupies(sq),
    );
    m.add_template(
        MicroOpTemplate::new("call", Semantic::Call)
            .target()
            .set(f_seq_op, V::Const(4))
            .set(f_addr, V::Target)
            .occupies(sq),
    );
    m.add_template(
        MicroOpTemplate::new("ret", Semantic::Return)
            .set(f_seq_op, V::Const(5))
            .occupies(sq),
    );
    m.add_template(
        MicroOpTemplate::new("poll", Semantic::Poll)
            .set(f_seq_op, V::Const(6))
            .occupies(sq),
    );
    m.add_template(
        MicroOpTemplate::new("halt", Semantic::Halt)
            .set(f_seq_op, V::Const(7))
            .occupies(sq),
    );

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ConflictModel;
    use crate::op::{BoundOp, MicroInstr};

    #[test]
    fn wm64_validates() {
        wm64().validate().unwrap();
    }

    #[test]
    fn two_adds_per_cycle() {
        let m = wm64();
        let r = m.find_file("R").unwrap();
        let a = BoundOp::new(m.find_template("add").unwrap())
            .with_dst(RegRef::new(r, 0))
            .with_src(RegRef::new(r, 1))
            .with_src(RegRef::new(r, 2));
        let b = BoundOp::new(m.find_template("add.1").unwrap())
            .with_dst(RegRef::new(r, 3))
            .with_src(RegRef::new(r, 4))
            .with_src(RegRef::new(r, 5));
        let mi = MicroInstr::of(vec![a, b]);
        m.validate_instr(&mi, ConflictModel::Coarse).unwrap();
    }

    #[test]
    fn word_is_very_wide() {
        let m = wm64();
        assert!(m.control_word_bits() > 100);
        assert!(m.control_word_bits() <= 128, "{}", m.control_word_bits());
    }

    #[test]
    fn dispatch_conflicts_with_alu0() {
        // dispatch borrows the a0_l selector field.
        let m = wm64();
        let r = m.find_file("R").unwrap();
        let a = BoundOp::new(m.find_template("add").unwrap())
            .with_dst(RegRef::new(r, 0))
            .with_src(RegRef::new(r, 1))
            .with_src(RegRef::new(r, 2));
        let d = BoundOp::new(m.find_template("dispatch").unwrap())
            .with_src(RegRef::new(r, 3))
            .with_imm(3)
            .with_target(0);
        assert!(m.conflicts(&a, &d, ConflictModel::Fine));
    }

    #[test]
    fn has_256_registers() {
        let m = wm64();
        assert_eq!(m.file(m.find_file("R").unwrap()).count, 256);
    }
}
