//! **VM-1 "Vertica"** — the vertical reference machine.
//!
//! One micro-operation per microinstruction, enforced by a single `core`
//! resource every template occupies for the whole cycle. The control word
//! is short (the paper's \[5\]: vertical encoding trades word width for
//! "a loss of flexibility and speed"). Used by experiment E4.

use crate::field::ControlWordFormat;
use crate::machine::MachineDesc;
use crate::regs::{RegClass, RegRef, RegisterFile};
use crate::resource::{Resource, ResourceKind, ResourceUse};
use crate::semantic::{AluOp, CondKind, Semantic, ShiftOp};
use crate::template::{FieldValueSrc as V, MicroOpTemplate};

/// Builds the VM-1 machine description.
pub fn vm1() -> MachineDesc {
    let mut m = MachineDesc::new("VM-1", 16, 1);
    m.interrupt_service_cycles = 40;
    m.trap_service_cycles = 300;

    let r = m.add_file(RegisterFile::new("R", 16, 16, true));
    let s = m.add_file(RegisterFile::new("S", 3, 16, false));
    let f = m.add_file(RegisterFile::new("F", 1, 8, false));
    let ls = m.add_file(RegisterFile::new("LS", 16, 16, false));
    m.scratch_file = Some(ls);

    let acc = RegRef::new(s, 0);
    let mar = RegRef::new(s, 1);
    let mbr = RegRef::new(s, 2);
    m.special.acc = Some(acc);
    m.special.mar = Some(mar);
    m.special.mbr = Some(mbr);
    m.special.flags = Some(RegRef::new(f, 0));

    // One homogeneous class: vertical machines hide the datapath.
    let any = m.add_class(RegClass::from_ranges(
        "any",
        vec![(r, 0, 16), (s, 0, 3), (ls, 0, 16)],
    ));

    let core = m.add_resource(Resource::new("core", ResourceKind::Other));

    let mut cw = ControlWordFormat::new();
    let f_op = cw.push("op", 5);
    let f_a = cw.push("a", 6);
    let f_b = cw.push("b", 6);
    let f_d = cw.push("d", 6);
    let f_imm = cw.push("imm", 8);
    let f_addr = cw.push("addr", 11);
    let f_cond = cw.push("cond", 3);
    m.control = cw;

    for c in [
        CondKind::True,
        CondKind::Zero,
        CondKind::NotZero,
        CondKind::Neg,
        CondKind::Carry,
        CondKind::Uf,
    ] {
        m.add_condition(c);
    }

    let whole = ResourceUse::whole(core, 1);

    let bin = [
        ("add", AluOp::Add, 1u64),
        ("adc", AluOp::Adc, 2),
        ("sub", AluOp::Sub, 3),
        ("and", AluOp::And, 4),
        ("or", AluOp::Or, 5),
        ("xor", AluOp::Xor, 6),
    ];
    for (name, op, code) in bin {
        let mut t = MicroOpTemplate::new(name, Semantic::Alu(op))
            .with_dst(any)
            .with_src(any)
            .with_src(any)
            .flags()
            .set(f_op, V::Const(code))
            .set(f_a, V::Src(0))
            .set(f_b, V::Src(1))
            .set(f_d, V::Dst)
            .occupies(whole);
        if op == AluOp::Adc {
            t = t.reads(m.special.flags.unwrap());
        }
        m.add_template(t);
    }
    let un = [
        ("not", AluOp::Not, 7u64),
        ("neg", AluOp::Neg, 8),
        ("inc", AluOp::Inc, 9),
        ("dec", AluOp::Dec, 10),
        ("pass", AluOp::Pass, 11),
    ];
    for (name, op, code) in un {
        m.add_template(
            MicroOpTemplate::new(name, Semantic::Alu(op))
                .with_dst(any)
                .with_src(any)
                .flags()
                .set(f_op, V::Const(code))
                .set(f_a, V::Src(0))
                .set(f_d, V::Dst)
                .occupies(whole),
        );
    }
    // addi/subi with a small 8-bit immediate.
    let bin_imm = [("addi", AluOp::Add, 12u64), ("subi", AluOp::Sub, 13)];
    for (name, op, code) in bin_imm {
        m.add_template(
            MicroOpTemplate::new(name, Semantic::Alu(op))
                .with_dst(any)
                .with_src(any)
                .with_imm(8)
                .flags()
                .set(f_op, V::Const(code))
                .set(f_a, V::Src(0))
                .set(f_d, V::Dst)
                .set(f_imm, V::Imm)
                .occupies(whole),
        );
    }

    let shifts = [
        ("shl", ShiftOp::Shl, 14u64),
        ("shr", ShiftOp::Shr, 15),
        ("sar", ShiftOp::Sar, 16),
        ("rol", ShiftOp::Rol, 17),
        ("ror", ShiftOp::Ror, 18),
    ];
    for (name, op, code) in shifts {
        m.add_template(
            MicroOpTemplate::new(name, Semantic::Shift(op))
                .with_dst(any)
                .with_src(any)
                .with_imm(4)
                .flags()
                .set(f_op, V::Const(code))
                .set(f_a, V::Src(0))
                .set(f_d, V::Dst)
                .set(f_imm, V::Imm)
                .occupies(whole),
        );
    }

    m.add_template(
        MicroOpTemplate::new("mov", Semantic::Move)
            .with_dst(any)
            .with_src(any)
            .set(f_op, V::Const(19))
            .set(f_a, V::Src(0))
            .set(f_d, V::Dst)
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("ldi", Semantic::LoadImm)
            .with_dst(any)
            .with_imm(8)
            .set(f_op, V::Const(20))
            .set(f_d, V::Dst)
            .set(f_imm, V::Imm)
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("read", Semantic::MemRead)
            .reads(mar)
            .writes(mbr)
            .set(f_op, V::Const(21))
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("write", Semantic::MemWrite)
            .reads(mar)
            .reads(mbr)
            .set(f_op, V::Const(22))
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("jmp", Semantic::Jump)
            .target()
            .set(f_op, V::Const(23))
            .set(f_addr, V::Target)
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("br", Semantic::Branch)
            .cond()
            .target()
            .set(f_op, V::Const(24))
            .set(f_cond, V::Cond)
            .set(f_addr, V::Target)
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("dispatch", Semantic::Dispatch)
            .with_src(any)
            .with_imm(8)
            .target()
            .set(f_op, V::Const(25))
            .set(f_a, V::Src(0))
            .set(f_imm, V::Imm)
            .set(f_addr, V::Target)
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("call", Semantic::Call)
            .target()
            .set(f_op, V::Const(26))
            .set(f_addr, V::Target)
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("ret", Semantic::Return)
            .set(f_op, V::Const(27))
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("poll", Semantic::Poll)
            .set(f_op, V::Const(28))
            .occupies(whole),
    );
    m.add_template(
        MicroOpTemplate::new("halt", Semantic::Halt)
            .set(f_op, V::Const(29))
            .occupies(whole),
    );

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ConflictModel;
    use crate::op::{BoundOp, MicroInstr};

    #[test]
    fn vm1_validates() {
        vm1().validate().unwrap();
    }

    #[test]
    fn only_one_op_per_instruction() {
        let m = vm1();
        let r = m.find_file("R").unwrap();
        let a = BoundOp::new(m.find_template("mov").unwrap())
            .with_dst(RegRef::new(r, 0))
            .with_src(RegRef::new(r, 1));
        let b = BoundOp::new(m.find_template("ldi").unwrap())
            .with_dst(RegRef::new(r, 2))
            .with_imm(1);
        let mi = MicroInstr::of(vec![a, b]);
        assert!(m.validate_instr(&mi, ConflictModel::Fine).is_err());
        assert!(m.validate_instr(&mi, ConflictModel::Coarse).is_err());
    }

    #[test]
    fn word_is_short() {
        assert_eq!(vm1().control_word_bits(), 45);
    }

    #[test]
    fn small_immediates_only() {
        let m = vm1();
        let ldi = m.template(m.find_template("ldi").unwrap());
        assert_eq!(ldi.imm_bits(), Some(8), "wide constants need composition");
    }
}
