//! **BX-2 "Baroque"** — the irregular reference machine.
//!
//! Stands in for the VAX-11 microarchitecture of the YALLL paper, whose
//! "baroque structure … discouraged the implementers from attempting any
//! code optimization". The mechanisms of baroqueness reproduced here:
//!
//! * one shared data bus every datapath operation occupies,
//! * operand selector fields *shared between units* (the ALU and the move
//!   path read their sources from the same field), so cross-unit packing
//!   almost always field-conflicts,
//! * only 8 general registers,
//! * an 8-bit immediate path (wide constants take two operations),
//! * shifts only by one bit, no multiway dispatch, and a meagre condition
//!   repertoire (no `UF` bit — the shifted-out bit lands in carry).
//!
//! The one packing opportunity left: the memory interface uses the bus only
//! in phases 2–4 while a move needs it in 0–2, so a *fine*-model compactor
//! can overlap them. Experiment E3 measures how much worse everything
//! compiles here than on HM-1.

use crate::field::ControlWordFormat;
use crate::machine::MachineDesc;
use crate::regs::{RegClass, RegRef, RegisterFile};
use crate::resource::{Resource, ResourceKind, ResourceUse};
use crate::semantic::{AluOp, CondKind, Semantic, ShiftOp};
use crate::template::{FieldValueSrc as V, MicroOpTemplate};

/// Builds the BX-2 machine description.
pub fn bx2() -> MachineDesc {
    let mut m = MachineDesc::new("BX-2", 16, 4);
    m.interrupt_service_cycles = 60;
    m.trap_service_cycles = 500;

    let g = m.add_file(RegisterFile::new("G", 8, 16, true));
    let s = m.add_file(RegisterFile::new("S", 2, 16, false)); // MAR, MBR
    let f = m.add_file(RegisterFile::new("F", 1, 8, false));
    let ls = m.add_file(RegisterFile::new("LS", 8, 16, false));
    m.scratch_file = Some(ls);

    let mar = RegRef::new(s, 0);
    let mbr = RegRef::new(s, 1);
    m.special.mar = Some(mar);
    m.special.mbr = Some(mbr);
    m.special.flags = Some(RegRef::new(f, 0));

    let gp = m.add_class(RegClass::whole_file("gp", g, 8));
    // The shared source/dest selector classes: G + MAR + MBR + LS.
    let sel_s = m.add_class(RegClass::from_ranges(
        "sel_src",
        vec![(g, 0, 8), (s, 0, 2), (ls, 0, 8)],
    ));
    let sel_d = m.add_class(RegClass::from_ranges(
        "sel_dst",
        vec![(g, 0, 8), (s, 0, 2), (ls, 0, 8)],
    ));

    let bus = m.add_resource(Resource::new("bus", ResourceKind::Bus));
    let alu = m.add_resource(Resource::new("alu", ResourceKind::Alu));
    let mem = m.add_resource(Resource::new("mem", ResourceKind::Memory));
    let seq = m.add_resource(Resource::new("seq", ResourceKind::Sequencer));

    let mut cw = ControlWordFormat::new();
    let f_unit = cw.push("unit_op", 5); // one opcode field for *everything*
    let f_src = cw.push("src_sel", 5); // shared by ALU left and MOV source
    let f_src2 = cw.push("src2_sel", 3); // ALU right (G only)
    let f_dst = cw.push("dst_sel", 5); // shared destination selector
    let f_imm = cw.push("imm", 8);
    let f_mem = cw.push("mem_op", 2);
    let f_seq_op = cw.push("seq_op", 3);
    let f_cond = cw.push("cond", 3);
    let f_addr = cw.push("addr", 11);
    m.control = cw;

    for c in [
        CondKind::True,
        CondKind::Zero,
        CondKind::NotZero,
        CondKind::Neg,
        CondKind::Carry,
        CondKind::NotCarry,
    ] {
        m.add_condition(c);
    }

    let bus_alu = ResourceUse::phases(bus, 0, 3);
    let alu_use = ResourceUse::phases(alu, 1, 3);
    let bus_mv = ResourceUse::phases(bus, 0, 2);
    let bus_mem = ResourceUse::phases(bus, 2, 4);

    let bin = [
        ("add", AluOp::Add, 1u64),
        ("adc", AluOp::Adc, 2),
        ("sub", AluOp::Sub, 3),
        ("and", AluOp::And, 4),
        ("or", AluOp::Or, 5),
        ("xor", AluOp::Xor, 6),
    ];
    for (name, op, code) in bin {
        let mut t = MicroOpTemplate::new(name, Semantic::Alu(op))
            .with_dst(gp)
            .with_src(sel_s)
            .with_src(gp)
            .flags()
            .set(f_unit, V::Const(code))
            .set(f_src, V::Src(0))
            .set(f_src2, V::Src(1))
            .set(f_dst, V::Dst)
            .occupies(bus_alu)
            .occupies(alu_use);
        if op == AluOp::Adc {
            t = t.reads(m.special.flags.unwrap());
        }
        m.add_template(t);
    }
    let un = [
        ("not", AluOp::Not, 7u64),
        ("neg", AluOp::Neg, 8),
        ("inc", AluOp::Inc, 9),
        ("dec", AluOp::Dec, 10),
    ];
    for (name, op, code) in un {
        m.add_template(
            MicroOpTemplate::new(name, Semantic::Alu(op))
                .with_dst(gp)
                .with_src(sel_s)
                .flags()
                .set(f_unit, V::Const(code))
                .set(f_src, V::Src(0))
                .set(f_dst, V::Dst)
                .occupies(bus_alu)
                .occupies(alu_use),
        );
    }
    // addi with an 8-bit immediate only.
    m.add_template(
        MicroOpTemplate::new("addi", Semantic::Alu(AluOp::Add))
            .with_dst(gp)
            .with_src(sel_s)
            .with_imm(8)
            .flags()
            .set(f_unit, V::Const(11))
            .set(f_src, V::Src(0))
            .set(f_dst, V::Dst)
            .set(f_imm, V::Imm)
            .occupies(bus_alu)
            .occupies(alu_use),
    );
    m.add_template(
        MicroOpTemplate::new("subi", Semantic::Alu(AluOp::Sub))
            .with_dst(gp)
            .with_src(sel_s)
            .with_imm(8)
            .flags()
            .set(f_unit, V::Const(12))
            .set(f_src, V::Src(0))
            .set(f_dst, V::Dst)
            .set(f_imm, V::Imm)
            .occupies(bus_alu)
            .occupies(alu_use),
    );

    // Shifts: one bit at a time, shifted-out bit goes to carry.
    let shifts = [("shl", ShiftOp::Shl, 13u64), ("shr", ShiftOp::Shr, 14)];
    for (name, op, code) in shifts {
        m.add_template(
            MicroOpTemplate::new(name, Semantic::Shift(op))
                .with_dst(gp)
                .with_src(sel_s)
                .with_imm(1) // amount field is 1 bit: shift by exactly 1
                .flags()
                .set(f_unit, V::Const(code))
                .set(f_src, V::Src(0))
                .set(f_dst, V::Dst)
                .set(f_imm, V::Imm)
                .occupies(bus_alu)
                .occupies(alu_use),
        );
    }

    m.add_template(
        MicroOpTemplate::new("mov", Semantic::Move)
            .with_dst(sel_d)
            .with_src(sel_s)
            .set(f_unit, V::Const(15))
            .set(f_src, V::Src(0))
            .set(f_dst, V::Dst)
            .occupies(bus_mv),
    );
    m.add_template(
        MicroOpTemplate::new("ldi", Semantic::LoadImm)
            .with_dst(sel_d)
            .with_imm(8)
            .set(f_unit, V::Const(16))
            .set(f_dst, V::Dst)
            .set(f_imm, V::Imm)
            .occupies(bus_mv),
    );

    // The memory interface rides the bus late in the cycle.
    m.add_template(
        MicroOpTemplate::new("read", Semantic::MemRead)
            .reads(mar)
            .writes(mbr)
            .set(f_mem, V::Const(1))
            .occupies(ResourceUse::phases(mem, 0, 4))
            .occupies(bus_mem),
    );
    m.add_template(
        MicroOpTemplate::new("write", Semantic::MemWrite)
            .reads(mar)
            .reads(mbr)
            .set(f_mem, V::Const(2))
            .occupies(ResourceUse::phases(mem, 0, 4))
            .occupies(bus_mem),
    );

    let seq_whole = ResourceUse::phases(seq, 2, 4);
    m.add_template(
        MicroOpTemplate::new("jmp", Semantic::Jump)
            .target()
            .set(f_seq_op, V::Const(1))
            .set(f_addr, V::Target)
            .occupies(seq_whole),
    );
    m.add_template(
        MicroOpTemplate::new("br", Semantic::Branch)
            .cond()
            .target()
            .set(f_seq_op, V::Const(2))
            .set(f_cond, V::Cond)
            .set(f_addr, V::Target)
            .occupies(seq_whole),
    );
    m.add_template(
        MicroOpTemplate::new("call", Semantic::Call)
            .target()
            .set(f_seq_op, V::Const(3))
            .set(f_addr, V::Target)
            .occupies(seq_whole),
    );
    m.add_template(
        MicroOpTemplate::new("ret", Semantic::Return)
            .set(f_seq_op, V::Const(4))
            .occupies(seq_whole),
    );
    m.add_template(
        MicroOpTemplate::new("poll", Semantic::Poll)
            .set(f_seq_op, V::Const(5))
            .occupies(seq_whole),
    );
    m.add_template(
        MicroOpTemplate::new("halt", Semantic::Halt)
            .set(f_seq_op, V::Const(6))
            .occupies(seq_whole),
    );

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ConflictModel;
    use crate::op::{BoundOp, MicroInstr};

    #[test]
    fn bx2_validates() {
        bx2().validate().unwrap();
    }

    #[test]
    fn alu_and_move_field_conflict() {
        // The shared src_sel/dst_sel fields stop ALU+MOV packing even
        // though they are distinct units.
        let m = bx2();
        let g = m.find_file("G").unwrap();
        let a = BoundOp::new(m.find_template("add").unwrap())
            .with_dst(RegRef::new(g, 0))
            .with_src(RegRef::new(g, 1))
            .with_src(RegRef::new(g, 2));
        let b = BoundOp::new(m.find_template("mov").unwrap())
            .with_dst(RegRef::new(g, 3))
            .with_src(RegRef::new(g, 4));
        assert!(m.conflicts(&a, &b, ConflictModel::Fine));
    }

    #[test]
    fn move_and_memory_overlap_under_fine_model_only() {
        let m = bx2();
        let g = m.find_file("G").unwrap();
        let mv = BoundOp::new(m.find_template("mov").unwrap())
            .with_dst(RegRef::new(g, 0))
            .with_src(RegRef::new(g, 1));
        let rd = BoundOp::new(m.find_template("read").unwrap());
        let mi = MicroInstr::of(vec![mv.clone(), rd.clone()]);
        assert!(m.validate_instr(&mi, ConflictModel::Fine).is_ok());
        assert!(m.validate_instr(&mi, ConflictModel::Coarse).is_err());
    }

    #[test]
    fn no_uf_condition_and_no_dispatch() {
        let m = bx2();
        assert!(!m.supports_cond(CondKind::Uf));
        assert!(m.find_template("dispatch").is_none());
    }

    #[test]
    fn eight_registers_only() {
        let m = bx2();
        assert_eq!(m.file(m.find_file("G").unwrap()).count, 8);
    }
}
