//! Micro-operation templates: how a machine realises each primitive.
//!
//! A template says *what* a micro-operation does (its [`Semantic`]), *which
//! registers* it may touch (operand classes), *which control fields* it
//! drives, and *which resources* it occupies during which phases. Binding a
//! template to concrete operands yields a [`BoundOp`](crate::op::BoundOp) —
//! the unit of microinstruction composition.

use serde::{Deserialize, Serialize};

use crate::ids::{ClassId, FieldId};
use crate::regs::RegRef;
use crate::resource::ResourceUse;
use crate::semantic::Semantic;

/// What a source operand of a template may be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SrcSpec {
    /// A register drawn from the given class.
    Class(ClassId),
    /// An immediate constant of at most `bits` bits, carried in the
    /// control word's immediate field.
    Imm {
        /// Maximum width of the constant.
        bits: u16,
    },
}

/// Where the value written into a control field comes from when a template
/// is bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldValueSrc {
    /// A fixed value (typically the unit's opcode selector).
    Const(u64),
    /// The class encoding of the destination register.
    Dst,
    /// The class encoding of source operand `n`.
    Src(u8),
    /// The bound immediate value.
    Imm,
    /// The branch target (a control-store address, resolved at emission).
    Target,
    /// The encoding of the bound condition.
    Cond,
}

/// One field driven by a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldSetting {
    /// Which control field.
    pub field: FieldId,
    /// What goes into it.
    pub value: FieldValueSrc,
}

impl FieldSetting {
    /// Convenience constructor.
    pub fn new(field: FieldId, value: FieldValueSrc) -> Self {
        FieldSetting { field, value }
    }
}

/// A micro-operation template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroOpTemplate {
    /// Template name, e.g. `"add"`, `"shr"`, `"read"`.
    pub name: String,
    /// Architectural meaning.
    pub semantic: Semantic,
    /// Destination register class, when the template writes a register.
    pub dst: Option<ClassId>,
    /// Source operand specifications.
    pub srcs: Vec<SrcSpec>,
    /// Registers read implicitly (e.g. flags by `adc`, MAR by `read`).
    pub implicit_reads: Vec<RegRef>,
    /// Registers written implicitly (e.g. the flags register, MBR).
    pub implicit_writes: Vec<RegRef>,
    /// Whether the template updates the condition flags.
    pub writes_flags: bool,
    /// Whether the template takes a condition operand (branches).
    pub takes_cond: bool,
    /// Whether the template takes a control-store target operand.
    pub takes_target: bool,
    /// Control fields this template drives.
    pub fields: Vec<FieldSetting>,
    /// Resources occupied, with phase intervals.
    pub occupancy: Vec<ResourceUse>,
}

impl MicroOpTemplate {
    /// Creates a template with the given name and semantic; fill the rest
    /// with the builder-style `with_*` methods.
    pub fn new(name: impl Into<String>, semantic: Semantic) -> Self {
        MicroOpTemplate {
            name: name.into(),
            semantic,
            dst: None,
            srcs: Vec::new(),
            implicit_reads: Vec::new(),
            implicit_writes: Vec::new(),
            writes_flags: false,
            takes_cond: false,
            takes_target: false,
            fields: Vec::new(),
            occupancy: Vec::new(),
        }
    }

    /// Sets the destination class.
    pub fn with_dst(mut self, class: ClassId) -> Self {
        self.dst = Some(class);
        self
    }

    /// Appends a register source.
    pub fn with_src(mut self, class: ClassId) -> Self {
        self.srcs.push(SrcSpec::Class(class));
        self
    }

    /// Appends an immediate source of up to `bits` bits.
    pub fn with_imm(mut self, bits: u16) -> Self {
        self.srcs.push(SrcSpec::Imm { bits });
        self
    }

    /// Adds an implicit read.
    pub fn reads(mut self, reg: RegRef) -> Self {
        self.implicit_reads.push(reg);
        self
    }

    /// Adds an implicit write.
    pub fn writes(mut self, reg: RegRef) -> Self {
        self.implicit_writes.push(reg);
        self
    }

    /// Marks the template as updating condition flags.
    pub fn flags(mut self) -> Self {
        self.writes_flags = true;
        self
    }

    /// Marks the template as taking a condition operand.
    pub fn cond(mut self) -> Self {
        self.takes_cond = true;
        self
    }

    /// Marks the template as taking a branch target operand.
    pub fn target(mut self) -> Self {
        self.takes_target = true;
        self
    }

    /// Adds a field setting.
    pub fn set(mut self, field: FieldId, value: FieldValueSrc) -> Self {
        self.fields.push(FieldSetting::new(field, value));
        self
    }

    /// Adds a resource occupancy.
    pub fn occupies(mut self, use_: ResourceUse) -> Self {
        self.occupancy.push(use_);
        self
    }

    /// Number of register sources (excluding immediates).
    pub fn reg_src_count(&self) -> usize {
        self.srcs
            .iter()
            .filter(|s| matches!(s, SrcSpec::Class(_)))
            .count()
    }

    /// Whether the template takes an immediate source.
    pub fn has_imm(&self) -> bool {
        self.srcs.iter().any(|s| matches!(s, SrcSpec::Imm { .. }))
    }

    /// Maximum immediate width accepted, if any.
    pub fn imm_bits(&self) -> Option<u16> {
        self.srcs.iter().find_map(|s| match s {
            SrcSpec::Imm { bits } => Some(*bits),
            SrcSpec::Class(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ResourceId;
    use crate::semantic::AluOp;

    #[test]
    fn builder_accumulates() {
        let t = MicroOpTemplate::new("add", Semantic::Alu(AluOp::Add))
            .with_dst(ClassId(0))
            .with_src(ClassId(1))
            .with_src(ClassId(2))
            .flags()
            .set(FieldId(0), FieldValueSrc::Const(1))
            .set(FieldId(1), FieldValueSrc::Dst)
            .occupies(ResourceUse::phases(ResourceId(0), 1, 2));
        assert_eq!(t.dst, Some(ClassId(0)));
        assert_eq!(t.reg_src_count(), 2);
        assert!(!t.has_imm());
        assert!(t.writes_flags);
        assert_eq!(t.fields.len(), 2);
        assert_eq!(t.occupancy.len(), 1);
    }

    #[test]
    fn imm_templates_report_width() {
        let t = MicroOpTemplate::new("ldi", Semantic::LoadImm)
            .with_dst(ClassId(0))
            .with_imm(16);
        assert!(t.has_imm());
        assert_eq!(t.imm_bits(), Some(16));
        assert_eq!(t.reg_src_count(), 0);
    }

    #[test]
    fn branch_markers() {
        let t = MicroOpTemplate::new("brz", Semantic::Branch).cond().target();
        assert!(t.takes_cond);
        assert!(t.takes_target);
    }
}
