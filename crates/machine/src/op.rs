//! Bound micro-operations, microinstructions, and microprograms.
//!
//! A [`BoundOp`] is a micro-operation template instantiated with concrete
//! operands; a [`MicroInstr`] is a set of bound operations packed into one
//! control word; a [`MicroProgram`] is a control store image plus block
//! structure (symbolic branch targets are block ids until emission).

use serde::{Deserialize, Serialize};

use crate::ids::TemplateId;
use crate::regs::RegRef;
use crate::semantic::CondKind;

/// A micro-operation bound to concrete operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BoundOp {
    /// Which template.
    pub template: TemplateId,
    /// Destination register, when the template writes one.
    pub dst: Option<RegRef>,
    /// Source registers, in template order (immediates excluded).
    pub srcs: Vec<RegRef>,
    /// Immediate value, when the template takes one.
    pub imm: Option<u64>,
    /// Symbolic branch target: a block id (resolved to a control store
    /// address at emission).
    pub target: Option<u32>,
    /// Condition, for branch templates.
    pub cond: Option<CondKind>,
}

impl BoundOp {
    /// Creates a bound op with no operands; fill with the `with_*` methods.
    pub fn new(template: TemplateId) -> Self {
        BoundOp {
            template,
            dst: None,
            srcs: Vec::new(),
            imm: None,
            target: None,
            cond: None,
        }
    }

    /// Sets the destination register.
    pub fn with_dst(mut self, dst: RegRef) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Appends a source register.
    pub fn with_src(mut self, src: RegRef) -> Self {
        self.srcs.push(src);
        self
    }

    /// Sets the immediate.
    pub fn with_imm(mut self, imm: u64) -> Self {
        self.imm = Some(imm);
        self
    }

    /// Sets the symbolic branch target (a block id).
    pub fn with_target(mut self, block: u32) -> Self {
        self.target = Some(block);
        self
    }

    /// Sets the branch condition.
    pub fn with_cond(mut self, cond: CondKind) -> Self {
        self.cond = Some(cond);
        self
    }
}

/// One microinstruction: a set of micro-operations executed in the same
/// microcycle. Construction does not check conflicts; use
/// [`MachineDesc::validate_instr`](crate::MachineDesc::validate_instr).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MicroInstr {
    /// The packed operations.
    pub ops: Vec<BoundOp>,
}

impl MicroInstr {
    /// An empty microinstruction (a no-op cycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// A microinstruction holding exactly one operation.
    pub fn single(op: BoundOp) -> Self {
        MicroInstr { ops: vec![op] }
    }

    /// A microinstruction holding the given operations.
    pub fn of(ops: Vec<BoundOp>) -> Self {
        MicroInstr { ops }
    }

    /// Number of packed operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the instruction packs no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A basic block of microinstructions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MicroBlock {
    /// The instructions, in execution order.
    pub instrs: Vec<MicroInstr>,
}

/// A complete microprogram: blocks of microinstructions with symbolic
/// branch targets referring to block indices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MicroProgram {
    /// The blocks; block 0 is the entry.
    pub blocks: Vec<MicroBlock>,
}

impl MicroProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of microinstructions over all blocks — the *code size*
    /// measure used by experiment E1.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Total number of micro-operations over all instructions.
    pub fn op_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .map(|mi| mi.len())
            .sum()
    }

    /// Mean operations packed per microinstruction (parallelism achieved).
    pub fn packing_ratio(&self) -> f64 {
        let mis = self.instr_count();
        if mis == 0 {
            0.0
        } else {
            self.op_count() as f64 / mis as f64
        }
    }

    /// Computes each block's start address when blocks are laid out
    /// consecutively from address 0.
    pub fn block_addresses(&self) -> Vec<u32> {
        let mut addrs = Vec::with_capacity(self.blocks.len());
        let mut a = 0u32;
        for b in &self.blocks {
            addrs.push(a);
            a += b.instrs.len() as u32;
        }
        addrs
    }

    /// Flattens the program into a linear control store, resolving
    /// symbolic block targets into absolute addresses.
    pub fn flatten(&self) -> Vec<MicroInstr> {
        let addrs = self.block_addresses();
        let mut out = Vec::with_capacity(self.instr_count());
        for b in &self.blocks {
            for mi in &b.instrs {
                let mut mi = mi.clone();
                for op in &mut mi.ops {
                    if let Some(t) = op.target {
                        op.target = Some(addrs[t as usize]);
                    }
                }
                out.push(mi);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FileId, TemplateId};
    use crate::regs::RegRef;

    fn op(t: u16) -> BoundOp {
        BoundOp::new(TemplateId(t))
    }

    #[test]
    fn bound_op_builder() {
        let o = op(1)
            .with_dst(RegRef::new(FileId(0), 2))
            .with_src(RegRef::new(FileId(0), 3))
            .with_imm(7)
            .with_target(4)
            .with_cond(CondKind::Zero);
        assert_eq!(o.dst, Some(RegRef::new(FileId(0), 2)));
        assert_eq!(o.srcs.len(), 1);
        assert_eq!(o.imm, Some(7));
        assert_eq!(o.target, Some(4));
        assert_eq!(o.cond, Some(CondKind::Zero));
    }

    #[test]
    fn program_counts_and_ratio() {
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::of(vec![op(0), op(1)]),
                MicroInstr::single(op(2)),
            ],
        });
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(op(3))],
        });
        assert_eq!(p.instr_count(), 3);
        assert_eq!(p.op_count(), 4);
        assert!((p.packing_ratio() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.block_addresses(), vec![0, 2]);
    }

    #[test]
    fn flatten_resolves_targets() {
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(op(0).with_target(1))],
        });
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(op(1).with_target(0))],
        });
        let flat = p.flatten();
        assert_eq!(flat[0].ops[0].target, Some(1));
        assert_eq!(flat[1].ops[0].target, Some(0));
    }

    #[test]
    fn empty_program_ratio_is_zero() {
        assert_eq!(MicroProgram::new().packing_ratio(), 0.0);
    }
}
