//! # `mcc-yalll` — the YALLL frontend
//!
//! YALLL (*Yet Another Low Level Language*, Patterson, Lew & Tuck 1979) is
//! the survey's §2.2.4 language: "rather than to try to bridge the gap
//! between a [machine independent] HLL to microarchitecture in one step,
//! we have designed a low level language that is capable of producing
//! microcode for different machines". It looks like a conventional
//! assembly language; the same program retargets by changing only the
//! `reg` declaration header — exactly how the paper's transliteration
//! example differed between the HP300 and the VAX.
//!
//! # Syntax
//!
//! ```text
//! ; transliterate, HM-1 binding header
//! reg str = R1
//! reg tbl = R2
//! reg char            ; unbound: the compiler allocates it
//! loop:
//!   load char, str    ; char = MEM[str]
//!   jump out if char = 0
//!   add addr, char, tbl
//!   load char, addr
//!   stor char, str
//!   add str, str, 1
//!   jump loop
//! out: exit
//! ```
//!
//! Instructions: `move d,s` · `const d,n` · `add/sub/and/or/xor d,a,b`
//! (b may be a constant) · `inc/dec d` · `not/neg d,a` ·
//! `shl/shr/sar/rol/ror d,a,n` · `load d,a` · `stor s,a` · `jump L` ·
//! `jump L if a <relop> b` · `mbranch a, 01xx -> L` (true/false/don't-care
//! mask, the paper's "fairly sophisticated" branch facility) · `call L` ·
//! `ret` · `poll` · `exit [reg]`.

use std::collections::HashMap;

use mcc_lang::{parse_int, Diagnostic, FrontendLimits, Span, TokenBudget};
use mcc_machine::{AluOp, CondKind, MachineDesc, RegRef, ShiftOp};
use mcc_mir::{FuncBuilder, MirFunction, Operand, Term};

/// A parsed-and-lowered YALLL program.
#[derive(Debug)]
pub struct YalllProgram {
    /// The lowered function (symbolic registers still virtual).
    pub func: MirFunction,
    /// Name → operand for every declared register (observability:
    /// experiment harnesses read results through this map).
    pub bindings: HashMap<String, Operand>,
}

fn err(msg: impl Into<String>, line_start: usize) -> Diagnostic {
    Diagnostic::new(msg, Span::new(line_start, line_start))
}

/// Resolves a machine register name like `R3`, `G2`, `LS7`, `ACC`, `MAR`,
/// `MBR` against the target machine.
pub fn machine_reg(m: &MachineDesc, name: &str) -> Option<RegRef> {
    m.resolve_reg_name(name)
}

struct Lower<'m> {
    m: &'m MachineDesc,
    b: FuncBuilder,
    names: HashMap<String, Operand>,
    labels: HashMap<String, u32>,
    /// Labels that have been *defined* (jumped-into blocks switched to).
    defined: HashMap<String, bool>,
    exited: bool,
}

impl<'m> Lower<'m> {
    fn label_block(&mut self, name: &str) -> u32 {
        if let Some(&b) = self.labels.get(name) {
            return b;
        }
        let blk = self.b.new_labeled_block(name);
        self.labels.insert(name.to_string(), blk);
        self.defined.insert(name.to_string(), false);
        blk
    }

    fn operand(&mut self, tok: &str, at: usize) -> Result<Operand, Diagnostic> {
        if let Some(&o) = self.names.get(&tok.to_ascii_lowercase()) {
            return Ok(o);
        }
        if let Some(r) = machine_reg(self.m, tok) {
            return Ok(Operand::Reg(r));
        }
        Err(err(format!("unknown register `{tok}`"), at))
    }

    /// Register or constant.
    fn roc(&mut self, tok: &str, at: usize) -> Result<RegOrConst, Diagnostic> {
        if let Some(v) = parse_int(tok) {
            return Ok(RegOrConst::Const(v));
        }
        Ok(RegOrConst::Reg(self.operand(tok, at)?))
    }

    /// Emit a flag-setting comparison `a relop b` and return the branch
    /// condition meaning "relation holds".
    fn compare(
        &mut self,
        a: Operand,
        relop: &str,
        b: RegOrConst,
        at: usize,
    ) -> Result<CondKind, Diagnostic> {
        // `x = 0` and `x <> 0` avoid the subtraction.
        if matches!(b, RegOrConst::Const(0)) && (relop == "=" || relop == "<>") {
            self.b.alu_un(AluOp::Pass, a, a);
            return Ok(if relop == "=" {
                CondKind::Zero
            } else {
                CondKind::NotZero
            });
        }
        let t = Operand::Vreg(self.b.vreg());
        match b {
            RegOrConst::Reg(r) => self.b.alu(AluOp::Sub, t, a, r),
            RegOrConst::Const(c) => self.b.alu_imm(AluOp::Sub, t, a, c),
        }
        Ok(match relop {
            "=" => CondKind::Zero,
            "<>" | "!=" => CondKind::NotZero,
            "<" => CondKind::Neg,
            ">=" => CondKind::NotNeg,
            // a > b  ≡  b - a < 0 — re-emit with operands swapped.
            ">" | "<=" => {
                return Err(err(
                    format!("relop `{relop}` not directly testable; rewrite with < or >="),
                    at,
                ))
            }
            other => return Err(err(format!("unknown relop `{other}`"), at)),
        })
    }
}

enum RegOrConst {
    Reg(Operand),
    Const(u64),
}

/// Parses and lowers a YALLL program for machine `m`.
///
/// # Errors
///
/// Returns a [`Diagnostic`] with the byte position of the offending line.
pub fn parse(src: &str, m: &MachineDesc) -> Result<YalllProgram, Diagnostic> {
    parse_with_limits(src, m, &FrontendLimits::default())
}

/// [`parse`] under explicit resource limits (source size and a per-line
/// token budget): arbitrary input terminates with a [`Diagnostic`].
///
/// # Errors
///
/// Returns a [`Diagnostic`] for syntax errors and limit violations alike.
pub fn parse_with_limits(
    src: &str,
    m: &MachineDesc,
    limits: &FrontendLimits,
) -> Result<YalllProgram, Diagnostic> {
    limits.check_source(src)?;
    let mut budget = TokenBudget::new(limits);
    let mut lower = Lower {
        m,
        b: FuncBuilder::new("yalll"),
        names: HashMap::new(),
        labels: HashMap::new(),
        defined: HashMap::new(),
        exited: false,
    };

    let mut offset = 0usize;
    for raw in src.lines() {
        let at = offset;
        offset += raw.len() + 1;
        budget.tick(Span::new(at, at))?;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // Labels: `name:` possibly followed by an instruction.
        let mut rest = line;
        while let Some(cpos) = rest.find(':') {
            let (lab, after) = rest.split_at(cpos);
            let lab = lab.trim();
            if lab.is_empty() || !lab.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            let blk = lower.label_block(lab);
            if lower.defined.get(lab) == Some(&true) {
                return Err(err(format!("label `{lab}` defined twice"), at));
            }
            lower.defined.insert(lab.to_string(), true);
            // Fall into the labelled block from the current one.
            if !lower.exited {
                lower.b.terminate(Term::Jump(blk));
            }
            lower.exited = false;
            lower.b.switch_to(blk);
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if lower.exited {
            return Err(err("unreachable code after exit/jump (add a label)", at));
        }

        let (mnemonic, args) = match rest.split_once(char::is_whitespace) {
            Some((mn, a)) => (mn.to_ascii_lowercase(), a.trim()),
            None => (rest.to_ascii_lowercase(), ""),
        };

        match mnemonic.as_str() {
            "reg" => {
                // reg NAME [= TARGET]
                let (name, target) = match args.split_once('=') {
                    Some((n, t)) => (n.trim(), Some(t.trim())),
                    None => (args.trim(), None),
                };
                if name.is_empty() {
                    return Err(err("reg needs a name", at));
                }
                let op = match target {
                    Some(t) => Operand::Reg(
                        machine_reg(m, t)
                            .ok_or_else(|| err(format!("unknown machine register `{t}`"), at))?,
                    ),
                    None => Operand::Vreg(lower.b.vreg()),
                };
                lower.names.insert(name.to_ascii_lowercase(), op);
            }
            "move" | "const" | "add" | "sub" | "and" | "or" | "xor" | "inc" | "dec" | "not"
            | "neg" | "shl" | "shr" | "sar" | "rol" | "ror" | "load" | "stor" => {
                let parts: Vec<&str> = args.split(',').map(|s| s.trim()).collect();
                lower_data_op(&mut lower, &mnemonic, &parts, at)?;
            }
            "jump" => {
                // jump L [if a relop b]
                let (label, cond) = match args.split_once(" if ") {
                    Some((l, c)) => (l.trim(), Some(c.trim())),
                    None => (args.trim(), None),
                };
                let target = lower.label_block(label);
                match cond {
                    None => {
                        lower.b.terminate(Term::Jump(target));
                        lower.exited = true;
                    }
                    Some(c) => {
                        let toks: Vec<&str> = c.split_whitespace().collect();
                        if toks.len() != 3 {
                            return Err(err("expected `a relop b`", at));
                        }
                        let a = lower.operand(toks[0], at)?;
                        let bvalue = lower.roc(toks[2], at)?;
                        let kind = lower.compare(a, toks[1], bvalue, at)?;
                        let next = lower.b.new_block();
                        lower.b.branch(kind, target, next);
                        lower.b.switch_to(next);
                    }
                }
            }
            "mbranch" => {
                // mbranch a, MASK -> L
                let (areg, rest2) = args
                    .split_once(',')
                    .ok_or_else(|| err("expected `mbranch a, mask -> label`", at))?;
                let (mask, label) = rest2
                    .split_once("->")
                    .ok_or_else(|| err("expected `mask -> label`", at))?;
                let a = lower.operand(areg.trim(), at)?;
                let mask = mask.trim();
                if mask.len() > 64 {
                    // More mask bits than any word: the shifts below would
                    // overflow.
                    return Err(err(format!("mask of {} bits is too wide", mask.len()), at));
                }
                let mut care = 0u64;
                let mut value = 0u64;
                for ch in mask.chars() {
                    match ch {
                        '0' => {
                            care = care << 1 | 1;
                            value <<= 1;
                        }
                        '1' => {
                            care = care << 1 | 1;
                            value = value << 1 | 1;
                        }
                        'x' | 'X' => {
                            care <<= 1;
                            value <<= 1;
                        }
                        _ => return Err(err(format!("bad mask bit `{ch}`"), at)),
                    }
                }
                let target = lower.label_block(label.trim());
                let t1 = Operand::Vreg(lower.b.vreg());
                lower.b.alu_imm(AluOp::And, t1, a, care);
                let t2 = Operand::Vreg(lower.b.vreg());
                lower.b.alu_imm(AluOp::Xor, t2, t1, value);
                let next = lower.b.new_block();
                lower.b.branch(CondKind::Zero, target, next);
                lower.b.switch_to(next);
            }
            "call" => {
                let target = lower.label_block(args.trim());
                lower.b.call(target);
            }
            "ret" => {
                lower.b.terminate(Term::Ret);
                lower.exited = true;
            }
            "poll" => lower.b.push(mcc_mir::MirOp::poll()),
            "exit" => {
                if !args.is_empty() {
                    let r = lower.operand(args.trim(), at)?;
                    lower.b.mark_live_out(r);
                }
                lower.b.terminate(Term::Halt);
                lower.exited = true;
            }
            other => return Err(err(format!("unknown instruction `{other}`"), at)),
        }
    }

    if !lower.exited {
        lower.b.terminate(Term::Halt);
    }
    for (lab, defined) in &lower.defined {
        if !defined {
            return Err(err(format!("label `{lab}` is referenced but never defined"), src.len()));
        }
    }
    // Every bound register is observable.
    let bindings = lower.names.clone();
    for op in lower.names.values() {
        lower.b.mark_live_out(*op);
    }
    let func = lower.b.finish();
    func.validate()
        .map_err(|e| err(format!("internal lowering error: {e}"), 0))?;
    Ok(YalllProgram { func, bindings })
}

fn lower_data_op(
    lower: &mut Lower<'_>,
    mn: &str,
    parts: &[&str],
    at: usize,
) -> Result<(), Diagnostic> {
    let need = |n: usize| -> Result<(), Diagnostic> {
        if parts.len() == n {
            Ok(())
        } else {
            Err(err(format!("`{mn}` takes {n} operands"), at))
        }
    };
    match mn {
        "move" => {
            need(2)?;
            let d = lower.operand(parts[0], at)?;
            let s = lower.operand(parts[1], at)?;
            lower.b.mov(d, s);
        }
        "const" => {
            need(2)?;
            let d = lower.operand(parts[0], at)?;
            let v = parse_int(parts[1]).ok_or_else(|| err("bad constant", at))?;
            lower.b.ldi(d, v);
        }
        "add" | "sub" | "and" | "or" | "xor" => {
            need(3)?;
            let op = match mn {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                _ => AluOp::Xor,
            };
            let d = lower.operand(parts[0], at)?;
            let a = lower.operand(parts[1], at)?;
            match lower.roc(parts[2], at)? {
                RegOrConst::Reg(r) => lower.b.alu(op, d, a, r),
                RegOrConst::Const(c) => lower.b.alu_imm(op, d, a, c),
            }
        }
        "inc" | "dec" => {
            need(1)?;
            let d = lower.operand(parts[0], at)?;
            let op = if mn == "inc" { AluOp::Inc } else { AluOp::Dec };
            lower.b.alu_un(op, d, d);
        }
        "not" | "neg" => {
            need(2)?;
            let d = lower.operand(parts[0], at)?;
            let a = lower.operand(parts[1], at)?;
            let op = if mn == "not" { AluOp::Not } else { AluOp::Neg };
            lower.b.alu_un(op, d, a);
        }
        "shl" | "shr" | "sar" | "rol" | "ror" => {
            need(3)?;
            let op = match mn {
                "shl" => ShiftOp::Shl,
                "shr" => ShiftOp::Shr,
                "sar" => ShiftOp::Sar,
                "rol" => ShiftOp::Rol,
                _ => ShiftOp::Ror,
            };
            let d = lower.operand(parts[0], at)?;
            let a = lower.operand(parts[1], at)?;
            let n = parse_int(parts[2]).ok_or_else(|| err("bad shift amount", at))?;
            lower.b.shift(op, d, a, n);
        }
        "load" => {
            need(2)?;
            let d = lower.operand(parts[0], at)?;
            let a = lower.operand(parts[1], at)?;
            lower.b.load(d, a);
        }
        "stor" => {
            need(2)?;
            let s = lower.operand(parts[0], at)?;
            let a = lower.operand(parts[1], at)?;
            lower.b.store(a, s);
        }
        _ => unreachable!(),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::{bx2, hm1};

    #[test]
    fn machine_reg_resolution() {
        let m = hm1();
        assert_eq!(machine_reg(&m, "R3").unwrap().index, 3);
        assert_eq!(machine_reg(&m, "acc"), m.special.acc);
        assert_eq!(machine_reg(&m, "MAR"), m.special.mar);
        assert!(machine_reg(&m, "LS5").is_some());
        assert!(machine_reg(&m, "R16").is_none(), "out of range");
        assert!(machine_reg(&m, "Q1").is_none());
    }

    #[test]
    fn parse_simple_program() {
        let m = hm1();
        let p = parse(
            "reg a = R0\nreg b = R1\nconst a, 5\nadd b, a, 3\nexit b\n",
            &m,
        )
        .unwrap();
        p.func.validate().unwrap();
        assert_eq!(p.func.op_count(), 2);
        assert!(p.bindings.contains_key("a"));
    }

    #[test]
    fn unbound_registers_become_vregs() {
        let m = hm1();
        let p = parse("reg t\nconst t, 9\nexit t\n", &m).unwrap();
        assert!(p.func.has_virtual_regs());
    }

    #[test]
    fn loop_with_conditional_jump() {
        let m = hm1();
        let src = "\
reg n = R0
const n, 5
top: jump done if n = 0
dec n
jump top
done: exit n
";
        let p = parse(src, &m).unwrap();
        p.func.validate().unwrap();
        assert!(p.func.blocks.len() >= 3);
    }

    #[test]
    fn transliterate_example_parses() {
        // The paper's §2.2.4 example, in our notation.
        let m = hm1();
        let src = "\
reg str = R1
reg tbl = R2
reg char = R3
loop: load char, str
jump out if char = 0
reg addr = R4
add addr, char, tbl
load char, addr
stor char, str
add str, str, 1
jump loop
out: exit
";
        let p = parse(src, &m).unwrap();
        p.func.validate().unwrap();
    }

    #[test]
    fn mbranch_masks() {
        let m = hm1();
        let src = "\
reg x = R0
mbranch x, 0000xxxx -> low
exit
low: exit x
";
        let p = parse(src, &m).unwrap();
        p.func.validate().unwrap();
        // and + xor + branch
        assert!(p.func.op_count() >= 2);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let m = hm1();
        let e = parse("jump nowhere\n", &m).unwrap_err();
        assert!(e.message.contains("never defined"));
    }

    #[test]
    fn unknown_register_reports_position() {
        let m = hm1();
        let e = parse("const Q9, 1\n", &m).unwrap_err();
        assert!(e.message.contains("unknown register"));
    }

    #[test]
    fn retargets_to_bx2_with_different_header() {
        // Same body, different binding header — the YALLL portability
        // story (experiment E3).
        let body = "top: jump done if n = 0\ndec n\njump top\ndone: exit n\n";
        let hm = parse(&format!("reg n = R0\nconst n, 5\n{body}"), &hm1()).unwrap();
        let bx = parse(&format!("reg n = G0\nconst n, 5\n{body}"), &bx2()).unwrap();
        hm.func.validate().unwrap();
        bx.func.validate().unwrap();
    }

    #[test]
    fn overwide_mbranch_mask_rejected() {
        let m = hm1();
        let mask = "1".repeat(65);
        let e = parse(&format!("reg x = R0\nmbranch x, {mask} -> l\nl: exit\n"), &m).unwrap_err();
        assert!(e.message.contains("too wide"), "{}", e.message);
    }

    #[test]
    fn line_budget_is_enforced() {
        let m = hm1();
        let limits = FrontendLimits {
            max_tokens: 3,
            ..FrontendLimits::default()
        };
        let e = parse_with_limits("reg a = R0\nconst a, 1\ninc a\ninc a\nexit a\n", &m, &limits)
            .unwrap_err();
        assert!(e.message.contains("token budget"), "{}", e.message);
    }

    #[test]
    fn duplicate_label_rejected() {
        let m = hm1();
        let e = parse("a: exit\na: exit\n", &m).unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn call_and_ret() {
        let m = hm1();
        let src = "\
reg x = R0
call sub
exit x
sub: const x, 7
ret
";
        let p = parse(src, &m).unwrap();
        p.func.validate().unwrap();
    }
}
