//! Abstract micro-operations.

use mcc_machine::{AluOp, CondKind, Semantic, ShiftOp};
use serde::{Deserialize, Serialize};

use crate::func::BlockId;
use crate::operand::Operand;

/// One abstract micro-operation: a [`Semantic`] plus operands. Unlike a
/// bound operation, operands may be virtual and no machine template has
/// been chosen yet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MirOp {
    /// What the operation does.
    pub sem: Semantic,
    /// Destination operand, when the operation produces a value.
    pub dst: Option<Operand>,
    /// Source operands. For [`Semantic::MemRead`] this is `[addr]`; for
    /// [`Semantic::MemWrite`] it is `[addr, data]`.
    pub srcs: Vec<Operand>,
    /// Immediate constant (shift amounts, `LoadImm` values, dispatch masks).
    pub imm: Option<u64>,
    /// Call target (procedure entry block). Branch targets live in
    /// [`Term`](crate::Term), not here.
    pub target: Option<BlockId>,
    /// Condition tested (only set on in-block conditional ops, which the
    /// IR does not currently have; kept for symmetry with `BoundOp`).
    pub cond: Option<CondKind>,
    /// Set by the dead-flag analysis (`mcc-core`): nothing observes the
    /// condition flags this operation would set, so selection may use a
    /// flag-free template variant (unlocking packing past the single
    /// flags register, §2.1.3's classic "bizarre constraint").
    #[serde(default)]
    pub flags_dead: bool,
}

impl MirOp {
    /// A bare operation with the given semantic.
    pub fn new(sem: Semantic) -> Self {
        MirOp {
            sem,
            dst: None,
            srcs: Vec::new(),
            imm: None,
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// `dst = a <op> b`.
    pub fn alu(op: AluOp, dst: impl Into<Operand>, a: impl Into<Operand>, b: impl Into<Operand>) -> Self {
        MirOp {
            sem: Semantic::Alu(op),
            dst: Some(dst.into()),
            srcs: vec![a.into(), b.into()],
            imm: None,
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// `dst = a <op> imm`.
    pub fn alu_imm(op: AluOp, dst: impl Into<Operand>, a: impl Into<Operand>, imm: u64) -> Self {
        MirOp {
            sem: Semantic::Alu(op),
            dst: Some(dst.into()),
            srcs: vec![a.into()],
            imm: Some(imm),
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// `dst = <op> a` (unary ALU operation).
    pub fn alu_un(op: AluOp, dst: impl Into<Operand>, a: impl Into<Operand>) -> Self {
        debug_assert!(op.is_unary());
        MirOp {
            sem: Semantic::Alu(op),
            dst: Some(dst.into()),
            srcs: vec![a.into()],
            imm: None,
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// `dst = shift(a, amount)`.
    pub fn shift(op: ShiftOp, dst: impl Into<Operand>, a: impl Into<Operand>, amount: u64) -> Self {
        MirOp {
            sem: Semantic::Shift(op),
            dst: Some(dst.into()),
            srcs: vec![a.into()],
            imm: Some(amount),
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// `dst = a`.
    pub fn mov(dst: impl Into<Operand>, a: impl Into<Operand>) -> Self {
        MirOp {
            sem: Semantic::Move,
            dst: Some(dst.into()),
            srcs: vec![a.into()],
            imm: None,
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// `dst = value`.
    pub fn ldi(dst: impl Into<Operand>, value: u64) -> Self {
        MirOp {
            sem: Semantic::LoadImm,
            dst: Some(dst.into()),
            srcs: Vec::new(),
            imm: Some(value),
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// `dst = MEM[addr]`.
    pub fn load(dst: impl Into<Operand>, addr: impl Into<Operand>) -> Self {
        MirOp {
            sem: Semantic::MemRead,
            dst: Some(dst.into()),
            srcs: vec![addr.into()],
            imm: None,
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// `MEM[addr] = data`.
    pub fn store(addr: impl Into<Operand>, data: impl Into<Operand>) -> Self {
        MirOp {
            sem: Semantic::MemWrite,
            dst: None,
            srcs: vec![addr.into(), data.into()],
            imm: None,
            target: None,
            cond: None,
            flags_dead: false,
        }
    }

    /// A micro-subroutine call to the procedure entered at `entry`.
    pub fn call(entry: BlockId) -> Self {
        MirOp {
            sem: Semantic::Call,
            dst: None,
            srcs: Vec::new(),
            imm: None,
            target: Some(entry),
            cond: None,
            flags_dead: false,
        }
    }

    /// An interrupt poll point.
    pub fn poll() -> Self {
        MirOp::new(Semantic::Poll)
    }

    /// All register operands read by this op.
    pub fn uses(&self) -> &[Operand] {
        &self.srcs
    }

    /// The register operand written by this op, if any.
    pub fn def(&self) -> Option<Operand> {
        self.dst
    }

    /// Whether this op updates the condition flags on typical machines
    /// (ALU and shift operations do; data movement does not).
    pub fn sets_flags(&self) -> bool {
        matches!(self.sem, Semantic::Alu(_) | Semantic::Shift(_))
    }
}

impl std::fmt::Display for MirOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.sem)?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        for s in &self.srcs {
            write!(f, " {s}")?;
        }
        if let Some(i) = self.imm {
            write!(f, " #{i}")?;
        }
        if let Some(t) = self.target {
            write!(f, " @b{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::VReg;

    #[test]
    fn constructors_shape_operands() {
        let v = |i| VReg(i);
        let add = MirOp::alu(AluOp::Add, v(0), v(1), v(2));
        assert_eq!(add.srcs.len(), 2);
        assert!(add.dst.is_some());
        assert!(add.sets_flags());

        let st = MirOp::store(v(0), v(1));
        assert!(st.dst.is_none());
        assert_eq!(st.srcs.len(), 2);
        assert!(!st.sets_flags());

        let ld = MirOp::load(v(2), v(0));
        assert_eq!(ld.srcs.len(), 1);

        let sh = MirOp::shift(ShiftOp::Shr, v(3), v(3), 1);
        assert_eq!(sh.imm, Some(1));
        assert!(sh.sets_flags());

        let li = MirOp::ldi(v(4), 0xFFFF);
        assert_eq!(li.imm, Some(0xFFFF));
        assert!(li.srcs.is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let op = MirOp::alu(AluOp::Xor, VReg(0), VReg(1), VReg(2));
        assert!(op.to_string().contains("Xor"));
    }
}
