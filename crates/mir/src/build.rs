//! A convenience builder for constructing [`MirFunction`]s, used by all
//! four language frontends.

use mcc_machine::{AluOp, CondKind, ShiftOp};

use crate::func::{BlockId, MirBlock, MirFunction, Term};
use crate::op::MirOp;
use crate::operand::{Operand, VReg};

/// Incremental builder for a [`MirFunction`].
///
/// ```
/// use mcc_mir::{FuncBuilder, Term};
/// use mcc_machine::AluOp;
///
/// let mut b = FuncBuilder::new("demo");
/// let entry = b.current();
/// let x = b.vreg();
/// b.ldi(x, 5);
/// b.alu_imm(AluOp::Add, x, x, 1);
/// b.terminate(Term::Halt);
/// let f = b.finish();
/// assert_eq!(entry, 0);
/// assert_eq!(f.blocks.len(), 1);
/// f.validate().unwrap();
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    f: MirFunction,
    cur: BlockId,
}

impl FuncBuilder {
    /// Starts a function with one empty entry block.
    pub fn new(name: impl Into<String>) -> Self {
        let mut f = MirFunction::new(name);
        f.blocks.push(MirBlock::new());
        FuncBuilder { f, cur: 0 }
    }

    /// The block currently being appended to.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Number of ops already emitted into the current block.
    pub fn ops_in_current(&self) -> usize {
        self.f.blocks[self.cur as usize].ops.len()
    }

    /// Creates a new (unterminated) block and returns its id without
    /// switching to it.
    pub fn new_block(&mut self) -> BlockId {
        self.f.blocks.push(MirBlock::new());
        (self.f.blocks.len() - 1) as BlockId
    }

    /// Creates a labelled block.
    pub fn new_labeled_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.new_block();
        self.f.blocks[id as usize].label = Some(label.into());
        id
    }

    /// Switches emission to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.f.blocks[block as usize].term.is_none(),
            "switching to terminated block b{block}"
        );
        self.cur = block;
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        self.f.new_vreg()
    }

    /// Appends an arbitrary op to the current block.
    pub fn push(&mut self, op: MirOp) {
        let b = &mut self.f.blocks[self.cur as usize];
        assert!(b.term.is_none(), "appending to terminated block");
        b.ops.push(op);
    }

    /// `dst = a <op> b`.
    pub fn alu(
        &mut self,
        op: AluOp,
        dst: impl Into<Operand>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.push(MirOp::alu(op, dst, a, b));
    }

    /// `dst = a <op> imm`.
    pub fn alu_imm(&mut self, op: AluOp, dst: impl Into<Operand>, a: impl Into<Operand>, imm: u64) {
        self.push(MirOp::alu_imm(op, dst, a, imm));
    }

    /// `dst = <op> a`.
    pub fn alu_un(&mut self, op: AluOp, dst: impl Into<Operand>, a: impl Into<Operand>) {
        self.push(MirOp::alu_un(op, dst, a));
    }

    /// `dst = shift(a, amount)`.
    pub fn shift(&mut self, op: ShiftOp, dst: impl Into<Operand>, a: impl Into<Operand>, n: u64) {
        self.push(MirOp::shift(op, dst, a, n));
    }

    /// `dst = a`.
    pub fn mov(&mut self, dst: impl Into<Operand>, a: impl Into<Operand>) {
        self.push(MirOp::mov(dst, a));
    }

    /// `dst = value`.
    pub fn ldi(&mut self, dst: impl Into<Operand>, value: u64) {
        self.push(MirOp::ldi(dst, value));
    }

    /// `dst = MEM[addr]`.
    pub fn load(&mut self, dst: impl Into<Operand>, addr: impl Into<Operand>) {
        self.push(MirOp::load(dst, addr));
    }

    /// `MEM[addr] = data`.
    pub fn store(&mut self, addr: impl Into<Operand>, data: impl Into<Operand>) {
        self.push(MirOp::store(addr, data));
    }

    /// Calls the procedure entered at `entry`.
    pub fn call(&mut self, entry: BlockId) {
        self.push(MirOp::call(entry));
    }

    /// Terminates the current block.
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn terminate(&mut self, term: Term) {
        let b = &mut self.f.blocks[self.cur as usize];
        assert!(b.term.is_none(), "double termination of b{}", self.cur);
        b.term = Some(term);
    }

    /// Terminates with `Jump(to)` and switches to `to`.
    pub fn jump_and_switch(&mut self, to: BlockId) {
        self.terminate(Term::Jump(to));
        self.switch_to(to);
    }

    /// Terminates with a conditional branch: the flags must have been set
    /// by the last flag-setting op of the current block.
    pub fn branch(&mut self, cond: CondKind, then_block: BlockId, else_block: BlockId) {
        self.terminate(Term::Branch {
            cond,
            then_block,
            else_block,
        });
    }

    /// Declares an operand live at program exit (an observable result).
    pub fn mark_live_out(&mut self, op: impl Into<Operand>) {
        self.f.live_out.push(op.into());
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds via validation in callers) if blocks are
    /// left unterminated; call [`MirFunction::validate`] on the result.
    pub fn finish(self) -> MirFunction {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::CondKind;

    #[test]
    fn build_loop() {
        // while (x != 0) { x = x - 1 }
        let mut b = FuncBuilder::new("loop");
        let x = b.vreg();
        b.ldi(x, 10);
        let head = b.new_labeled_block("head");
        let body = b.new_block();
        let done = b.new_block();
        b.jump_and_switch(head);
        // head: test x (pass sets flags), branch
        b.alu_un(AluOp::Pass, x, x);
        b.branch(CondKind::Zero, done, body);
        b.switch_to(body);
        b.alu_imm(AluOp::Sub, x, x, 1);
        b.terminate(Term::Jump(head));
        b.switch_to(done);
        b.terminate(Term::Halt);
        let f = b.finish();
        f.validate().unwrap();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.blocks[1].label.as_deref(), Some("head"));
        assert_eq!(f.op_count(), 3);
    }

    #[test]
    #[should_panic(expected = "double termination")]
    fn double_terminate_panics() {
        let mut b = FuncBuilder::new("x");
        b.terminate(Term::Halt);
        b.terminate(Term::Halt);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn push_after_terminate_panics() {
        let mut b = FuncBuilder::new("x");
        let v = b.vreg();
        b.terminate(Term::Halt);
        b.ldi(v, 1);
    }
}
