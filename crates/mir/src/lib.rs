//! # `mcc-mir` — the machine-independent micro-IR
//!
//! Every frontend in the toolkit (SIMPL, EMPL, S\*, YALLL) lowers to this
//! IR: a control-flow graph of basic blocks holding abstract micro-operations
//! over *operands* that are either virtual registers (symbolic variables,
//! §2.1.3 of Sint's survey) or physical machine registers (the
//! "variables are machine registers" view most surveyed languages take).
//!
//! The crate provides:
//!
//! * the IR itself ([`MirFunction`], [`MirBlock`], [`MirOp`], [`Term`]),
//! * a [`FuncBuilder`] for frontends,
//! * liveness analysis ([`liveness`]),
//! * the data-dependence DAG over selected operations ([`dep`]) — flow,
//!   anti and output dependences exactly as §2.1.4 defines them,
//! * instruction selection ([`select`]): matching abstract operations
//!   against machine templates, *expanding* what the machine lacks
//!   (wide constants, long shifts, memory access through MAR/MBR).

pub mod build;
pub mod dep;
pub mod func;
pub mod legalize;
pub mod liveness;
pub mod op;
pub mod operand;
pub mod select;

pub use build::FuncBuilder;
pub use legalize::{legalize, LegalizeError};
pub use dep::{DepEdge, DepGraph, DepKind};
pub use func::{BlockId, MirBlock, MirFunction, Term};
pub use liveness::{LiveSets, Liveness};
pub use op::MirOp;
pub use operand::{Operand, VReg};
pub use select::{
    select_function, SelectError, SelectedBlock, SelectedFunction, SelectedOp, SelectedTerm,
};
