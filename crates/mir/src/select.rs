//! Instruction selection: abstract operations → machine templates.
//!
//! Selection runs after register allocation (all operands physical). For
//! each [`MirOp`] it finds *every* template of the target machine that
//! realises the semantic and admits the operands; a later compaction pass
//! may pick any candidate (on WM-64 an `add` can go to either ALU — the
//! kind of choice §2.1.2 of the paper says a compiler must not fumble).
//!
//! Anything the machine cannot express directly must have been rewritten
//! by [`legalize`](crate::legalize::legalize) first; selection fails loudly rather
//! than quietly emitting wrong code.

use mcc_machine::{
    BoundOp, CondKind, MachineDesc, RegRef, Semantic, SrcSpec, TemplateId,
};

use crate::func::{BlockId, MirFunction, Term};
use crate::op::MirOp;
use crate::operand::Operand;

/// One selected operation: the abstract op plus every admissible binding.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedOp {
    /// The semantic (kept for barrier/ordering decisions).
    pub sem: Semantic,
    /// Admissible bindings, in machine declaration order. Never empty.
    pub candidates: Vec<BoundOp>,
    /// Union of registers read over all candidates (plus implicit reads).
    pub reads: Vec<RegRef>,
    /// Union of registers written over all candidates.
    pub writes: Vec<RegRef>,
}

/// A selected terminator (conditions already supported by the machine).
#[derive(Debug, Clone, PartialEq)]
pub enum SelectedTerm {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch; `cond` is guaranteed machine-testable.
    Branch {
        /// Condition to test.
        cond: CondKind,
        /// Taken target.
        then_block: BlockId,
        /// Fallthrough target.
        else_block: BlockId,
    },
    /// Multiway dispatch (machine guaranteed to have a dispatch template).
    Dispatch {
        /// Index register.
        src: RegRef,
        /// Index mask.
        mask: u64,
        /// Table blocks.
        table: Vec<BlockId>,
    },
    /// Micro-subroutine return.
    Ret,
    /// Stop.
    Halt,
}

/// A selected basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedBlock {
    /// Label carried over from MIR.
    pub label: Option<String>,
    /// The selected straight-line operations.
    pub ops: Vec<SelectedOp>,
    /// The terminator.
    pub term: SelectedTerm,
}

/// A fully selected function, ready for compaction.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedFunction {
    /// Name carried over from MIR.
    pub name: String,
    /// The blocks.
    pub blocks: Vec<SelectedBlock>,
}

/// Selection failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// An operand was still virtual — register allocation did not run.
    VirtualOperand(String),
    /// No template matches the semantic and operand classes.
    NoTemplate(String),
    /// The machine cannot test the branch condition (legalize first).
    UnsupportedCond(CondKind),
    /// The machine has no dispatch facility (legalize first).
    NoDispatch,
    /// An immediate does not fit any matching template.
    ImmTooWide(String),
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::VirtualOperand(s) => write!(f, "virtual operand in `{s}`"),
            SelectError::NoTemplate(s) => write!(f, "no template for `{s}`"),
            SelectError::UnsupportedCond(c) => write!(f, "machine cannot test {c:?}"),
            SelectError::NoDispatch => write!(f, "machine has no multiway dispatch"),
            SelectError::ImmTooWide(s) => write!(f, "immediate too wide in `{s}`"),
        }
    }
}

impl std::error::Error for SelectError {}

fn phys(op: Operand, ctx: &MirOp) -> Result<RegRef, SelectError> {
    op.as_reg()
        .ok_or_else(|| SelectError::VirtualOperand(ctx.to_string()))
}

/// Tries to bind `op` to template `tid`; `Ok(None)` when the template's
/// operand classes or immediate width reject the operands.
fn try_bind(
    m: &MachineDesc,
    tid: TemplateId,
    op: &MirOp,
) -> Result<Option<BoundOp>, SelectError> {
    let t = m.template(tid);
    let mut b = BoundOp::new(tid);

    // Destination.
    match (t.dst, op.dst) {
        (Some(class), Some(d)) => {
            let d = phys(d, op)?;
            if !m.class(class).contains(d) {
                return Ok(None);
            }
            b.dst = Some(d);
        }
        (None, None) => {}
        _ => return Ok(None),
    }

    // Sources: walk the template's specs, consuming MIR sources for
    // register slots and the MIR immediate for imm slots.
    let mut mir_srcs = op.srcs.iter();
    let mut used_imm = false;
    for spec in &t.srcs {
        match spec {
            SrcSpec::Class(c) => {
                let Some(&s) = mir_srcs.next() else {
                    return Ok(None);
                };
                let s = phys(s, op)?;
                if !m.class(*c).contains(s) {
                    return Ok(None);
                }
                b.srcs.push(s);
            }
            SrcSpec::Imm { bits } => {
                let Some(v) = op.imm else { return Ok(None) };
                if *bits < 64 && v >= (1u64 << bits) {
                    return Ok(None);
                }
                b.imm = Some(v);
                used_imm = true;
            }
        }
    }
    if mir_srcs.next().is_some() {
        return Ok(None); // template takes fewer register sources
    }
    if op.imm.is_some() && !used_imm {
        // MIR op carries an immediate the template cannot take, except
        // dispatch masks / call targets handled elsewhere.
        return Ok(None);
    }

    if t.takes_target {
        match op.target {
            Some(tgt) => b.target = Some(tgt),
            None => return Ok(None),
        }
    } else if op.target.is_some() {
        return Ok(None);
    }
    if t.takes_cond {
        match op.cond {
            Some(c) if m.supports_cond(c) => b.cond = Some(c),
            _ => return Ok(None),
        }
    } else if op.cond.is_some() {
        return Ok(None);
    }

    Ok(Some(b))
}

/// Selects one MIR op, returning all admissible candidates.
///
/// Flag discipline: for flag-setting semantics (ALU, shift) a machine may
/// offer both flag-writing and flag-free template variants (WM-64's second
/// ALU, HM-1's `.nf` forms). The two are **not** interchangeable — a
/// comparison feeding a branch must write the flags — so unless the
/// dead-flag analysis marked the op (`flags_dead`), only flag-writing
/// variants are offered. When the flags are provably dead, only flag-free
/// variants are offered (removing the false output dependence through the
/// single flags register and unlocking packing).
pub fn select_op(m: &MachineDesc, op: &MirOp) -> Result<SelectedOp, SelectError> {
    let mut candidates = Vec::new();
    for tid in m.templates_for(op.sem) {
        if let Some(b) = try_bind(m, tid, op)? {
            candidates.push(b);
        }
    }
    if matches!(op.sem, Semantic::Alu(_) | Semantic::Shift(_)) {
        let (flagful, flagfree): (Vec<_>, Vec<_>) = candidates
            .into_iter()
            .partition(|b| m.template(b.template).writes_flags);
        candidates = if op.flags_dead && !flagfree.is_empty() {
            flagfree
        } else if !flagful.is_empty() {
            flagful
        } else {
            flagfree
        };
    }
    if candidates.is_empty() {
        // Distinguish "imm too wide" from "no such operation" for better
        // diagnostics.
        let sem_exists = m.templates_for(op.sem).next().is_some();
        if sem_exists && op.imm.is_some() {
            return Err(SelectError::ImmTooWide(op.to_string()));
        }
        return Err(SelectError::NoTemplate(op.to_string()));
    }
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for c in &candidates {
        for r in m.read_set(c) {
            if !reads.contains(&r) {
                reads.push(r);
            }
        }
        for w in m.write_set(c) {
            if !writes.contains(&w) {
                writes.push(w);
            }
        }
    }
    Ok(SelectedOp {
        sem: op.sem,
        candidates,
        reads,
        writes,
    })
}

fn select_term(m: &MachineDesc, term: &Term) -> Result<SelectedTerm, SelectError> {
    Ok(match term {
        Term::Jump(b) => SelectedTerm::Jump(*b),
        Term::Branch {
            cond,
            then_block,
            else_block,
        } => {
            if !m.supports_cond(*cond) {
                return Err(SelectError::UnsupportedCond(*cond));
            }
            SelectedTerm::Branch {
                cond: *cond,
                then_block: *then_block,
                else_block: *else_block,
            }
        }
        Term::Dispatch { src, mask, table } => {
            if m.templates_for(Semantic::Dispatch).next().is_none() {
                return Err(SelectError::NoDispatch);
            }
            let src = src
                .as_reg()
                .ok_or_else(|| SelectError::VirtualOperand("dispatch".into()))?;
            SelectedTerm::Dispatch {
                src,
                mask: *mask,
                table: table.clone(),
            }
        }
        Term::Ret => SelectedTerm::Ret,
        Term::Halt => SelectedTerm::Halt,
    })
}

/// Selects a whole function.
///
/// # Errors
///
/// Fails if any operand is virtual, any operation or condition has no
/// machine realisation (run [`legalize`](crate::legalize::legalize) first), or an
/// immediate does not fit.
pub fn select_function(m: &MachineDesc, f: &MirFunction) -> Result<SelectedFunction, SelectError> {
    let mut blocks = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        let mut ops = Vec::with_capacity(b.ops.len());
        for op in &b.ops {
            ops.push(select_op(m, op)?);
        }
        let term = select_term(m, b.term.as_ref().expect("validated MIR"))?;
        blocks.push(SelectedBlock {
            label: b.label.clone(),
            ops,
            term,
        });
    }
    Ok(SelectedFunction {
        name: f.name.clone(),
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::{bx2, hm1, wm64};
    use mcc_machine::{AluOp, RegRef};

    fn r(m: &MachineDesc, i: u16) -> Operand {
        let f = m.find_file("R").or_else(|| m.find_file("G")).unwrap();
        Operand::Reg(RegRef::new(f, i))
    }

    #[test]
    fn add_selects_single_candidate_on_hm1() {
        let m = hm1();
        let op = MirOp::alu(AluOp::Add, r(&m, 0), r(&m, 1), r(&m, 2));
        let s = select_op(&m, &op).unwrap();
        assert_eq!(s.candidates.len(), 1);
        assert_eq!(m.template(s.candidates[0].template).name, "add");
        // Flags are in the write union.
        assert!(s.writes.contains(&m.special.flags.unwrap()));
    }

    #[test]
    fn flag_discipline_governs_alu_choice_on_wm64() {
        let m = wm64();
        // Flags live (default): only the flag-writing ALU-0 form.
        let op = MirOp::alu(AluOp::Add, r(&m, 0), r(&m, 1), r(&m, 2));
        let s = select_op(&m, &op).unwrap();
        assert_eq!(s.candidates.len(), 1);
        assert!(m.template(s.candidates[0].template).writes_flags);
        // Flags dead: only the flag-free ALU-1 twin — and the write set
        // no longer mentions the flags register.
        let mut op = op;
        op.flags_dead = true;
        let s = select_op(&m, &op).unwrap();
        assert_eq!(s.candidates.len(), 1);
        assert!(!m.template(s.candidates[0].template).writes_flags);
        assert!(!s.writes.contains(&m.special.flags.unwrap()));
    }

    #[test]
    fn alu1_rejects_high_registers_on_wm64() {
        let m = wm64();
        // R200 is out of ALU-1's reach; only the ALU-0 template matches.
        let op = MirOp::alu(AluOp::Add, r(&m, 200), r(&m, 1), r(&m, 2));
        let s = select_op(&m, &op).unwrap();
        assert_eq!(s.candidates.len(), 1);
        assert_eq!(m.template(s.candidates[0].template).name, "add");
    }

    #[test]
    fn wide_immediate_rejected_on_bx2() {
        let m = bx2();
        let op = MirOp::ldi(r(&m, 0), 0x1234);
        assert!(matches!(
            select_op(&m, &op),
            Err(SelectError::ImmTooWide(_))
        ));
        // An 8-bit value is fine.
        let op = MirOp::ldi(r(&m, 0), 0x34);
        assert!(select_op(&m, &op).is_ok());
    }

    #[test]
    fn virtual_operand_is_an_error() {
        let m = hm1();
        let op = MirOp::ldi(crate::operand::VReg(0), 1);
        assert!(matches!(
            select_op(&m, &op),
            Err(SelectError::VirtualOperand(_))
        ));
    }

    #[test]
    fn raw_memread_matches_read_template() {
        let m = hm1();
        let op = MirOp::new(Semantic::MemRead);
        let s = select_op(&m, &op).unwrap();
        assert_eq!(m.template(s.candidates[0].template).name, "read");
        assert_eq!(s.reads, vec![m.special.mar.unwrap()]);
        assert_eq!(s.writes, vec![m.special.mbr.unwrap()]);
    }

    #[test]
    fn unsupported_condition_reported() {
        let m = bx2();
        let term = Term::Branch {
            cond: CondKind::Uf,
            then_block: 0,
            else_block: 0,
        };
        assert_eq!(
            select_term(&m, &term),
            Err(SelectError::UnsupportedCond(CondKind::Uf))
        );
    }
}
