//! Liveness analysis over MIR.
//!
//! Classic backward dataflow on the block CFG, tracking *both* virtual and
//! physical register operands (a function may mix them: YALLL binds some
//! variables to machine registers while the compiler allocates the rest —
//! §2.2.4 of the paper leaves it open whether binding is required for all).

use std::collections::HashSet;

use crate::func::{BlockId, MirFunction, Term};
use crate::operand::Operand;

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveSets {
    /// Operands live on entry to each block.
    pub live_in: Vec<HashSet<Operand>>,
    /// Operands live on exit from each block.
    pub live_out: Vec<HashSet<Operand>>,
}

/// Liveness analysis results.
#[derive(Debug, Clone)]
pub struct Liveness {
    sets: LiveSets,
}

impl Liveness {
    /// Runs the analysis to fixpoint.
    pub fn compute(f: &MirFunction) -> Self {
        let n = f.blocks.len();
        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];

        // use/def per block.
        let mut uses = vec![HashSet::new(); n];
        let mut defs = vec![HashSet::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            for op in &b.ops {
                for &s in op.uses() {
                    if !defs[i].contains(&s) {
                        uses[i].insert(s);
                    }
                }
                if let Some(d) = op.def() {
                    defs[i].insert(d);
                }
            }
            if let Some(t) = &b.term {
                for u in t.uses() {
                    if !defs[i].contains(&u) {
                        uses[i].insert(u);
                    }
                }
            }
        }

        // Exit blocks see the function's observable results.
        let exit_live: HashSet<Operand> = f.live_out.iter().copied().collect();

        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out: HashSet<Operand> = HashSet::new();
                match &f.blocks[i].term {
                    Some(Term::Ret) | Some(Term::Halt) => out.extend(exit_live.iter().copied()),
                    Some(t) => {
                        for s in t.successors() {
                            out.extend(live_in[s as usize].iter().copied());
                        }
                    }
                    None => {}
                }
                let mut inn: HashSet<Operand> = uses[i].clone();
                for &o in &out {
                    if !defs[i].contains(&o) {
                        inn.insert(o);
                    }
                }
                if out != live_out[i] {
                    live_out[i] = out;
                    changed = true;
                }
                if inn != live_in[i] {
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }

        Liveness {
            sets: LiveSets { live_in, live_out },
        }
    }

    /// The computed sets.
    pub fn sets(&self) -> &LiveSets {
        &self.sets
    }

    /// Operands live *after* each op of `block` (index `i` = live after
    /// `ops[i]`), plus the set live before the first op, returned as
    /// `(before_first, after_each)`.
    pub fn block_points(
        &self,
        f: &MirFunction,
        block: BlockId,
    ) -> (HashSet<Operand>, Vec<HashSet<Operand>>) {
        let b = &f.blocks[block as usize];
        let mut live = self.sets.live_out[block as usize].clone();
        if let Some(t) = &b.term {
            live.extend(t.uses());
        }
        let mut after = vec![HashSet::new(); b.ops.len()];
        for (i, op) in b.ops.iter().enumerate().rev() {
            after[i] = live.clone();
            if let Some(d) = op.def() {
                live.remove(&d);
            }
            for &s in op.uses() {
                live.insert(s);
            }
        }
        (live, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FuncBuilder;
    use mcc_machine::{AluOp, CondKind};

    #[test]
    fn straight_line_liveness() {
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        let y = b.vreg();
        b.ldi(x, 1);
        b.alu_imm(AluOp::Add, y, x, 2);
        b.mark_live_out(y);
        b.terminate(crate::Term::Halt);
        let f = b.finish();
        let l = Liveness::compute(&f);
        // y is live out of the (only) block; x is not.
        assert!(l.sets().live_out[0].contains(&Operand::Vreg(y)));
        assert!(!l.sets().live_in[0].contains(&Operand::Vreg(x)), "x is defined locally");
    }

    #[test]
    fn loop_carried_liveness() {
        // b0: ldi x; jump b1
        // b1: pass x (flags); br zero -> b3 else b2
        // b2: sub x, x, 1; jump b1
        // b3: halt (x live out)
        let mut b = FuncBuilder::new("l");
        let x = b.vreg();
        b.ldi(x, 3);
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.jump_and_switch(head);
        b.alu_un(AluOp::Pass, x, x);
        b.branch(CondKind::Zero, done, body);
        b.switch_to(body);
        b.alu_imm(AluOp::Sub, x, x, 1);
        b.terminate(crate::Term::Jump(head));
        b.switch_to(done);
        b.mark_live_out(x);
        b.terminate(crate::Term::Halt);
        let f = b.finish();
        let l = Liveness::compute(&f);
        // x live around the back edge.
        for blk in 0..4 {
            assert!(
                l.sets().live_in[blk].contains(&Operand::Vreg(x))
                    || blk == 0,
                "x should be live into b{blk}"
            );
        }
    }

    #[test]
    fn block_points_track_per_op() {
        let mut b = FuncBuilder::new("p");
        let x = b.vreg();
        let y = b.vreg();
        b.ldi(x, 1);
        b.mov(y, x);
        b.mark_live_out(y);
        b.terminate(crate::Term::Halt);
        let f = b.finish();
        let l = Liveness::compute(&f);
        let (before, after) = l.block_points(&f, 0);
        assert!(!before.contains(&Operand::Vreg(x)), "x not live before its def");
        assert!(after[0].contains(&Operand::Vreg(x)), "x live between def and use");
        assert!(!after[1].contains(&Operand::Vreg(x)), "x dead after last use");
        assert!(after[1].contains(&Operand::Vreg(y)));
    }

    #[test]
    fn dispatch_source_is_live() {
        let mut b = FuncBuilder::new("d");
        let x = b.vreg();
        b.ldi(x, 0);
        let t0 = b.new_block();
        let t1 = b.new_block();
        let end = b.new_block();
        b.terminate(crate::Term::Dispatch {
            src: x.into(),
            mask: 1,
            table: vec![t0, t1],
        });
        for t in [t0, t1] {
            b.switch_to(t);
            b.terminate(crate::Term::Jump(end));
        }
        b.switch_to(end);
        b.terminate(crate::Term::Halt);
        let f = b.finish();
        let l = Liveness::compute(&f);
        // x used by the terminator: live after the ldi.
        let (_, after) = l.block_points(&f, 0);
        assert!(after[0].contains(&Operand::Vreg(x)));
    }
}
