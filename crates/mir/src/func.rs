//! Functions, blocks and terminators.

use serde::{Deserialize, Serialize};

use crate::op::MirOp;
use crate::operand::Operand;

/// Index of a basic block within a [`MirFunction`].
pub type BlockId = u32;

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Term {
    /// Fall to the given block.
    Jump(BlockId),
    /// Two-way conditional branch on a machine condition. The condition is
    /// evaluated against the flags as left by the last flag-setting
    /// operation of the block.
    Branch {
        /// The condition to test.
        cond: mcc_machine::CondKind,
        /// Taken target.
        then_block: BlockId,
        /// Fallthrough target.
        else_block: BlockId,
    },
    /// Multiway branch (SIMPL/EMPL `case`, YALLL's branch facility):
    /// `goto table[src & mask]`. Table entries must be blocks that are laid
    /// out consecutively and compile to exactly one microinstruction each
    /// (the frontends guarantee this by making them single-`Jump` blocks).
    Dispatch {
        /// Index operand.
        src: Operand,
        /// Mask applied to the index.
        mask: u64,
        /// The jump-table blocks, in index order.
        table: Vec<BlockId>,
    },
    /// Return from a micro-subroutine.
    Ret,
    /// Stop the microengine.
    Halt,
}

impl Term {
    /// All successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Jump(b) => vec![*b],
            Term::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Term::Dispatch { table, .. } => table.clone(),
            Term::Ret | Term::Halt => Vec::new(),
        }
    }

    /// Register operands the terminator reads.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Term::Dispatch { src, .. } => vec![*src],
            _ => Vec::new(),
        }
    }
}

/// A basic block: straight-line operations plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MirBlock {
    /// Optional label (for diagnostics and tests).
    pub label: Option<String>,
    /// The operations, in source order. §2.1.4: the *compiler* decides
    /// which of these execute in parallel.
    pub ops: Vec<MirOp>,
    /// The terminator. `None` only transiently during construction.
    pub term: Option<Term>,
}

impl MirBlock {
    /// An empty, unterminated block.
    pub fn new() -> Self {
        MirBlock {
            label: None,
            ops: Vec::new(),
            term: None,
        }
    }
}

impl Default for MirBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Errors found by [`MirFunction::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MirError {
    /// A block has no terminator.
    MissingTerm(BlockId),
    /// A terminator or call targets a block that does not exist.
    BadTarget(BlockId, BlockId),
    /// A dispatch-table entry is not a single-`Jump` block.
    BadTableBlock(BlockId),
    /// Dispatch-table entries are not consecutive block ids.
    NonConsecutiveTable(BlockId),
}

impl std::fmt::Display for MirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MirError::MissingTerm(b) => write!(f, "block b{b} has no terminator"),
            MirError::BadTarget(b, t) => write!(f, "block b{b} targets nonexistent block b{t}"),
            MirError::BadTableBlock(b) => {
                write!(f, "dispatch-table block b{b} is not a single jump")
            }
            MirError::NonConsecutiveTable(b) => {
                write!(f, "dispatch table starting at b{b} is not consecutive")
            }
        }
    }
}

impl std::error::Error for MirError {}

/// A complete function (microprogram) in MIR form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MirFunction {
    /// Function name, for diagnostics.
    pub name: String,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<MirBlock>,
    /// Number of virtual registers allocated so far.
    pub vreg_count: u32,
    /// Operands that must be considered live at `Ret`/`Halt` — the
    /// program's observable results (e.g. EMPL's global variables).
    pub live_out: Vec<Operand>,
}

impl MirFunction {
    /// An empty function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        MirFunction {
            name: name.into(),
            blocks: Vec::new(),
            vreg_count: 0,
            live_out: Vec::new(),
        }
    }

    /// Total number of operations (excluding terminators).
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> crate::operand::VReg {
        let v = crate::operand::VReg(self.vreg_count);
        self.vreg_count += 1;
        v
    }

    /// Whether any operand anywhere is still virtual.
    pub fn has_virtual_regs(&self) -> bool {
        self.blocks.iter().any(|b| {
            b.ops.iter().any(|op| {
                op.dst.is_some_and(|d| d.is_virtual())
                    || op.srcs.iter().any(|s| s.is_virtual())
            }) || b
                .term
                .as_ref()
                .is_some_and(|t| t.uses().iter().any(|u| u.is_virtual()))
        }) || self.live_out.iter().any(|o| o.is_virtual())
    }

    /// Structural validation: every block terminated, every target in
    /// range, dispatch tables consecutive and single-jump.
    pub fn validate(&self) -> Result<(), MirError> {
        let n = self.blocks.len() as BlockId;
        for (i, b) in self.blocks.iter().enumerate() {
            let i = i as BlockId;
            let term = b.term.as_ref().ok_or(MirError::MissingTerm(i))?;
            for s in term.successors() {
                if s >= n {
                    return Err(MirError::BadTarget(i, s));
                }
            }
            for op in &b.ops {
                if let Some(t) = op.target {
                    if t >= n {
                        return Err(MirError::BadTarget(i, t));
                    }
                }
            }
            if let Term::Dispatch { table, .. } = term {
                for (k, &t) in table.iter().enumerate() {
                    if k > 0 && t != table[k - 1] + 1 {
                        return Err(MirError::NonConsecutiveTable(table[0]));
                    }
                    let tb = &self.blocks[t as usize];
                    let single_jump =
                        tb.ops.is_empty() && matches!(tb.term, Some(Term::Jump(_)));
                    if !single_jump {
                        return Err(MirError::BadTableBlock(t));
                    }
                }
            }
        }
        Ok(())
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(t) = &b.term {
                for s in t.successors() {
                    preds[s as usize].push(i as BlockId);
                }
            }
            // A call returns to the op after it; the callee's Ret flows
            // back, but for CFG purposes we treat Call as straight-line.
        }
        preds
    }
}

impl std::fmt::Display for MirFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fn {} {{", self.name)?;
        for (i, b) in self.blocks.iter().enumerate() {
            match &b.label {
                Some(l) => writeln!(f, "b{i} ({l}):")?,
                None => writeln!(f, "b{i}:")?,
            }
            for op in &b.ops {
                writeln!(f, "    {op}")?;
            }
            match &b.term {
                Some(t) => writeln!(f, "    {t:?}")?,
                None => writeln!(f, "    <unterminated>")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MirOp;
    use crate::operand::VReg;
    use mcc_machine::{AluOp, CondKind};

    fn two_block_fn() -> MirFunction {
        let mut f = MirFunction::new("t");
        let mut b0 = MirBlock::new();
        b0.ops.push(MirOp::alu(AluOp::Add, VReg(0), VReg(1), VReg(2)));
        b0.term = Some(Term::Branch {
            cond: CondKind::Zero,
            then_block: 1,
            else_block: 1,
        });
        let mut b1 = MirBlock::new();
        b1.term = Some(Term::Halt);
        f.blocks.push(b0);
        f.blocks.push(b1);
        f.vreg_count = 3;
        f
    }

    #[test]
    fn validate_accepts_wellformed() {
        two_block_fn().validate().unwrap();
    }

    #[test]
    fn validate_rejects_missing_term() {
        let mut f = two_block_fn();
        f.blocks[1].term = None;
        assert_eq!(f.validate(), Err(MirError::MissingTerm(1)));
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut f = two_block_fn();
        f.blocks[1].term = Some(Term::Jump(9));
        assert!(matches!(f.validate(), Err(MirError::BadTarget(1, 9))));
    }

    #[test]
    fn dispatch_table_must_be_consecutive_single_jumps() {
        let mut f = MirFunction::new("d");
        let mut b0 = MirBlock::new();
        b0.term = Some(Term::Dispatch {
            src: VReg(0).into(),
            mask: 1,
            table: vec![1, 2],
        });
        f.blocks.push(b0);
        for _ in 0..2 {
            let mut b = MirBlock::new();
            b.term = Some(Term::Jump(3));
            f.blocks.push(b);
        }
        let mut b3 = MirBlock::new();
        b3.term = Some(Term::Halt);
        f.blocks.push(b3);
        f.validate().unwrap();

        // A non-jump table block is rejected.
        f.blocks[2].ops.push(MirOp::ldi(VReg(0), 1));
        assert!(matches!(f.validate(), Err(MirError::BadTableBlock(2))));
    }

    #[test]
    fn predecessors_follow_terminators() {
        let f = two_block_fn();
        let p = f.predecessors();
        assert_eq!(p[1], vec![0, 0]);
        assert!(p[0].is_empty());
    }

    #[test]
    fn virtual_reg_detection() {
        let mut f = two_block_fn();
        assert!(f.has_virtual_regs());
        f.blocks[0].ops.clear();
        assert!(!f.has_virtual_regs());
    }

    #[test]
    fn display_contains_blocks() {
        let s = two_block_fn().to_string();
        assert!(s.contains("b0:"));
        assert!(s.contains("b1:"));
    }
}
