//! The data-dependence DAG over selected operations.
//!
//! §2.1.4 of the survey: "When a statement S1 creates a value used by a
//! statement S2, or, alternatively, when S2 destroys a value needed by S1,
//! S1 must be executed before S2." We distinguish the three classic kinds:
//!
//! * **flow** (read-after-write) — the consumer must sit in a *strictly
//!   later* microinstruction (within one microinstruction all reads happen
//!   in the read phase, before any write),
//! * **output** (write-after-write) — strictly later as well,
//! * **anti** (write-after-read) — may share a microinstruction (the read
//!   still sees the old value) but may not move earlier.
//!
//! Memory operations are kept in program order, and `Call`/`Poll` act as
//! full barriers (a polled interrupt must observe a consistent state).

use mcc_machine::Semantic;

use crate::select::SelectedOp;

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write: strictly later microinstruction.
    Flow,
    /// Write-after-write: strictly later microinstruction.
    Output,
    /// Write-after-read: same microinstruction allowed, earlier forbidden.
    Anti,
}

impl DepKind {
    /// Minimum microinstruction distance the edge imposes.
    pub fn min_distance(self) -> usize {
        match self {
            DepKind::Flow | DepKind::Output => 1,
            DepKind::Anti => 0,
        }
    }
}

/// One dependence edge `from → to` (indices into the op slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Earlier op.
    pub from: usize,
    /// Later op.
    pub to: usize,
    /// Kind (determines whether they may share an instruction).
    pub kind: DepKind,
}

/// The dependence DAG of one basic block.
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    edges: Vec<DepEdge>,
    succ: Vec<Vec<(usize, DepKind)>>,
    pred: Vec<Vec<(usize, DepKind)>>,
}

fn is_barrier(sem: Semantic) -> bool {
    matches!(sem, Semantic::Call | Semantic::Poll) || sem.is_control()
}

fn intersects(a: &[mcc_machine::RegRef], b: &[mcc_machine::RegRef]) -> bool {
    a.iter().any(|x| b.contains(x))
}

impl DepGraph {
    /// Builds the DAG for a straight-line op sequence.
    pub fn build(ops: &[SelectedOp]) -> Self {
        let n = ops.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let a = &ops[i];
                let b = &ops[j];
                let barrier = is_barrier(a.sem) || is_barrier(b.sem);
                let both_mem = a.sem.may_trap() && b.sem.may_trap();
                let kind = if barrier || both_mem || intersects(&a.writes, &b.reads) {
                    Some(DepKind::Flow)
                } else if intersects(&a.writes, &b.writes) {
                    Some(DepKind::Output)
                } else if intersects(&a.reads, &b.writes) {
                    Some(DepKind::Anti)
                } else {
                    None
                };
                if let Some(kind) = kind {
                    edges.push(DepEdge { from: i, to: j, kind });
                }
            }
        }
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for e in &edges {
            succ[e.from].push((e.to, e.kind));
            pred[e.to].push((e.from, e.kind));
        }
        DepGraph {
            n,
            edges,
            succ,
            pred,
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Successors of `i` with edge kinds.
    pub fn succs(&self, i: usize) -> &[(usize, DepKind)] {
        &self.succ[i]
    }

    /// Predecessors of `i` with edge kinds.
    pub fn preds(&self, i: usize) -> &[(usize, DepKind)] {
        &self.pred[i]
    }

    /// Earliest possible microinstruction index for each op when resources
    /// are unlimited — the ASAP levels. Ops with equal level *could* run in
    /// parallel: this is exactly the "maximal parallelism" identified by
    /// Dasgupta & Tartar's algorithm.
    pub fn asap_levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.n];
        // Ops are in program order, so predecessors precede successors.
        for j in 0..self.n {
            for &(i, kind) in &self.pred[j] {
                level[j] = level[j].max(level[i] + kind.min_distance());
            }
        }
        level
    }

    /// Length of the longest dependence path from each op to any sink,
    /// counted in mandatory microinstruction steps. Used as the priority
    /// function of critical-path list scheduling.
    pub fn critical_path(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.n];
        for i in (0..self.n).rev() {
            for &(j, kind) in &self.succ[i] {
                h[i] = h[i].max(h[j] + kind.min_distance());
            }
        }
        h
    }

    /// The minimum number of microinstructions any schedule needs (the
    /// dependence-height bound; resources can only increase it).
    pub fn height_bound(&self) -> usize {
        if self.n == 0 {
            return 0;
        }
        self.asap_levels()
            .iter()
            .max()
            .map(|&m| m + 1)
            .unwrap_or(0)
    }

    /// Checks that an assignment of ops to microinstruction indices
    /// respects every edge. Used by tests and as a debug assertion by the
    /// compaction algorithms.
    pub fn schedule_respects(&self, mi_of: &[usize]) -> bool {
        self.edges.iter().all(|e| {
            mi_of[e.to] >= mi_of[e.from] + e.kind.min_distance()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::MirOp;
    use crate::operand::Operand;
    use crate::select::select_op;
    use mcc_machine::machines::hm1;
    use mcc_machine::{AluOp, RegRef};

    fn ops(mir: &[MirOp]) -> Vec<SelectedOp> {
        let m = hm1();
        mir.iter().map(|o| select_op(&m, o).unwrap()).collect()
    }

    fn r(i: u16) -> Operand {
        let m = hm1();
        Operand::Reg(RegRef::new(m.find_file("R").unwrap(), i))
    }

    #[test]
    fn flow_edge_detected() {
        // r0 = r1+r2 ; r3 = r0|r4  → flow 0→1 (plus a flags output dep).
        let s = ops(&[
            MirOp::alu(AluOp::Add, r(0), r(1), r(2)),
            MirOp::alu(AluOp::Or, r(3), r(0), r(4)),
        ]);
        let g = DepGraph::build(&s);
        assert!(g
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == DepKind::Flow));
        assert_eq!(g.asap_levels(), vec![0, 1]);
        assert_eq!(g.height_bound(), 2);
    }

    #[test]
    fn independent_movs_have_no_edges() {
        let s = ops(&[MirOp::mov(r(0), r(1)), MirOp::mov(r(2), r(3))]);
        let g = DepGraph::build(&s);
        assert!(g.edges().is_empty());
        assert_eq!(g.asap_levels(), vec![0, 0], "could run in parallel");
    }

    #[test]
    fn flag_writers_get_output_edges() {
        // Two adds to disjoint registers still carry an output dep via the
        // flags register.
        let s = ops(&[
            MirOp::alu(AluOp::Add, r(0), r(1), r(2)),
            MirOp::alu(AluOp::Add, r(3), r(4), r(5)),
        ]);
        let g = DepGraph::build(&s);
        assert!(g
            .edges()
            .iter()
            .any(|e| e.kind == DepKind::Output), "{:?}", g.edges());
    }

    #[test]
    fn anti_edge_allows_same_instruction() {
        // mov r0 <- r1 ; mov r1 <- r2: WAR on r1.
        let s = ops(&[MirOp::mov(r(0), r(1)), MirOp::mov(r(1), r(2))]);
        let g = DepGraph::build(&s);
        let e = g.edges()[0];
        assert_eq!(e.kind, DepKind::Anti);
        assert_eq!(g.asap_levels(), vec![0, 0]);
        assert!(g.schedule_respects(&[0, 0]));
        assert!(!g.schedule_respects(&[1, 0]), "moving the writer earlier breaks WAR");
    }

    #[test]
    fn memory_ops_stay_ordered() {
        let s = ops(&[
            MirOp::new(mcc_machine::Semantic::MemRead),
            MirOp::new(mcc_machine::Semantic::MemWrite),
        ]);
        let g = DepGraph::build(&s);
        assert!(g
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == DepKind::Flow));
    }

    #[test]
    fn poll_is_a_barrier() {
        let s = ops(&[
            MirOp::mov(r(0), r(1)),
            MirOp::poll(),
            MirOp::mov(r(2), r(3)),
        ]);
        let g = DepGraph::build(&s);
        assert!(g.schedule_respects(&[0, 1, 2]));
        assert!(!g.schedule_respects(&[0, 1, 1]));
        assert!(!g.schedule_respects(&[1, 1, 2]));
    }

    #[test]
    fn critical_path_orders_priorities() {
        // Chain of three dependent adds vs one independent mov: the head of
        // the chain has the longest path.
        let s = ops(&[
            MirOp::alu(AluOp::Add, r(0), r(1), r(2)),
            MirOp::alu(AluOp::Add, r(3), r(0), r(2)),
            MirOp::alu(AluOp::Add, r(4), r(3), r(2)),
            MirOp::mov(r(5), r(6)),
        ]);
        let g = DepGraph::build(&s);
        let cp = g.critical_path();
        assert_eq!(cp[0], 2);
        assert_eq!(cp[3], 0);
        assert!(cp[0] > cp[1] && cp[1] > cp[2]);
    }
}
