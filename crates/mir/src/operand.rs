//! Operands: virtual or physical registers.

use mcc_machine::RegRef;
use serde::{Deserialize, Serialize};

/// A virtual register — a symbolic variable before allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VReg(pub u32);

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A register operand of a [`MirOp`](crate::MirOp): either a virtual
/// register awaiting allocation or a physical machine register (the
/// "variables *are* machine registers" view of SIMPL, S\* and YALLL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A virtual register.
    Vreg(VReg),
    /// A physical register.
    Reg(RegRef),
}

impl Operand {
    /// The virtual register, if this operand is one.
    pub fn as_vreg(self) -> Option<VReg> {
        match self {
            Operand::Vreg(v) => Some(v),
            Operand::Reg(_) => None,
        }
    }

    /// The physical register, if this operand is one.
    pub fn as_reg(self) -> Option<RegRef> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Vreg(_) => None,
        }
    }

    /// Whether this operand is still virtual.
    pub fn is_virtual(self) -> bool {
        matches!(self, Operand::Vreg(_))
    }
}

impl From<VReg> for Operand {
    fn from(v: VReg) -> Self {
        Operand::Vreg(v)
    }
}

impl From<RegRef> for Operand {
    fn from(r: RegRef) -> Self {
        Operand::Reg(r)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Vreg(v) => write!(f, "{v}"),
            Operand::Reg(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::ids::FileId;

    #[test]
    fn conversions() {
        let v = Operand::from(VReg(3));
        assert!(v.is_virtual());
        assert_eq!(v.as_vreg(), Some(VReg(3)));
        assert_eq!(v.as_reg(), None);
        let r = Operand::from(RegRef::new(FileId(0), 5));
        assert!(!r.is_virtual());
        assert_eq!(r.as_reg(), Some(RegRef::new(FileId(0), 5)));
    }

    #[test]
    fn display() {
        assert_eq!(Operand::from(VReg(7)).to_string(), "v7");
    }
}
