//! Machine-dependent legalisation of MIR.
//!
//! §2.1.2 of the survey: a machine-independent operation repertoire will
//! not match any concrete machine exactly. This pass rewrites whatever the
//! target cannot express into what it can, *before* register allocation
//! (so rewrites may allocate fresh virtual registers):
//!
//! * memory access is funnelled through MAR/MBR,
//! * constants wider than the machine's immediate path are built by
//!   load-high / shift / add-low sequences,
//! * shift amounts beyond the shifter's reach become shift chains
//!   (on BX-2, which shifts one bit at a time, a `shr 8` becomes eight
//!   micro-operations — the price of a baroque machine),
//! * immediate ALU forms the machine lacks go through a scratch register,
//! * `Nand`/`Nor`/`Pass` are decomposed when missing,
//! * branch conditions are negated or mapped (`UF` → carry: every shifter
//!   in this toolkit deposits the last bit shifted out in the carry flag),
//! * multiway dispatch becomes a compare-and-branch chain on machines
//!   without a dispatch facility (the paper: "multiway branches will
//!   therefore be hard to utilize").

use mcc_machine::{AluOp, CondKind, MachineDesc, Semantic};

use crate::func::{BlockId, MirBlock, MirFunction, Term};
use crate::op::MirOp;
use crate::operand::Operand;

/// Legalisation failures: the machine genuinely cannot express the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalizeError {
    /// No `LoadImm` template at all.
    NoLoadImm,
    /// An operation has no realisation and no known decomposition.
    Unsupported(String),
    /// A branch condition is untestable even after negation/mapping.
    UntestableCond(CondKind),
}

impl std::fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegalizeError::NoLoadImm => write!(f, "machine cannot load constants"),
            LegalizeError::Unsupported(s) => write!(f, "no realisation for `{s}`"),
            LegalizeError::UntestableCond(c) => write!(f, "condition {c:?} untestable"),
        }
    }
}

impl std::error::Error for LegalizeError {}

/// Machine capability summary used by the rewrite rules.
struct Caps {
    ldi_bits: Option<u16>,
    shift_bits: u16, // max shift-amount immediate width (0 = no shifter)
}

impl Caps {
    fn of(m: &MachineDesc) -> Self {
        let ldi_bits = m
            .templates_for(Semantic::LoadImm)
            .filter_map(|t| m.template(t).imm_bits())
            .max();
        let shift_bits = m
            .templates
            .iter()
            .filter(|t| matches!(t.semantic, Semantic::Shift(_)))
            .filter_map(|t| t.imm_bits())
            .max()
            .unwrap_or(0);
        Caps {
            ldi_bits,
            shift_bits,
        }
    }

    fn max_shift(&self) -> u64 {
        if self.shift_bits == 0 {
            0
        } else {
            (1u64 << self.shift_bits.min(16)) - 1
        }
    }
}

/// Whether the machine has an immediate form of `op` accepting `imm`.
fn alu_imm_fits(m: &MachineDesc, op: AluOp, imm: u64) -> bool {
    m.templates_for(Semantic::Alu(op)).any(|tid| {
        let t = m.template(tid);
        t.has_imm()
            && t.imm_bits()
                .is_some_and(|b| b >= 64 || imm < (1u64 << b))
    })
}

/// Whether the machine has a register-register form of `op` with `nsrcs`
/// register sources.
fn alu_reg_form(m: &MachineDesc, op: AluOp, nsrcs: usize) -> bool {
    m.templates_for(Semantic::Alu(op)).any(|tid| {
        let t = m.template(tid);
        !t.has_imm() && t.reg_src_count() == nsrcs
    })
}

fn has_sem(m: &MachineDesc, sem: Semantic) -> bool {
    m.templates_for(sem).next().is_some()
}

/// Emits MIR ops loading `value` into `dst`, honouring the immediate width.
fn emit_ldi(
    m: &MachineDesc,
    caps: &Caps,
    out: &mut Vec<MirOp>,
    dst: Operand,
    value: u64,
) -> Result<(), LegalizeError> {
    let bits = caps.ldi_bits.ok_or(LegalizeError::NoLoadImm)?;
    let max = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
    if value <= max {
        out.push(MirOp::ldi(dst, value));
        return Ok(());
    }
    // Build high-to-low in `bits`-sized chunks: dst = hi; dst <<= k; dst += lo.
    let chunk = bits.min(8) as u64; // shift in byte steps for simplicity
    let hi = value >> chunk;
    let lo = value & ((1u64 << chunk) - 1);
    emit_ldi(m, caps, out, dst, hi)?;
    emit_shift(m, caps, out, mcc_machine::ShiftOp::Shl, dst, dst, chunk)?;
    if lo != 0 {
        if alu_imm_fits(m, AluOp::Add, lo) {
            out.push(MirOp::alu_imm(AluOp::Add, dst, dst, lo));
        } else if alu_imm_fits(m, AluOp::Or, lo) {
            out.push(MirOp::alu_imm(AluOp::Or, dst, dst, lo));
        } else {
            return Err(LegalizeError::Unsupported(format!(
                "cannot add low chunk {lo:#x} of wide constant"
            )));
        }
    }
    Ok(())
}

/// Emits shift ops, splitting amounts beyond the shifter's immediate
/// reach. The caller guarantees the machine realises `op` (see
/// [`emit_any_shift`] for decomposition of missing shift kinds).
fn emit_shift(
    _m: &MachineDesc,
    caps: &Caps,
    out: &mut Vec<MirOp>,
    op: mcc_machine::ShiftOp,
    dst: Operand,
    src: Operand,
    mut amount: u64,
) -> Result<(), LegalizeError> {
    let max = caps.max_shift();
    if max == 0 {
        return Err(LegalizeError::Unsupported("machine has no shifter".into()));
    }
    if amount <= max {
        out.push(MirOp::shift(op, dst, src, amount));
        return Ok(());
    }
    let mut cur_src = src;
    while amount > 0 {
        let step = amount.min(max);
        out.push(MirOp::shift(op, dst, cur_src, step));
        cur_src = dst;
        amount -= step;
    }
    Ok(())
}

/// Emits `dst = shift(src, n)` for any shift kind, decomposing kinds the
/// machine lacks (BX-2 shifts logically only):
///
/// * `rol n` → `(src << n) | (src >> w-n)`,
/// * `ror n` → `(src >> n) | (src << w-n)`,
/// * `sar n` → `(src >> n) | (-(src >> w-1) << w-n)` (branch-free sign
///   fill).
///
/// The decompositions preserve the *value* but not the shifted-out
/// UF/carry bit — a documented approximation for baroque targets.
#[allow(clippy::too_many_arguments)]
fn emit_any_shift(
    m: &MachineDesc,
    caps: &Caps,
    f: &mut MirFunction,
    out: &mut Vec<MirOp>,
    op: mcc_machine::ShiftOp,
    dst: Operand,
    src: Operand,
    amount: u64,
) -> Result<(), LegalizeError> {
    use mcc_machine::ShiftOp as S;
    let supported = |k: S| has_sem(m, Semantic::Shift(k));
    if supported(op) {
        return emit_shift(m, caps, out, op, dst, src, amount);
    }
    let w = m.word_bits as u64;
    let n = amount.min(w);
    match op {
        S::Rol | S::Ror if supported(S::Shl) && supported(S::Shr) => {
            let (main, other) = if op == S::Rol { (S::Shl, S::Shr) } else { (S::Shr, S::Shl) };
            let t = Operand::Vreg(f.new_vreg());
            emit_shift(m, caps, out, other, t, src, w - n)?;
            emit_shift(m, caps, out, main, dst, src, n)?;
            if alu_reg_form(m, AluOp::Or, 2) {
                out.push(MirOp::alu(AluOp::Or, dst, dst, t));
                Ok(())
            } else {
                Err(LegalizeError::Unsupported("rotate decomposition needs OR".into()))
            }
        }
        S::Sar if supported(S::Shr) && supported(S::Shl) && alu_reg_form(m, AluOp::Or, 2) => {
            // sign = src >> (w-1); fill = (-sign) << (w-n); dst = (src>>n) | fill
            let sign = Operand::Vreg(f.new_vreg());
            emit_shift(m, caps, out, S::Shr, sign, src, w - 1)?;
            if alu_reg_form(m, AluOp::Neg, 1) {
                out.push(MirOp::alu_un(AluOp::Neg, sign, sign));
            } else {
                return Err(LegalizeError::Unsupported("sar decomposition needs NEG".into()));
            }
            emit_shift(m, caps, out, S::Shl, sign, sign, w - n)?;
            emit_shift(m, caps, out, S::Shr, dst, src, n)?;
            out.push(MirOp::alu(AluOp::Or, dst, dst, sign));
            Ok(())
        }
        _ => Err(LegalizeError::Unsupported(format!(
            "machine cannot realise {op:?}"
        ))),
    }
}

/// Union of register classes any shape-compatible template admits at the
/// given operand position (`None` = destination, `Some(i)` = i-th register
/// source). Mirrors the shape test of `select::try_bind`.
fn admits(m: &MachineDesc, op: &MirOp, pos: Option<usize>, reg: mcc_machine::RegRef) -> bool {
    for tid in m.templates_for(op.sem) {
        let t = m.template(tid);
        if t.dst.is_some() != op.dst.is_some()
            || t.reg_src_count() != op.srcs.len()
            || t.has_imm() != op.imm.is_some()
        {
            continue;
        }
        let class = match pos {
            None => t.dst,
            Some(i) => t
                .srcs
                .iter()
                .filter_map(|s| match s {
                    mcc_machine::SrcSpec::Class(c) => Some(*c),
                    mcc_machine::SrcSpec::Imm { .. } => None,
                })
                .nth(i),
        };
        if let Some(c) = class {
            if m.class(c).contains(reg) {
                return true;
            }
        }
    }
    false
}

/// Routes ALU/shift operands that no template admits (e.g. an S\*
/// variable bound to the local store fed to the ALU) through fresh
/// virtual registers: a `mov` brings the value into an allocatable
/// register before the operation, and another carries the result back.
/// §2.1.3's point made executable — *where* a value lives decides what may
/// touch it, and the compiler inserts the datapath moves.
fn route_operands(
    m: &MachineDesc,
    f: &mut MirFunction,
    out: &mut Vec<MirOp>,
    mut op: MirOp,
) -> (MirOp, Option<(Operand, Operand)>) {
    if !matches!(op.sem, Semantic::Alu(_) | Semantic::Shift(_)) {
        return (op, None);
    }
    // When no template matches the op's *shape* at all (e.g. an immediate
    // form the machine lacks), `legalize_op` will rewrite the shape first;
    // routing cannot judge operand classes of a nonexistent template.
    let any_shape = m.templates_for(op.sem).any(|tid| {
        let t = m.template(tid);
        t.dst.is_some() == op.dst.is_some()
            && t.reg_src_count() == op.srcs.len()
            && t.has_imm() == op.imm.is_some()
    });
    if !any_shape {
        return (op, None);
    }
    for i in 0..op.srcs.len() {
        if let Operand::Reg(r) = op.srcs[i] {
            if !admits(m, &op, Some(i), r) {
                let tmp = Operand::Vreg(f.new_vreg());
                out.push(MirOp::mov(tmp, op.srcs[i]));
                op.srcs[i] = tmp;
            }
        }
    }
    let mut writeback = None;
    if let Some(Operand::Reg(r)) = op.dst {
        if !admits(m, &op, None, r) {
            let tmp = Operand::Vreg(f.new_vreg());
            writeback = Some((op.dst.expect("dst"), tmp));
            op.dst = Some(tmp);
        }
    }
    (op, writeback)
}

/// Rewrites a single op into zero or more machine-expressible ops.
fn legalize_op(
    m: &MachineDesc,
    caps: &Caps,
    f: &mut MirFunction,
    op: MirOp,
    out: &mut Vec<MirOp>,
) -> Result<(), LegalizeError> {
    match op.sem {
        Semantic::MemRead if !op.srcs.is_empty() => {
            // dst = MEM[addr]  →  MAR := addr; read; dst := MBR
            let mar = Operand::Reg(m.special.mar.expect("machine with memory has MAR"));
            let mbr = Operand::Reg(m.special.mbr.expect("machine with memory has MBR"));
            let addr = op.srcs[0];
            if addr != mar {
                out.push(MirOp::mov(mar, addr));
            }
            out.push(MirOp::new(Semantic::MemRead));
            let dst = op.dst.expect("load has a destination");
            if dst != mbr {
                out.push(MirOp::mov(dst, mbr));
            }
            Ok(())
        }
        Semantic::MemWrite if !op.srcs.is_empty() => {
            let mar = Operand::Reg(m.special.mar.expect("machine with memory has MAR"));
            let mbr = Operand::Reg(m.special.mbr.expect("machine with memory has MBR"));
            let (addr, data) = (op.srcs[0], op.srcs[1]);
            if addr != mar {
                out.push(MirOp::mov(mar, addr));
            }
            if data != mbr {
                out.push(MirOp::mov(mbr, data));
            }
            out.push(MirOp::new(Semantic::MemWrite));
            Ok(())
        }
        Semantic::LoadImm => {
            emit_ldi(m, caps, out, op.dst.expect("ldi dst"), op.imm.unwrap_or(0))
        }
        Semantic::Shift(s) => {
            let dst = op.dst.expect("shift dst");
            let src = op.srcs[0];
            emit_any_shift(m, caps, f, out, s, dst, src, op.imm.unwrap_or(0))
        }
        Semantic::Alu(a) => {
            let dst = op.dst.expect("alu dst");
            match (op.imm, op.srcs.len()) {
                // Immediate binary form.
                (Some(imm), 1) if !a.is_unary() => {
                    if alu_imm_fits(m, a, imm) {
                        out.push(op);
                    } else if alu_reg_form(m, a, 2) {
                        let tmp = Operand::Vreg(f.new_vreg());
                        emit_ldi(m, caps, out, tmp, imm)?;
                        out.push(MirOp::alu(a, dst, op.srcs[0], tmp));
                    } else {
                        return Err(LegalizeError::Unsupported(op.to_string()));
                    }
                    Ok(())
                }
                // Register binary form.
                (None, 2) => {
                    if alu_reg_form(m, a, 2) {
                        out.push(op);
                        return Ok(());
                    }
                    // Decompositions for missing binary ops.
                    match a {
                        AluOp::Nand if alu_reg_form(m, AluOp::And, 2) => {
                            out.push(MirOp::alu(AluOp::And, dst, op.srcs[0], op.srcs[1]));
                            legalize_op(m, caps, f, MirOp::alu_un(AluOp::Not, dst, dst), out)
                        }
                        AluOp::Nor if alu_reg_form(m, AluOp::Or, 2) => {
                            out.push(MirOp::alu(AluOp::Or, dst, op.srcs[0], op.srcs[1]));
                            legalize_op(m, caps, f, MirOp::alu_un(AluOp::Not, dst, dst), out)
                        }
                        _ => Err(LegalizeError::Unsupported(op.to_string())),
                    }
                }
                // Unary form.
                (None, 1) => {
                    if alu_reg_form(m, a, 1) {
                        out.push(op);
                        return Ok(());
                    }
                    match a {
                        // A flag-setting pass: `or dst, s, s` or `add dst, s, 0`.
                        AluOp::Pass if alu_reg_form(m, AluOp::Or, 2) => {
                            out.push(MirOp::alu(AluOp::Or, dst, op.srcs[0], op.srcs[0]));
                            Ok(())
                        }
                        AluOp::Pass if alu_imm_fits(m, AluOp::Add, 0) => {
                            out.push(MirOp::alu_imm(AluOp::Add, dst, op.srcs[0], 0));
                            Ok(())
                        }
                        AluOp::Inc if alu_imm_fits(m, AluOp::Add, 1) => {
                            out.push(MirOp::alu_imm(AluOp::Add, dst, op.srcs[0], 1));
                            Ok(())
                        }
                        AluOp::Dec if alu_imm_fits(m, AluOp::Sub, 1) => {
                            out.push(MirOp::alu_imm(AluOp::Sub, dst, op.srcs[0], 1));
                            Ok(())
                        }
                        _ => Err(LegalizeError::Unsupported(op.to_string())),
                    }
                }
                _ => Err(LegalizeError::Unsupported(op.to_string())),
            }
        }
        // Everything else passes through if the machine has it.
        sem => {
            if has_sem(m, sem) {
                out.push(op);
                Ok(())
            } else {
                Err(LegalizeError::Unsupported(op.to_string()))
            }
        }
    }
}

/// Rewrites a branch condition into one the machine can test, possibly
/// swapping the branch arms. Returns `(cond, swapped)`.
fn legalize_cond(m: &MachineDesc, cond: CondKind) -> Result<(CondKind, bool), LegalizeError> {
    if m.supports_cond(cond) {
        return Ok((cond, false));
    }
    // Every shifter here deposits the shifted-out bit in carry too.
    let mapped = match cond {
        CondKind::Uf => Some(CondKind::Carry),
        CondKind::NotUf => Some(CondKind::NotCarry),
        _ => None,
    };
    if let Some(c) = mapped {
        if m.supports_cond(c) {
            return Ok((c, false));
        }
        if m.supports_cond(c.negate()) {
            return Ok((c.negate(), true));
        }
    }
    if m.supports_cond(cond.negate()) {
        return Ok((cond.negate(), true));
    }
    Err(LegalizeError::UntestableCond(cond))
}

/// Legalises a whole function in place for machine `m`.
///
/// # Errors
///
/// Fails when the machine genuinely cannot express an operation or test a
/// condition even after decomposition.
pub fn legalize(m: &MachineDesc, f: &mut MirFunction) -> Result<(), LegalizeError> {
    let caps = Caps::of(m);

    // 1. Straight-line op rewrites.
    for bi in 0..f.blocks.len() {
        let ops = std::mem::take(&mut f.blocks[bi].ops);
        let mut out = Vec::with_capacity(ops.len());
        for op in ops {
            let (op, writeback) = route_operands(m, f, &mut out, op);
            legalize_op(m, &caps, f, op, &mut out)?;
            if let Some((dst, tmp)) = writeback {
                out.push(MirOp::mov(dst, tmp));
            }
        }
        f.blocks[bi].ops = out;
    }

    // 2. Terminators: conditions and dispatch.
    let has_dispatch = has_sem(m, Semantic::Dispatch);
    for bi in 0..f.blocks.len() {
        let term = f.blocks[bi].term.clone();
        match term {
            Some(Term::Branch {
                cond,
                then_block,
                else_block,
            }) => {
                let (c, swapped) = legalize_cond(m, cond)?;
                f.blocks[bi].term = Some(if swapped {
                    Term::Branch {
                        cond: c,
                        then_block: else_block,
                        else_block: then_block,
                    }
                } else {
                    Term::Branch {
                        cond: c,
                        then_block,
                        else_block,
                    }
                });
            }
            Some(Term::Dispatch { src, mask, table }) if !has_dispatch => {
                lower_dispatch_to_chain(m, &caps, f, bi as BlockId, src, mask, table)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Replaces `Dispatch` in `block` with a compare-and-branch chain.
fn lower_dispatch_to_chain(
    m: &MachineDesc,
    caps: &Caps,
    f: &mut MirFunction,
    block: BlockId,
    src: Operand,
    mask: u64,
    table: Vec<BlockId>,
) -> Result<(), LegalizeError> {
    let masked = Operand::Vreg(f.new_vreg());
    let chk = Operand::Vreg(f.new_vreg());

    // masked = src & mask
    let mut head_ops = Vec::new();
    if alu_imm_fits(m, AluOp::And, mask) {
        head_ops.push(MirOp::alu_imm(AluOp::And, masked, src, mask));
    } else if alu_reg_form(m, AluOp::And, 2) {
        let tmp = Operand::Vreg(f.new_vreg());
        emit_ldi(m, caps, &mut head_ops, tmp, mask)?;
        head_ops.push(MirOp::alu(AluOp::And, masked, src, tmp));
    } else {
        return Err(LegalizeError::Unsupported("dispatch masking".into()));
    }

    let (zero_cond, _) = legalize_cond(m, CondKind::Zero)?;

    // Chain blocks: check index k, branch to table[k] or the next check.
    // The first check lives in the dispatch block itself.
    let n = table.len();
    assert!(n >= 1, "empty dispatch table");
    let mut check_blocks = Vec::with_capacity(n);
    check_blocks.push(block);
    for _ in 1..n.saturating_sub(1) {
        f.blocks.push(MirBlock::new());
        check_blocks.push((f.blocks.len() - 1) as BlockId);
    }

    for (pos, &cb) in check_blocks.iter().enumerate() {
        let mut ops = if pos == 0 {
            std::mem::take(&mut f.blocks[block as usize].ops)
                .into_iter()
                .chain(head_ops.drain(..))
                .collect::<Vec<_>>()
        } else {
            Vec::new()
        };
        // chk = masked - pos (sets Z when the index equals pos).
        if alu_imm_fits(m, AluOp::Sub, pos as u64) {
            ops.push(MirOp::alu_imm(AluOp::Sub, chk, masked, pos as u64));
        } else {
            return Err(LegalizeError::Unsupported("dispatch compare".into()));
        }
        let next: BlockId = if pos + 1 < check_blocks.len() {
            check_blocks[pos + 1]
        } else {
            // Last check falls through to the final table entry.
            table[n - 1]
        };
        let fb = &mut f.blocks[cb as usize];
        fb.ops = ops;
        fb.term = Some(Term::Branch {
            cond: zero_cond,
            then_block: table[pos],
            else_block: next,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FuncBuilder;
    use crate::select::select_function;
    use mcc_machine::machines::{bx2, hm1, vm1};
    use mcc_machine::ShiftOp;

    #[test]
    fn memread_is_funnelled_through_mar_mbr() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let a = b.vreg();
        let d = b.vreg();
        b.ldi(a, 100);
        b.load(d, a);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        let sems: Vec<_> = f.blocks[0].ops.iter().map(|o| o.sem).collect();
        assert_eq!(
            sems,
            vec![
                Semantic::LoadImm,
                Semantic::Move,    // MAR := a
                Semantic::MemRead, // raw read
                Semantic::Move,    // d := MBR
            ]
        );
    }

    #[test]
    fn wide_constant_explodes_on_bx2() {
        let m = bx2();
        let g = m.find_file("G").unwrap();
        let mut b = FuncBuilder::new("t");
        let dst = Operand::Reg(mcc_machine::RegRef::new(g, 0));
        b.ldi(dst, 0x1234);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        // ldi 0x12; shl ×8 (one bit each!); addi 0x34 → 1 + 8 + 1 ops.
        assert_eq!(f.blocks[0].ops.len(), 10);
        // And everything now selects.
        select_function(&m, &f).unwrap();
    }

    #[test]
    fn wide_constant_is_cheap_on_vm1() {
        // VM-1 shifts up to 15 at once: ldi, shl 8, addi = 3 ops.
        let m = vm1();
        let r = m.find_file("R").unwrap();
        let mut b = FuncBuilder::new("t");
        let dst = Operand::Reg(mcc_machine::RegRef::new(r, 0));
        b.ldi(dst, 0xABCD);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        assert_eq!(f.blocks[0].ops.len(), 3);
        select_function(&m, &f).unwrap();
    }

    #[test]
    fn long_shift_becomes_chain_on_bx2() {
        let m = bx2();
        let g = m.find_file("G").unwrap();
        let dst = Operand::Reg(mcc_machine::RegRef::new(g, 0));
        let mut b = FuncBuilder::new("t");
        b.shift(ShiftOp::Shr, dst, dst, 3);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        assert_eq!(f.blocks[0].ops.len(), 3, "three single-bit shifts");
        select_function(&m, &f).unwrap();
    }

    #[test]
    fn missing_imm_form_goes_through_scratch() {
        // BX-2 has no xori: xor r0, r0, 0x0F must load 0x0F first.
        let m = bx2();
        let g = m.find_file("G").unwrap();
        let dst = Operand::Reg(mcc_machine::RegRef::new(g, 0));
        let mut b = FuncBuilder::new("t");
        b.alu_imm(AluOp::Xor, dst, dst, 0x0F);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        let sems: Vec<_> = f.blocks[0].ops.iter().map(|o| o.sem).collect();
        assert_eq!(sems, vec![Semantic::LoadImm, Semantic::Alu(AluOp::Xor)]);
        assert!(f.has_virtual_regs(), "a scratch vreg was created");
    }

    #[test]
    fn nand_decomposes_on_bx2() {
        let m = bx2();
        let g = m.find_file("G").unwrap();
        let rr = |i| Operand::Reg(mcc_machine::RegRef::new(g, i));
        let mut b = FuncBuilder::new("t");
        b.alu(AluOp::Nand, rr(0), rr(1), rr(2));
        b.terminate(Term::Halt);
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        let sems: Vec<_> = f.blocks[0].ops.iter().map(|o| o.sem).collect();
        assert_eq!(
            sems,
            vec![Semantic::Alu(AluOp::And), Semantic::Alu(AluOp::Not)]
        );
    }

    #[test]
    fn pass_decomposes_on_bx2() {
        let m = bx2();
        let g = m.find_file("G").unwrap();
        let rr = |i| Operand::Reg(mcc_machine::RegRef::new(g, i));
        let mut b = FuncBuilder::new("t");
        b.alu_un(AluOp::Pass, rr(0), rr(0));
        b.terminate(Term::Halt);
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        assert_eq!(f.blocks[0].ops.len(), 1);
        assert_eq!(f.blocks[0].ops[0].sem, Semantic::Alu(AluOp::Or));
    }

    #[test]
    fn uf_condition_maps_to_carry_on_bx2() {
        let m = bx2();
        let g = m.find_file("G").unwrap();
        let rr = |i| Operand::Reg(mcc_machine::RegRef::new(g, i));
        let mut b = FuncBuilder::new("t");
        let t1 = b.new_block();
        let t2 = b.new_block();
        b.shift(ShiftOp::Shr, rr(0), rr(0), 1);
        b.branch(CondKind::Uf, t1, t2);
        for t in [t1, t2] {
            b.switch_to(t);
            b.terminate(Term::Halt);
        }
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        match f.blocks[0].term.as_ref().unwrap() {
            Term::Branch { cond, .. } => assert_eq!(*cond, CondKind::Carry),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn dispatch_becomes_chain_on_bx2() {
        let m = bx2();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        b.ldi(x, 2);
        let t0 = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        let end = b.new_block();
        b.terminate(Term::Dispatch {
            src: x.into(),
            mask: 3,
            table: vec![t0, t1, t2],
        });
        for t in [t0, t1, t2] {
            b.switch_to(t);
            b.terminate(Term::Jump(end));
        }
        b.switch_to(end);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        f.validate().unwrap();
        legalize(&m, &mut f).unwrap();
        f.validate().unwrap();
        // No dispatch terms remain.
        assert!(!f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Some(Term::Dispatch { .. }))));
        // The head block now ends in a conditional branch.
        assert!(matches!(
            f.blocks[0].term,
            Some(Term::Branch { .. })
        ));
    }

    #[test]
    fn dispatch_survives_on_hm1() {
        let m = hm1();
        let mut b = FuncBuilder::new("t");
        let x = b.vreg();
        b.ldi(x, 0);
        let t0 = b.new_block();
        let t1 = b.new_block();
        let end = b.new_block();
        b.terminate(Term::Dispatch {
            src: x.into(),
            mask: 1,
            table: vec![t0, t1],
        });
        for t in [t0, t1] {
            b.switch_to(t);
            b.terminate(Term::Jump(end));
        }
        b.switch_to(end);
        b.terminate(Term::Halt);
        let mut f = b.finish();
        legalize(&m, &mut f).unwrap();
        assert!(matches!(
            f.blocks[0].term,
            Some(Term::Dispatch { .. })
        ));
    }
}
