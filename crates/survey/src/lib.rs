//! # `mcc-survey` — the survey itself, as data
//!
//! Sint's paper closes with a set of quantitative observations about the
//! ten languages it reviews ("from the ten languages reviewed …, eight
//! allow complete sequential specification while only two leave
//! composition of microinstructions to the programmer…"). This crate
//! encodes the ten languages against the paper's §2.1 design issues, so
//! those observations become *checkable assertions* and the comparison
//! matrix becomes a generated artifact (experiment E8).

use serde::{Deserialize, Serialize};

/// How a language treats primitive operations (§2.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrimitiveStyle {
    /// A fixed machine-independent set (SIMPL, YALLL).
    FixedSet,
    /// A small base set plus user-declared operators (EMPL).
    Extensible,
    /// The micro-operations of the target machine (S\*, MPGL, Strum).
    MachineOps,
}

/// How variables relate to machine registers (§2.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VariableView {
    /// Each variable *is* a specific machine register.
    Registers,
    /// Symbolic variables allocated by the compiler.
    Symbolic,
    /// Mixed or partially bound (YALLL's optional binding).
    Mixed,
}

/// Who composes microinstructions (§2.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Fully sequential source; the compiler packs.
    CompilerImplicit,
    /// The programmer writes the microinstructions (S\*, CHAMIL).
    ProgrammerExplicit,
}

/// Implementation status as reported by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImplStatus {
    /// A working compiler existed.
    Implemented,
    /// Partially implemented (one pass, or a fragment).
    Partial,
    /// Paper design only.
    DesignOnly,
}

/// One surveyed language, scored on the §2.1 design issues.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Language {
    /// Name as the survey gives it.
    pub name: &'static str,
    /// Publication year.
    pub year: u16,
    /// Reference number(s) in the paper's bibliography.
    pub reference: &'static str,
    /// §2.1.2 — primitive operations.
    pub primitives: PrimitiveStyle,
    /// §2.1.3 — variables vs registers.
    pub variables: VariableView,
    /// §2.1.4 — who composes microinstructions.
    pub parallelism: Parallelism,
    /// §2.1.5 — interrupt/trap handling addressed at all.
    pub handles_interrupts: bool,
    /// §2.1.6 — procedures with parameter passing.
    pub parameter_passing: bool,
    /// §2.1.6 — multiway branch / case construct.
    pub multiway_branch: bool,
    /// §2.1.7 — data structuring beyond one scalar type.
    pub data_structures: bool,
    /// §2.1.1 — verification support (assertions/proofs).
    pub verification: bool,
    /// §2.1.8 — implementation status.
    pub status: ImplStatus,
    /// Whether this toolkit implements a frontend for it.
    pub in_toolkit: bool,
}

/// The ten languages of the survey, in its order of presentation.
pub fn languages() -> Vec<Language> {
    vec![
        Language {
            name: "SIMPL",
            year: 1974,
            reference: "[18]",
            primitives: PrimitiveStyle::FixedSet,
            variables: VariableView::Registers,
            parallelism: Parallelism::CompilerImplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: true, // case construct
            data_structures: false,
            verification: false,
            status: ImplStatus::Implemented,
            in_toolkit: true,
        },
        Language {
            name: "EMPL",
            year: 1976,
            reference: "[8]",
            primitives: PrimitiveStyle::Extensible,
            variables: VariableView::Symbolic,
            parallelism: Parallelism::CompilerImplicit,
            handles_interrupts: false,
            parameter_passing: false, // operators take params but are inlined; procedures do not
            multiway_branch: false,   // the paper criticises the lack of case
            data_structures: true,    // extension statements
            verification: false,
            status: ImplStatus::Partial,
            in_toolkit: true,
        },
        Language {
            name: "S*",
            year: 1978,
            reference: "[4]",
            primitives: PrimitiveStyle::MachineOps,
            variables: VariableView::Registers,
            parallelism: Parallelism::ProgrammerExplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: false,
            data_structures: true, // seq/array/tuple/stack
            verification: true,    // pre/postconditions
            status: ImplStatus::DesignOnly,
            in_toolkit: true,
        },
        Language {
            name: "YALLL",
            year: 1979,
            reference: "[16]",
            primitives: PrimitiveStyle::FixedSet,
            variables: VariableView::Mixed,
            parallelism: Parallelism::CompilerImplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: true, // masked multiway branch facility
            data_structures: false,
            verification: false,
            status: ImplStatus::Implemented, // on two machines!
            in_toolkit: true,
        },
        Language {
            name: "MPL",
            year: 1971,
            reference: "[10]",
            primitives: PrimitiveStyle::FixedSet,
            variables: VariableView::Registers,
            parallelism: Parallelism::CompilerImplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: false,
            data_structures: true, // 1-D arrays, concatenated registers
            verification: false,
            status: ImplStatus::Partial,
            in_toolkit: false,
        },
        Language {
            name: "Strum",
            year: 1976,
            reference: "[17]",
            primitives: PrimitiveStyle::MachineOps,
            variables: VariableView::Registers,
            parallelism: Parallelism::CompilerImplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: false,
            data_structures: false,
            verification: true, // assertions + automatic verifier
            status: ImplStatus::Implemented,
            in_toolkit: false, // covered by mcc-verify machinery
        },
        Language {
            name: "MPGL",
            year: 1977,
            reference: "[1]",
            primitives: PrimitiveStyle::MachineOps,
            variables: VariableView::Registers,
            parallelism: Parallelism::CompilerImplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: false,
            data_structures: false,
            verification: false,
            status: ImplStatus::Implemented,
            in_toolkit: false, // its machine-spec idea lives on as MDL
        },
        Language {
            name: "Malik-Lewis",
            year: 1978,
            reference: "[14]",
            primitives: PrimitiveStyle::Extensible,
            variables: VariableView::Registers, // declares the *emulated* machine's registers
            parallelism: Parallelism::CompilerImplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: false,
            data_structures: true, // declared registers/stacks of emulated machine
            verification: false,
            status: ImplStatus::DesignOnly,
            in_toolkit: false,
        },
        Language {
            name: "CHAMIL",
            year: 1980,
            reference: "[23]",
            primitives: PrimitiveStyle::MachineOps,
            variables: VariableView::Registers,
            parallelism: Parallelism::ProgrammerExplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: false,
            data_structures: true,
            verification: false,
            status: ImplStatus::Implemented,
            in_toolkit: false,
        },
        Language {
            name: "PL/MP",
            year: 1978,
            reference: "[20,12]",
            primitives: PrimitiveStyle::FixedSet,
            variables: VariableView::Symbolic,
            parallelism: Parallelism::CompilerImplicit,
            handles_interrupts: false,
            parameter_passing: false,
            multiway_branch: false,
            data_structures: false, // too little information, per the paper
            verification: false,
            status: ImplStatus::Partial,
            in_toolkit: false,
        },
    ]
}

/// The §3 summary statistics the paper states in prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyStats {
    /// Languages allowing fully sequential specification.
    pub sequential: usize,
    /// Languages leaving composition to the programmer.
    pub explicit_composition: usize,
    /// Languages with symbolic (or partially symbolic) variables.
    pub symbolic_variables: usize,
    /// Languages supporting parameter passing to subroutines.
    pub parameter_passing: usize,
    /// Languages addressing interrupt/trap handling.
    pub interrupts: usize,
    /// Total languages surveyed.
    pub total: usize,
}

/// Computes the summary statistics from the encoded languages.
pub fn stats() -> SurveyStats {
    let ls = languages();
    SurveyStats {
        sequential: ls
            .iter()
            .filter(|l| l.parallelism == Parallelism::CompilerImplicit)
            .count(),
        explicit_composition: ls
            .iter()
            .filter(|l| l.parallelism == Parallelism::ProgrammerExplicit)
            .count(),
        symbolic_variables: ls
            .iter()
            .filter(|l| matches!(l.variables, VariableView::Symbolic | VariableView::Mixed))
            .count(),
        parameter_passing: ls.iter().filter(|l| l.parameter_passing).count(),
        interrupts: ls.iter().filter(|l| l.handles_interrupts).count(),
        total: ls.len(),
    }
}

/// Renders the feature matrix as an aligned text table (experiment E8's
/// artifact).
pub fn feature_matrix() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<5} {:<7} {:<11} {:<9} {:<9} {:<6} {:<7} {:<7} {:<7} {:<12}",
        "language",
        "year",
        "ref",
        "primitives",
        "vars",
        "compose",
        "case",
        "structs",
        "verify",
        "params",
        "status"
    );
    let _ = writeln!(out, "{}", "-".repeat(100));
    for l in languages() {
        let prim = match l.primitives {
            PrimitiveStyle::FixedSet => "fixed",
            PrimitiveStyle::Extensible => "extensible",
            PrimitiveStyle::MachineOps => "machine",
        };
        let vars = match l.variables {
            VariableView::Registers => "regs",
            VariableView::Symbolic => "symbolic",
            VariableView::Mixed => "mixed",
        };
        let par = match l.parallelism {
            Parallelism::CompilerImplicit => "compiler",
            Parallelism::ProgrammerExplicit => "explicit",
        };
        let status = match l.status {
            ImplStatus::Implemented => "implemented",
            ImplStatus::Partial => "partial",
            ImplStatus::DesignOnly => "design-only",
        };
        let yn = |b: bool| if b { "yes" } else { "-" };
        let _ = writeln!(
            out,
            "{:<12} {:<5} {:<7} {:<11} {:<9} {:<9} {:<6} {:<7} {:<7} {:<7} {:<12}",
            l.name,
            l.year,
            l.reference,
            prim,
            vars,
            par,
            yn(l.multiway_branch),
            yn(l.data_structures),
            yn(l.verification),
            yn(l.parameter_passing),
            status
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper, §3: "From the ten languages reviewed in the previous
    /// paragraphs, eight allow complete sequential specification while
    /// only two (S* and CHAMIL) leave composition of microinstructions to
    /// the programmer."
    #[test]
    fn eight_sequential_two_explicit() {
        let s = stats();
        assert_eq!(s.total, 10);
        assert_eq!(s.sequential, 8);
        assert_eq!(s.explicit_composition, 2);
        let explicit: Vec<&str> = languages()
            .into_iter()
            .filter(|l| l.parallelism == Parallelism::ProgrammerExplicit)
            .map(|l| l.name)
            .collect();
        assert_eq!(explicit, vec!["S*", "CHAMIL"]);
    }

    /// "only two or three (EMPL, PL/MP and in a certain sense YALLL) allow
    /// the programmer to work with symbolic variables instead of physical
    /// registers."
    #[test]
    fn two_or_three_symbolic() {
        let s = stats();
        assert_eq!(s.symbolic_variables, 3);
        let symbolic: Vec<&str> = languages()
            .into_iter()
            .filter(|l| matches!(l.variables, VariableView::Symbolic | VariableView::Mixed))
            .map(|l| l.name)
            .collect();
        assert_eq!(symbolic, vec!["EMPL", "YALLL", "PL/MP"]);
    }

    /// "No language supports the passing of parameters to subroutines."
    #[test]
    fn no_parameter_passing() {
        assert_eq!(stats().parameter_passing, 0);
    }

    /// "Another substantial problem, the incorporation of interrupt and
    /// trap handling, has even been completely neglected."
    #[test]
    fn interrupts_completely_neglected() {
        assert_eq!(stats().interrupts, 0);
    }

    /// The toolkit implements the four principal languages.
    #[test]
    fn four_frontends_in_toolkit() {
        let n = languages().iter().filter(|l| l.in_toolkit).count();
        assert_eq!(n, 4);
    }

    #[test]
    fn matrix_lists_all_languages() {
        let m = feature_matrix();
        for l in languages() {
            assert!(m.contains(l.name), "matrix missing {}", l.name);
        }
        assert!(m.lines().count() >= 12);
    }

    #[test]
    fn verification_languages() {
        let v: Vec<&str> = languages()
            .into_iter()
            .filter(|l| l.verification)
            .map(|l| l.name)
            .collect();
        assert_eq!(v, vec!["S*", "Strum"]);
    }
}
