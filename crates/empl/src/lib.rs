//! # `mcc-empl` — the EMPL frontend
//!
//! EMPL (*Extensible Micro Programming Language*, DeWitt 1976) is the
//! survey's §2.2.2 language and, in its judgement, the one that "most
//! closely resembles a conventional high level language". The features the
//! survey calls out are all here:
//!
//! * **symbolic variables** — "variables in EMPL are not machine
//!   registers"; every scalar is a virtual register for the allocator
//!   (EMPL is the frontend that actually *needs* `mcc-regalloc`);
//! * all variables **global** ("in order to avoid procedure calling
//!   overhead"), procedures parameterless;
//! * **single-operator expressions** (`X = A + B;`);
//! * a small builtin operator set *including multiply and divide* —
//!   neither exists in any reference machine, so the frontend expands
//!   them into shift-add / restoring-division microcode loops;
//! * **extensibility**: `NAME: OPERATOR ACCEPTS (…) RETURNS (…);` with an
//!   optional `MICROOP` hardware hint, and `TYPE … ENDTYPE` extension
//!   statements (the SIMULA-class analogue) whose fields are visible only
//!   to the operations declared inside — exactly the encapsulation the
//!   paper describes;
//! * operator invocations are **inlined** ("a call to an operator which is
//!   not hardware supported is textually replaced by the statements that
//!   form its body") — the code-growth consequence the survey criticises
//!   is measurable in the experiment tables;
//! * `IF/THEN/ELSE`, `WHILE…DO;…END;`, `GOTO`, `CALL`, `RETURN`, `ERROR`.
//!
//! None of the reference machines exposes the hinted micro-operations
//! (`MICROOP PUSH` etc.), so hints are recorded in
//! [`EmplProgram::hints`] and bodies are always inlined — faithfully
//! reproducing the implementation sketch the survey reviews.

mod syntax;

use std::collections::HashMap;

use mcc_lang::{Diagnostic, FrontendLimits, Span};
use mcc_machine::{AluOp, CondKind, ShiftOp};
use mcc_mir::{BlockId, FuncBuilder, MirFunction, Operand, Term};

pub use syntax::{
    Atom, Cond, Decl, Field, Item, Lhs, Module, OperatorDef, ProcDef, Rhs, Stmt, TypeDef,
};

/// A compiled EMPL program.
#[derive(Debug)]
pub struct EmplProgram {
    /// The lowered function (all scalars virtual — run the allocator).
    pub func: MirFunction,
    /// Global scalar variables (including type-instance fields under
    /// `instance.field` names).
    pub globals: HashMap<String, Operand>,
    /// Arrays: name → (memory base address, length).
    pub arrays: HashMap<String, (u64, u64)>,
    /// The error flag: 0 = clean, 1 = `ERROR` executed.
    pub error_flag: Operand,
    /// `MICROOP` hints encountered (recorded; bodies inlined regardless).
    pub hints: Vec<String>,
}

/// Base address of the EMPL array heap.
pub const ARRAY_BASE: u64 = 0x4000;

fn err(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::new(msg, Span::default())
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    Scalar(Operand),
    Array { base: u64, len: u64 },
}

struct Lower<'a> {
    b: FuncBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    types: HashMap<String, &'a TypeDef>,
    free_ops: HashMap<String, &'a OperatorDef>,
    proc_entries: HashMap<String, BlockId>,
    instances: HashMap<String, String>,
    labels: HashMap<String, (BlockId, bool)>,
    label_prefix: String,
    error_block: BlockId,
    error_flag: Operand,
    next_mem: u64,
    inline_depth: u32,
    inline_counter: u32,
    hints: Vec<String>,
    in_proc: bool,
}

impl<'a> Lower<'a> {
    fn resolve(&self, name: &str) -> Option<Binding> {
        for s in self.scopes.iter().rev() {
            if let Some(b) = s.get(name) {
                return Some(*b);
            }
        }
        None
    }

    fn scalar(&mut self, name: &str) -> Result<Operand, Diagnostic> {
        match self.resolve(name) {
            Some(Binding::Scalar(o)) => Ok(o),
            Some(Binding::Array { .. }) => Err(err(format!("`{name}` is an array"))),
            None => Err(err(format!("undeclared variable `{name}`"))),
        }
    }

    fn array(&mut self, name: &str) -> Option<(u64, u64)> {
        match self.resolve(name) {
            Some(Binding::Array { base, len }) => Some((base, len)),
            _ => None,
        }
    }

    fn atom(&mut self, a: &Atom) -> Result<Operand, Diagnostic> {
        match a {
            Atom::Var(n) => self.scalar(n),
            Atom::Num(v) => {
                let t = Operand::Vreg(self.b.vreg());
                self.b.ldi(t, *v);
                Ok(t)
            }
        }
    }

    /// Computes the address operand of `arr(idx)` with the base folded in.
    fn element_addr(&mut self, base: u64, idx: &Atom) -> Result<Operand, Diagnostic> {
        match idx {
            Atom::Num(i) => {
                let t = Operand::Vreg(self.b.vreg());
                self.b.ldi(t, base + i);
                Ok(t)
            }
            Atom::Var(n) => {
                let iv = self.scalar(n)?;
                let t = Operand::Vreg(self.b.vreg());
                self.b.alu_imm(AluOp::Add, t, iv, base);
                Ok(t)
            }
        }
    }

    fn label_block(&mut self, name: &str) -> BlockId {
        let key = format!("{}{}", self.label_prefix, name);
        if let Some(&(b, _)) = self.labels.get(&key) {
            return b;
        }
        let b = self.b.new_labeled_block(&key);
        self.labels.insert(key, (b, false));
        b
    }

    fn define_label(&mut self, name: &str) -> Result<(), Diagnostic> {
        let blk = self.label_block(name);
        let key = format!("{}{}", self.label_prefix, name);
        let entry = self.labels.get_mut(&key).expect("just created");
        if entry.1 {
            return Err(err(format!("label `{name}` defined twice")));
        }
        entry.1 = true;
        self.b.terminate(Term::Jump(blk));
        self.b.switch_to(blk);
        Ok(())
    }

    /// Emits a comparison, returning the "holds" condition.
    fn cond(&mut self, c: &Cond) -> Result<CondKind, Diagnostic> {
        let (a, rel, b) = match c.rel.as_str() {
            ">" => (&c.b, "<", &c.a),
            "<=" => (&c.b, ">=", &c.a),
            r => (&c.a, r, &c.b),
        };
        let va = self.atom(a)?;
        if matches!(b, Atom::Num(0)) && (rel == "=" || rel == "<>") {
            self.b.alu_un(AluOp::Pass, va, va);
        } else {
            let t = Operand::Vreg(self.b.vreg());
            match b {
                Atom::Num(v) => self.b.alu_imm(AluOp::Sub, t, va, *v),
                Atom::Var(n) => {
                    let vb = self.scalar(n)?;
                    self.b.alu(AluOp::Sub, t, va, vb);
                }
            }
        }
        Ok(match rel {
            "=" => CondKind::Zero,
            "<>" => CondKind::NotZero,
            "<" => CondKind::Neg,
            ">=" => CondKind::NotNeg,
            other => return Err(err(format!("unknown relop `{other}`"))),
        })
    }

    /// Shift-add multiplication: `dst = a * b` (16-bit wrapping).
    fn emit_mul(&mut self, dst: Operand, a: Operand, b: Operand) -> Result<(), Diagnostic> {
        let acc = Operand::Vreg(self.b.vreg());
        let m = Operand::Vreg(self.b.vreg());
        let n = Operand::Vreg(self.b.vreg());
        self.b.ldi(acc, 0);
        self.b.mov(m, a);
        self.b.mov(n, b);
        let head = self.b.new_labeled_block("mul_head");
        let body = self.b.new_block();
        let addb = self.b.new_block();
        let skip = self.b.new_block();
        let done = self.b.new_block();
        self.b.jump_and_switch(head);
        self.b.alu_un(AluOp::Pass, n, n);
        self.b.branch(CondKind::Zero, done, body);
        self.b.switch_to(body);
        self.b.shift(ShiftOp::Shr, n, n, 1);
        self.b.branch(CondKind::Uf, addb, skip);
        self.b.switch_to(addb);
        self.b.alu(AluOp::Add, acc, acc, m);
        self.b.terminate(Term::Jump(skip));
        self.b.switch_to(skip);
        self.b.shift(ShiftOp::Shl, m, m, 1);
        self.b.terminate(Term::Jump(head));
        self.b.switch_to(done);
        self.b.mov(dst, acc);
        Ok(())
    }

    /// Restoring division: `dst = a / b` (unsigned 16-bit). `ERROR` on
    /// division by zero.
    fn emit_div(&mut self, dst: Operand, a: Operand, b: Operand) -> Result<(), Diagnostic> {
        // Zero check.
        let zb = self.b.new_block();
        let go = self.b.new_block();
        self.b.alu_un(AluOp::Pass, b, b);
        self.b.branch(CondKind::Zero, zb, go);
        self.b.switch_to(zb);
        self.b.ldi(self.error_flag, 1);
        self.b.terminate(Term::Jump(self.error_block));
        self.b.switch_to(go);

        let q = Operand::Vreg(self.b.vreg());
        let r = Operand::Vreg(self.b.vreg());
        let num = Operand::Vreg(self.b.vreg());
        let i = Operand::Vreg(self.b.vreg());
        self.b.ldi(q, 0);
        self.b.ldi(r, 0);
        self.b.mov(num, a);
        self.b.ldi(i, 16);
        let head = self.b.new_labeled_block("div_head");
        let body = self.b.new_block();
        let bit1 = self.b.new_block();
        let bit0 = self.b.new_block();
        let cmp = self.b.new_block();
        let subb = self.b.new_block();
        let next = self.b.new_block();
        let done = self.b.new_block();
        self.b.jump_and_switch(head);
        self.b.alu_un(AluOp::Pass, i, i);
        self.b.branch(CondKind::Zero, done, body);
        self.b.switch_to(body);
        // Bring down the next numerator bit: r = r<<1 | msb(num).
        self.b.shift(ShiftOp::Shl, num, num, 1); // UF = old msb
        self.b.branch(CondKind::Uf, bit1, bit0);
        self.b.switch_to(bit1);
        self.b.shift(ShiftOp::Shl, r, r, 1);
        self.b.alu_imm(AluOp::Or, r, r, 1);
        self.b.terminate(Term::Jump(cmp));
        self.b.switch_to(bit0);
        self.b.shift(ShiftOp::Shl, r, r, 1);
        self.b.terminate(Term::Jump(cmp));
        self.b.switch_to(cmp);
        // q <<= 1; if r >= b { r -= b; q |= 1 }
        self.b.shift(ShiftOp::Shl, q, q, 1);
        let t = Operand::Vreg(self.b.vreg());
        self.b.alu(AluOp::Sub, t, r, b);
        // Unsigned r >= b ⟺ no borrow ⟺ carry clear.
        self.b.branch(CondKind::NotCarry, subb, next);
        self.b.switch_to(subb);
        self.b.mov(r, t);
        self.b.alu_imm(AluOp::Or, q, q, 1);
        self.b.terminate(Term::Jump(next));
        self.b.switch_to(next);
        self.b.alu_imm(AluOp::Sub, i, i, 1);
        self.b.terminate(Term::Jump(head));
        self.b.switch_to(done);
        self.b.mov(dst, q);
        Ok(())
    }

    /// Inlines an operator/operation body.
    fn inline_operator(
        &mut self,
        def: &'a OperatorDef,
        instance: Option<&str>,
        args: &[Atom],
        dst: Option<Operand>,
    ) -> Result<(), Diagnostic> {
        if self.inline_depth >= 32 {
            return Err(err(format!(
                "operator `{}` expands too deep (recursive?)",
                def.name
            )));
        }
        if let Some(h) = &def.hint {
            if !self.hints.contains(h) {
                self.hints.push(h.clone());
            }
        }
        if def.accepts.len() != args.len() {
            return Err(err(format!(
                "`{}` takes {} arguments, got {}",
                def.name,
                def.accepts.len(),
                args.len()
            )));
        }
        let mut scope: HashMap<String, Binding> = HashMap::new();
        // Instance fields come into scope first.
        if let Some(inst) = instance {
            let tname = match self.instances.get(inst) {
                Some(t) => t.clone(),
                None => return Err(err(format!("`{inst}` is not a type instance"))),
            };
            let t = match self.types.get(tname.as_str()) {
                Some(t) => *t,
                None => return Err(err(format!("unknown type `{tname}`"))),
            };
            for f in &t.fields {
                let key = match f {
                    Field::Scalar(n) => n.clone(),
                    Field::Array(n, _) => n.clone(),
                };
                let mangled = format!("{inst}.{key}");
                let b = match self.resolve(&mangled) {
                    Some(b) => b,
                    None => return Err(err(format!("instance field `{mangled}` missing"))),
                };
                scope.insert(key, b);
            }
        }
        // Formals alias the actuals (textual substitution semantics).
        for (formal, actual) in def.accepts.iter().zip(args) {
            let b = match actual {
                Atom::Var(n) => match self.resolve(n) {
                    Some(b) => b,
                    None => return Err(err(format!("undeclared argument `{n}`"))),
                },
                Atom::Num(v) => {
                    let t = Operand::Vreg(self.b.vreg());
                    self.b.ldi(t, *v);
                    Binding::Scalar(t)
                }
            };
            scope.insert(formal.clone(), b);
        }
        // The RETURNS formal binds to the destination (or a scratch).
        if let Some(ret) = &def.returns {
            let d = dst.unwrap_or_else(|| Operand::Vreg(self.b.vreg()));
            scope.insert(ret.clone(), Binding::Scalar(d));
        }

        self.inline_counter += 1;
        let saved_prefix = std::mem::replace(
            &mut self.label_prefix,
            format!("inl{}::", self.inline_counter),
        );
        self.scopes.push(scope);
        self.inline_depth += 1;
        let r = self.items(&def.body);
        self.inline_depth -= 1;
        self.scopes.pop();
        self.label_prefix = saved_prefix;
        r
    }

    fn find_operation(
        &self,
        name: &str,
        args: &[Atom],
    ) -> Option<(&'a OperatorDef, Option<String>, Vec<Atom>)> {
        // Type operation: first argument is an instance.
        if let Some(Atom::Var(first)) = args.first() {
            if let Some(tname) = self.instances.get(first) {
                if let Some(op) = self.types[tname].operations.iter().find(|o| o.name == name) {
                    return Some((op, Some(first.clone()), args[1..].to_vec()));
                }
            }
        }
        // Free operator.
        self.free_ops
            .get(name)
            .map(|op| (*op, None, args.to_vec()))
    }

    fn assign(&mut self, lhs: &Lhs, rhs: &Rhs) -> Result<(), Diagnostic> {
        // Resolve the destination.
        enum Dst {
            Reg(Operand),
            Mem(Operand), // address operand
        }
        let dst = match lhs {
            Lhs::Var(n) => Dst::Reg(self.scalar(n)?),
            Lhs::Arr(n, idx) => match self.array(n) {
                Some((base, _len)) => {
                    // Evaluate rhs first? Address computation is
                    // side-effect-free; order does not matter here.
                    Dst::Mem(self.element_addr(base, &idx.clone())?)
                }
                None => return Err(err(format!("`{n}` is not an array"))),
            },
        };

        // A memory destination needs the value in a register first.
        let into: Operand = match &dst {
            Dst::Reg(r) => *r,
            Dst::Mem(_) => Operand::Vreg(self.b.vreg()),
        };

        match rhs {
            Rhs::Atom(Atom::Num(v)) => self.b.ldi(into, *v),
            Rhs::Atom(Atom::Var(n)) => {
                let s = self.scalar(n)?;
                self.b.mov(into, s);
            }
            Rhs::Un(op, a) => {
                let va = self.atom(a)?;
                match op.as_str() {
                    "-" => self.b.alu_un(AluOp::Neg, into, va),
                    _ => self.b.alu_un(AluOp::Not, into, va),
                }
            }
            Rhs::Shift(op, a, n) => {
                let va = self.atom(a)?;
                let sh = match op.as_str() {
                    "SHL" => ShiftOp::Shl,
                    "SHR" => ShiftOp::Shr,
                    "SAR" => ShiftOp::Sar,
                    "ROL" => ShiftOp::Rol,
                    _ => ShiftOp::Ror,
                };
                self.b.shift(sh, into, va, *n);
            }
            Rhs::Bin(op, a, bb) => {
                let va = self.atom(a)?;
                match op.as_str() {
                    "*" => {
                        let vb = self.atom(bb)?;
                        self.emit_mul(into, va, vb)?;
                    }
                    "/" => {
                        let vb = self.atom(bb)?;
                        self.emit_div(into, va, vb)?;
                    }
                    _ => {
                        let aop = match op.as_str() {
                            "+" => AluOp::Add,
                            "-" => AluOp::Sub,
                            "&" => AluOp::And,
                            "|" => AluOp::Or,
                            "XOR" => AluOp::Xor,
                            other => return Err(err(format!("unknown operator `{other}`"))),
                        };
                        match bb {
                            Atom::Num(v) => self.b.alu_imm(aop, into, va, *v),
                            Atom::Var(n) => {
                                let vb = self.scalar(n)?;
                                self.b.alu(aop, into, va, vb);
                            }
                        }
                    }
                }
            }
            Rhs::ArrGet(n, idx) => {
                // Array read *or* single-argument operator call.
                if let Some((base, _)) = self.array(n) {
                    let at = self.element_addr(base, idx)?;
                    self.b.load(into, at);
                } else if let Some((def, inst, rest)) =
                    self.find_operation(n, std::slice::from_ref(idx))
                {
                    let inst = inst.clone();
                    self.inline_operator(def, inst.as_deref(), &rest, Some(into))?;
                } else {
                    return Err(err(format!("`{n}` is neither array nor operator")));
                }
            }
            Rhs::OpCall(n, args) => match self.find_operation(n, args) {
                Some((def, inst, rest)) => {
                    let inst = inst.clone();
                    self.inline_operator(def, inst.as_deref(), &rest, Some(into))?;
                }
                None => return Err(err(format!("unknown operator `{n}`"))),
            },
        }

        if let Dst::Mem(at) = dst {
            self.b.store(at, into);
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), Diagnostic> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Assign(l, r) => self.assign(l, r),
            Stmt::Do(items) => self.items(items),
            Stmt::If(c, then_s, else_s) => {
                let k = self.cond(c)?;
                let tb = self.b.new_block();
                let eb = self.b.new_block();
                self.b.branch(k, tb, eb);
                self.b.switch_to(tb);
                self.stmt(then_s)?;
                match else_s {
                    Some(es) => {
                        let join = self.b.new_block();
                        self.b.terminate(Term::Jump(join));
                        self.b.switch_to(eb);
                        self.stmt(es)?;
                        self.b.terminate(Term::Jump(join));
                        self.b.switch_to(join);
                    }
                    None => {
                        self.b.terminate(Term::Jump(eb));
                        self.b.switch_to(eb);
                    }
                }
                Ok(())
            }
            Stmt::While(c, body) => {
                let head = self.b.new_labeled_block("while");
                let bb = self.b.new_block();
                let done = self.b.new_block();
                self.b.jump_and_switch(head);
                let k = self.cond(c)?;
                self.b.branch(k, bb, done);
                self.b.switch_to(bb);
                self.items(body)?;
                self.b.terminate(Term::Jump(head));
                self.b.switch_to(done);
                Ok(())
            }
            Stmt::Goto(l) => {
                let blk = self.label_block(l);
                self.b.terminate(Term::Jump(blk));
                let unreachable = self.b.new_block();
                self.b.switch_to(unreachable);
                Ok(())
            }
            Stmt::Call(name, args) => {
                // Procedure call (no args) or operation invocation.
                if args.is_empty() {
                    if let Some(&entry) = self.proc_entries.get(name) {
                        self.b.call(entry);
                        return Ok(());
                    }
                }
                match self.find_operation(name, args) {
                    Some((def, inst, rest)) => {
                        let inst = inst.clone();
                        self.inline_operator(def, inst.as_deref(), &rest, None)
                    }
                    None => Err(err(format!("unknown procedure or operation `{name}`"))),
                }
            }
            Stmt::Return => {
                if self.in_proc {
                    self.b.terminate(Term::Ret);
                } else {
                    self.b.terminate(Term::Halt);
                }
                let unreachable = self.b.new_block();
                self.b.switch_to(unreachable);
                Ok(())
            }
            Stmt::Error => {
                self.b.ldi(self.error_flag, 1);
                self.b.terminate(Term::Jump(self.error_block));
                let unreachable = self.b.new_block();
                self.b.switch_to(unreachable);
                Ok(())
            }
        }
    }

    fn items(&mut self, items: &[Item]) -> Result<(), Diagnostic> {
        for it in items {
            match it {
                Item::Label(l) => self.define_label(l)?,
                Item::Stmt(s) => self.stmt(s)?,
            }
        }
        Ok(())
    }
}

/// Parses EMPL source into a [`Module`] (machine-independent).
///
/// # Errors
///
/// Returns a [`Diagnostic`] with the position of the first syntax error.
pub fn parse(src: &str) -> Result<Module, Diagnostic> {
    parse_with_limits(src, &FrontendLimits::default())
}

/// [`parse`] with explicit resource limits (source size, token budget,
/// nesting depth). Fuzzing entry point; `parse` uses the defaults.
///
/// # Errors
///
/// As [`parse`], plus a [`Diagnostic`] when a limit is exceeded.
pub fn parse_with_limits(src: &str, limits: &FrontendLimits) -> Result<Module, Diagnostic> {
    limits.check_source(src)?;
    syntax::Parser::new(src, limits)?.module()
}

/// Lowers a parsed module to MIR (machine-independent; the pipeline's
/// legalisation adapts it to a target).
///
/// # Errors
///
/// Returns a [`Diagnostic`] for semantic errors (undeclared names, bad
/// arities, recursive operator expansion).
pub fn lower(module: &Module) -> Result<EmplProgram, Diagnostic> {
    let mut b = FuncBuilder::new("empl");
    let error_flag = Operand::Vreg(b.vreg());
    b.ldi(error_flag, 0);

    let mut lw = Lower {
        b,
        scopes: vec![HashMap::new()],
        types: module.types.iter().map(|t| (t.name.clone(), t)).collect(),
        free_ops: module
            .operators
            .iter()
            .map(|o| (o.name.clone(), o))
            .collect(),
        proc_entries: HashMap::new(),
        instances: HashMap::new(),
        labels: HashMap::new(),
        label_prefix: String::new(),
        error_block: 0, // patched below
        error_flag,
        next_mem: ARRAY_BASE,
        inline_depth: 0,
        inline_counter: 0,
        hints: Vec::new(),
        in_proc: false,
    };
    lw.error_block = lw.b.new_labeled_block("error");

    // Globals and instances, with INITIALLY bodies queued in order.
    let mut initial_runs: Vec<(String, String)> = Vec::new(); // (instance, type)
    for d in &module.decls {
        match d {
            Decl::Scalar(n) => {
                let v = Operand::Vreg(lw.b.vreg());
                lw.scopes[0].insert(n.clone(), Binding::Scalar(v));
            }
            Decl::Array(n, len) => {
                let base = lw.next_mem;
                lw.next_mem += len;
                lw.scopes[0].insert(n.clone(), Binding::Array { base, len: *len });
            }
            Decl::Instance(n, tname) => {
                let t = *lw
                    .types
                    .get(tname)
                    .ok_or_else(|| err(format!("unknown type `{tname}`")))?;
                for f in &t.fields {
                    match f {
                        Field::Scalar(fname) => {
                            let v = Operand::Vreg(lw.b.vreg());
                            lw.scopes[0]
                                .insert(format!("{n}.{fname}"), Binding::Scalar(v));
                        }
                        Field::Array(fname, len) => {
                            let base = lw.next_mem;
                            lw.next_mem += len;
                            lw.scopes[0].insert(
                                format!("{n}.{fname}"),
                                Binding::Array { base, len: *len },
                            );
                        }
                    }
                }
                lw.instances.insert(n.clone(), tname.clone());
                initial_runs.push((n.clone(), tname.clone()));
            }
        }
    }

    // Procedures: entries first (forward calls), bodies second.
    for p in &module.procs {
        let entry = lw.b.new_labeled_block(format!("proc_{}", p.name));
        lw.proc_entries.insert(p.name.clone(), entry);
    }
    let main_block = lw.b.current();
    for p in &module.procs {
        let entry = lw.proc_entries[&p.name];
        lw.b.switch_to(entry);
        lw.in_proc = true;
        let saved = std::mem::replace(&mut lw.label_prefix, format!("{}::", p.name));
        lw.items(&p.body)?;
        lw.label_prefix = saved;
        lw.in_proc = false;
        lw.b.terminate(Term::Ret);
    }
    lw.b.switch_to(main_block);

    // INITIALLY bodies run before the main program, in declaration order.
    for (inst, tname) in &initial_runs {
        let t = lw.types[tname];
        if t.initially.is_empty() {
            continue;
        }
        let mut scope = HashMap::new();
        for f in &t.fields {
            let key = match f {
                Field::Scalar(n) => n.clone(),
                Field::Array(n, _) => n.clone(),
            };
            let b = match lw.resolve(&format!("{inst}.{key}")) {
                Some(b) => b,
                None => return Err(err(format!("instance field `{inst}.{key}` missing"))),
            };
            scope.insert(key, b);
        }
        lw.scopes.push(scope);
        lw.inline_counter += 1;
        let saved = std::mem::replace(
            &mut lw.label_prefix,
            format!("init{}::", lw.inline_counter),
        );
        lw.items(&t.initially)?;
        lw.label_prefix = saved;
        lw.scopes.pop();
    }

    // Main program.
    lw.items(&module.main)?;
    lw.b.terminate(Term::Halt);

    // Error block: halts with the flag set.
    lw.b.switch_to(lw.error_block);
    lw.b.terminate(Term::Halt);

    // Undefined labels?
    for (name, (_, defined)) in &lw.labels {
        if !defined {
            return Err(err(format!("label `{name}` is never defined")));
        }
    }

    // Observability.
    let mut globals = HashMap::new();
    let mut arrays = HashMap::new();
    for (n, b) in &lw.scopes[0] {
        match b {
            Binding::Scalar(o) => {
                globals.insert(n.clone(), *o);
                lw.b.mark_live_out(*o);
            }
            Binding::Array { base, len } => {
                arrays.insert(n.clone(), (*base, *len));
            }
        }
    }
    lw.b.mark_live_out(error_flag);

    let func = lw.b.finish();
    func.validate()
        .map_err(|e| err(format!("internal lowering error: {e}")))?;
    Ok(EmplProgram {
        func,
        globals,
        arrays,
        error_flag,
        hints: lw.hints,
    })
}

/// Parses and lowers in one step.
///
/// # Errors
///
/// See [`parse`] and [`lower`].
pub fn compile(src: &str) -> Result<EmplProgram, Diagnostic> {
    lower(&parse(src)?)
}

/// [`compile`] with explicit resource limits.
///
/// # Errors
///
/// See [`parse_with_limits`] and [`lower`].
pub fn compile_with_limits(
    src: &str,
    limits: &FrontendLimits,
) -> Result<EmplProgram, Diagnostic> {
    lower(&parse_with_limits(src, limits)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(src: &str) -> EmplProgram {
        compile(src).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn nesting_depth_is_limited() {
        let mut src = String::from("DECLARE X FIXED; ");
        for _ in 0..200 {
            src.push_str("IF X = 0 THEN ");
        }
        src.push_str("X = 1;");
        let e = compile(&src).unwrap_err();
        assert!(e.message.contains("nesting"), "got: {}", e.message);
    }

    #[test]
    fn nested_do_groups_are_limited() {
        let mut src = String::new();
        for _ in 0..200 {
            src.push_str("DO; ");
        }
        let e = compile(&src).unwrap_err();
        assert!(e.message.contains("nesting"), "got: {}", e.message);
    }

    #[test]
    fn token_budget_is_enforced() {
        let limits = FrontendLimits {
            max_tokens: 10,
            ..FrontendLimits::default()
        };
        let e = compile_with_limits("DECLARE X FIXED; X = 1; X = 2; X = 3;", &limits)
            .unwrap_err();
        assert!(e.message.contains("token budget"), "got: {}", e.message);
    }

    #[test]
    fn oversize_source_is_rejected() {
        let limits = FrontendLimits {
            max_source_bytes: 16,
            ..FrontendLimits::default()
        };
        let e = compile_with_limits("DECLARE X FIXED; X = 1;", &limits).unwrap_err();
        assert!(e.message.contains("byte limit"), "got: {}", e.message);
    }

    #[test]
    fn scalars_are_symbolic() {
        let p = c("DECLARE X FIXED; X = 5;");
        assert!(p.func.has_virtual_regs());
        assert!(p.globals.contains_key("X"));
    }

    #[test]
    fn single_operator_expressions() {
        let p = c("DECLARE X FIXED; DECLARE Y FIXED; X = 1; Y = X + 2;");
        // error-flag init + two assignments.
        assert_eq!(p.func.op_count(), 3);
    }

    #[test]
    fn arrays_live_in_memory() {
        let p = c("DECLARE A(8) FIXED; DECLARE I FIXED; I = 3; A(I) = 7; I = A(2);");
        assert_eq!(p.arrays["A"], (ARRAY_BASE, 8));
        // Contains load and store ops.
        let sems: Vec<_> = p
            .func
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .map(|o| o.sem)
            .collect();
        assert!(sems.contains(&mcc_machine::Semantic::MemRead));
        assert!(sems.contains(&mcc_machine::Semantic::MemWrite));
    }

    #[test]
    fn while_and_goto() {
        let p = c("DECLARE X FIXED; X = 5; WHILE X <> 0 DO; X = X - 1; END; \
                   L: X = X + 1; IF X < 3 THEN GOTO L;");
        p.func.validate().unwrap();
    }

    #[test]
    fn procedures_and_calls() {
        let p = c("DECLARE X FIXED; P: PROCEDURE; X = X + 1; END; X = 0; CALL P; CALL P;");
        let calls = p
            .func
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| o.sem == mcc_machine::Semantic::Call)
            .count();
        assert_eq!(calls, 2);
    }

    #[test]
    fn operators_are_inlined() {
        let p = c("DECLARE X FIXED; DECLARE Y FIXED; \
                   DOUBLE: OPERATOR ACCEPTS (A) RETURNS (B); B = A + A; END; \
                   X = 3; Y = DOUBLE(X);");
        // No Call op: inlined.
        assert!(p
            .func
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .all(|o| o.sem != mcc_machine::Semantic::Call));
    }

    #[test]
    fn microop_hint_recorded_but_inlined() {
        let p = c("DECLARE X FIXED; \
                   BUMP: OPERATOR ACCEPTS (A) RETURNS (B); MICROOP BUMP 3 0; B = A + 1; END; \
                   X = BUMP(X);");
        assert_eq!(p.hints, vec!["BUMP".to_string()]);
    }

    #[test]
    fn paper_stack_type_compiles() {
        // The §2.2.2 extension-statement example, our surface syntax.
        let src = "
TYPE STACK
  DECLARE STK(16) FIXED;
  DECLARE STKPTR FIXED;
  INITIALLY DO; STKPTR = 0; END;
  PUSH: OPERATION ACCEPTS (VALUE);
    IF STKPTR = 16 THEN ERROR;
    ELSE DO; STKPTR = STKPTR + 1; STK(STKPTR) = VALUE; END;
  END;
  POP: OPERATION RETURNS (VALUE);
    IF STKPTR = 0 THEN ERROR;
    ELSE DO; VALUE = STK(STKPTR); STKPTR = STKPTR - 1; END;
  END;
ENDTYPE;
DECLARE ADDRESS_STK STACK;
DECLARE X FIXED;
DECLARE Y FIXED;
X = 42;
PUSH(ADDRESS_STK, X);
Y = POP(ADDRESS_STK);
";
        let p = c(src);
        p.func.validate().unwrap();
        assert!(p.globals.contains_key("ADDRESS_STK.STKPTR"));
        assert!(p.arrays.contains_key("ADDRESS_STK.STK"));
    }

    #[test]
    fn multiply_expands_to_loop() {
        let p = c("DECLARE X FIXED; DECLARE Y FIXED; DECLARE Z FIXED; \
                   X = 6; Y = 7; Z = X * Y;");
        // A loop appeared: several blocks.
        assert!(p.func.blocks.len() >= 5);
        p.func.validate().unwrap();
    }

    #[test]
    fn divide_expands_with_zero_check() {
        let p = c("DECLARE X FIXED; DECLARE Y FIXED; DECLARE Z FIXED; \
                   X = 42; Y = 6; Z = X / Y;");
        assert!(p.func.blocks.len() >= 8);
        p.func.validate().unwrap();
    }

    #[test]
    fn error_statement_sets_flag_and_halts() {
        let p = c("DECLARE X FIXED; ERROR; X = 1;");
        p.func.validate().unwrap();
    }

    #[test]
    fn field_encapsulation_outside_type_fails() {
        // STKPTR is not visible outside the operations.
        let r = compile(
            "TYPE T DECLARE F FIXED; ENDTYPE; DECLARE I T; DECLARE X FIXED; X = F;",
        );
        assert!(r.is_err());
    }

    #[test]
    fn undefined_label_reported() {
        let r = compile("DECLARE X FIXED; GOTO NOWHERE;");
        assert!(r.unwrap_err().message.contains("never defined"));
    }

    #[test]
    fn unary_and_shift_forms() {
        let p = c("DECLARE X FIXED; DECLARE Y FIXED; X = -Y; Y = NOT X; X = Y SHL 3;");
        assert_eq!(p.func.op_count(), 1 + 3);
    }
}
