//! EMPL lexer, AST and parser.
//!
//! EMPL is PL/I-flavoured: uppercase-insensitive keywords, `/* … */`
//! comments, statements terminated by `;`, `DO; … END;` groups.

use mcc_lang::{parse_int, Cursor, DepthGuard, Diagnostic, FrontendLimits, Span, TokenBudget};

// ----------------------------------------------------------------- tokens --

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Num(u64),
    Sym(String),
    Eof,
}

pub struct Lexer<'a> {
    c: Cursor<'a>,
    pub tok: Tok,
    pub span: Span,
    /// Deliberately *not* part of [`Lexer::clone_state`]: the budget only
    /// ever decrements, so lookahead restores double-count a few tokens but
    /// termination stays guaranteed globally.
    budget: TokenBudget,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str, limits: &FrontendLimits) -> Result<Self, Diagnostic> {
        let mut l = Lexer {
            c: Cursor::new(src),
            tok: Tok::Eof,
            span: Span::default(),
            budget: TokenBudget::new(limits),
        };
        l.advance()?;
        Ok(l)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            self.c.skip_ws();
            if self.c.eat_str("/*") {
                let start = self.c.pos();
                loop {
                    if self.c.at_end() {
                        return Err(Diagnostic::new(
                            "unterminated comment",
                            Span::new(start, self.c.pos()),
                        ));
                    }
                    if self.c.eat_str("*/") {
                        break;
                    }
                    self.c.bump();
                }
            } else {
                return Ok(());
            }
        }
    }

    pub fn advance(&mut self) -> Result<(), Diagnostic> {
        self.skip_trivia()?;
        let start = self.c.pos();
        // Ticking on Eof too makes the budget a backstop against any parser
        // loop that fails to notice end-of-input.
        self.budget.tick(Span::new(start, start))?;
        let tok = match self.c.peek() {
            None => Tok::Eof,
            Some(ch) if ch.is_alphabetic() || ch == '_' => {
                let w = self
                    .c
                    .take_while(|c| c.is_alphanumeric() || c == '_')
                    .to_string();
                Tok::Ident(w.to_ascii_uppercase())
            }
            Some(ch) if ch.is_ascii_digit() => {
                let w = self.c.take_while(|c| c.is_alphanumeric());
                match parse_int(w) {
                    Some(v) => Tok::Num(v),
                    None => {
                        return Err(Diagnostic::new(
                            format!("bad number `{w}`"),
                            Span::new(start, self.c.pos()),
                        ))
                    }
                }
            }
            Some(_) => {
                let mut sym = None;
                for s in ["<>", "<=", ">="] {
                    if self.c.eat_str(s) {
                        sym = Some(s.to_string());
                        break;
                    }
                }
                let s = match sym {
                    Some(s) => s,
                    None => self.c.bump().expect("peeked").to_string(),
                };
                Tok::Sym(s)
            }
        };
        self.span = Span::new(start, self.c.pos());
        self.tok = tok;
        Ok(())
    }
}

// -------------------------------------------------------------------- AST --

/// A simple operand: variable or number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// A named variable (or formal parameter).
    Var(String),
    /// A literal.
    Num(u64),
}

/// A right-hand side — EMPL expressions contain at most one operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// A bare operand.
    Atom(Atom),
    /// `a <op> b` with `op` ∈ `+ - * / & | XOR`.
    Bin(String, Atom, Atom),
    /// `-a`, `NOT a`.
    Un(String, Atom),
    /// `a SHL n` etc.
    Shift(String, Atom, u64),
    /// `ARR(i)` — array element read.
    ArrGet(String, Atom),
    /// `OPNAME(args…)` — user operator invocation.
    OpCall(String, Vec<Atom>),
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Lhs {
    /// A scalar variable.
    Var(String),
    /// `ARR(i)`.
    Arr(String, Atom),
}

/// A comparison `a relop b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Left operand.
    pub a: Atom,
    /// `= <> < <= > >=`.
    pub rel: String,
    /// Right operand.
    pub b: Atom,
}

/// An EMPL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = rhs;`
    Assign(Lhs, Rhs),
    /// `IF c THEN s; [ELSE s;]`
    If(Cond, Box<Stmt>, Option<Box<Stmt>>),
    /// `WHILE c DO; … END;`
    While(Cond, Vec<Item>),
    /// `DO; … END;`
    Do(Vec<Item>),
    /// `GOTO label;`
    Goto(String),
    /// `CALL proc;` or an operation invocation statement `P(args);`
    Call(String, Vec<Atom>),
    /// `RETURN;`
    Return,
    /// `ERROR;` — abort with the error flag set.
    Error,
    /// `;`
    Empty,
}

/// A labelled or plain statement in a statement list.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `label:` prefix.
    Label(String),
    /// The statement.
    Stmt(Stmt),
}

/// A user operator / operation declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorDef {
    /// Name.
    pub name: String,
    /// `ACCEPTS (…)` formals.
    pub accepts: Vec<String>,
    /// `RETURNS (…)` formal, if any.
    pub returns: Option<String>,
    /// `MICROOP name …;` hardware hint, if any.
    pub hint: Option<String>,
    /// Body statements.
    pub body: Vec<Item>,
}

/// A field of a TYPE declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// `DECLARE F FIXED;`
    Scalar(String),
    /// `DECLARE F(n) FIXED;`
    Array(String, u64),
}

/// A `TYPE … ENDTYPE` extension statement (the SIMULA-class analogue).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// Instance fields.
    pub fields: Vec<Field>,
    /// `INITIALLY DO; … END;` body.
    pub initially: Vec<Item>,
    /// Operations declared inside the type.
    pub operations: Vec<OperatorDef>,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `DECLARE X FIXED;`
    Scalar(String),
    /// `DECLARE A(n) FIXED;`
    Array(String, u64),
    /// `DECLARE S T;` — instance of a user type.
    Instance(String, String),
}

/// A `name: PROCEDURE; … END;` declaration (parameterless, per §2.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDef {
    /// Name.
    pub name: String,
    /// Body.
    pub body: Vec<Item>,
}

/// A whole EMPL compilation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Global declarations, in order.
    pub decls: Vec<Decl>,
    /// Type definitions.
    pub types: Vec<TypeDef>,
    /// Free-standing operators.
    pub operators: Vec<OperatorDef>,
    /// Procedures.
    pub procs: Vec<ProcDef>,
    /// The main program: top-level statements in order.
    pub main: Vec<Item>,
}

// ------------------------------------------------------------------ parser --

pub struct Parser<'a> {
    pub lx: Lexer<'a>,
    /// `NAME :` declaration header discovered by lookahead in `module()`,
    /// consumed by the next `stmt_item`.
    pending_decl: Option<String>,
    /// One guard shared by `stmt` (IF-THEN chains) and
    /// `stmt_list_until_end` (DO/WHILE groups, nested procedure bodies):
    /// what matters is the cumulative native stack, not either path alone.
    depth: DepthGuard,
}

impl<'a> Parser<'a> {
    pub fn new(src: &'a str, limits: &FrontendLimits) -> Result<Self, Diagnostic> {
        Ok(Parser {
            lx: Lexer::new(src, limits)?,
            pending_decl: None,
            depth: DepthGuard::new(limits),
        })
    }

    fn diag(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(msg, self.lx.span)
    }

    fn kw(&mut self, w: &str) -> Result<bool, Diagnostic> {
        if matches!(&self.lx.tok, Tok::Ident(x) if x == w) {
            self.lx.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn peek_kw(&self, w: &str) -> bool {
        matches!(&self.lx.tok, Tok::Ident(x) if x == w)
    }

    fn expect_kw(&mut self, w: &str) -> Result<(), Diagnostic> {
        if self.kw(w)? {
            Ok(())
        } else {
            Err(self.diag(format!("expected `{w}`")))
        }
    }

    fn sym(&mut self, s: &str) -> Result<bool, Diagnostic> {
        if matches!(&self.lx.tok, Tok::Sym(x) if x == s) {
            self.lx.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), Diagnostic> {
        if self.sym(s)? {
            Ok(())
        } else {
            Err(self.diag(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Result<String, Diagnostic> {
        match &self.lx.tok {
            Tok::Ident(w) => {
                let w = w.clone();
                self.lx.advance()?;
                Ok(w)
            }
            _ => Err(self.diag("expected identifier")),
        }
    }

    fn atom(&mut self) -> Result<Atom, Diagnostic> {
        match self.lx.tok.clone() {
            Tok::Num(v) => {
                self.lx.advance()?;
                Ok(Atom::Num(v))
            }
            Tok::Ident(w) => {
                self.lx.advance()?;
                Ok(Atom::Var(w))
            }
            _ => Err(self.diag("expected variable or number")),
        }
    }

    /// Parses the whole module.
    pub fn module(&mut self) -> Result<Module, Diagnostic> {
        let mut m = Module::default();
        loop {
            if matches!(self.lx.tok, Tok::Eof) {
                break;
            }
            if self.kw("DECLARE")? {
                self.declare(&mut m.decls)?;
                continue;
            }
            if self.kw("TYPE")? {
                m.types.push(self.type_def()?);
                continue;
            }
            // `name: PROCEDURE;` / `name: OPERATOR …` / `label:` / stmt
            if let Tok::Ident(w) = self.lx.tok.clone() {
                if self.is_decl_header(&w)? {
                    // consumed `name :` and the keyword
                    continue;
                }
            }
            // Plain statement (possibly labelled — handled inside).
            let items = self.stmt_item(&mut m)?;
            m.main.extend(items);
        }
        Ok(m)
    }

    /// If the input starts `NAME : PROCEDURE|OPERATOR|OPERATION`, parses
    /// the declaration into the module (stored via the pending slot) and
    /// returns true. This needs two tokens of lookahead, done by cloning
    /// the lexer.
    fn is_decl_header(&mut self, _name: &str) -> Result<bool, Diagnostic> {
        // Cheap lookahead: clone lexer state.
        let save = self.lx.clone_state();
        let name = match self.ident() {
            Ok(n) => n,
            Err(_) => {
                self.lx.restore(save);
                return Ok(false);
            }
        };
        if !self.sym(":")? {
            self.lx.restore(save);
            return Ok(false);
        }
        if self.peek_kw("PROCEDURE") || self.peek_kw("OPERATOR") || self.peek_kw("OPERATION") {
            self.pending_decl = Some(name);
            Ok(true)
        } else {
            self.lx.restore(save);
            Ok(false)
        }
    }

    fn declare(&mut self, decls: &mut Vec<Decl>) -> Result<(), Diagnostic> {
        loop {
            let name = self.ident()?;
            if self.sym("(")? {
                let n = match self.lx.tok {
                    Tok::Num(v) => v,
                    _ => return Err(self.diag("expected array size")),
                };
                self.lx.advance()?;
                self.expect_sym(")")?;
                self.expect_kw("FIXED")?;
                decls.push(Decl::Array(name, n));
            } else if self.kw("FIXED")? {
                decls.push(Decl::Scalar(name));
            } else {
                // Instance of a user type.
                let tname = self.ident()?;
                decls.push(Decl::Instance(name, tname));
            }
            if self.sym(",")? {
                continue;
            }
            self.expect_sym(";")?;
            return Ok(());
        }
    }

    fn type_def(&mut self) -> Result<TypeDef, Diagnostic> {
        let name = self.ident()?;
        let mut t = TypeDef {
            name,
            fields: Vec::new(),
            initially: Vec::new(),
            operations: Vec::new(),
        };
        loop {
            if self.kw("ENDTYPE")? {
                let _ = self.sym(";")?;
                return Ok(t);
            }
            if self.kw("DECLARE")? {
                let mut ds = Vec::new();
                self.declare(&mut ds)?;
                for d in ds {
                    match d {
                        Decl::Scalar(n) => t.fields.push(Field::Scalar(n)),
                        Decl::Array(n, k) => t.fields.push(Field::Array(n, k)),
                        Decl::Instance(_, _) => {
                            return Err(self.diag("nested type instances not supported"))
                        }
                    }
                }
                continue;
            }
            if self.kw("INITIALLY")? {
                t.initially = self.do_group_items()?;
                let _ = self.sym(";")?;
                continue;
            }
            // `NAME: OPERATION …`
            let opname = self.ident()?;
            self.expect_sym(":")?;
            if !(self.kw("OPERATION")? || self.kw("OPERATOR")?) {
                return Err(self.diag("expected OPERATION"));
            }
            t.operations.push(self.operator_tail(opname)?);
        }
    }

    /// Parses the remainder of an operator/operation/procedure after
    /// `NAME : KEYWORD` (with the keyword for procedures vs operators
    /// distinguished by the caller).
    fn operator_tail(&mut self, name: String) -> Result<OperatorDef, Diagnostic> {
        let mut def = OperatorDef {
            name,
            accepts: Vec::new(),
            returns: None,
            hint: None,
            body: Vec::new(),
        };
        if self.kw("ACCEPTS")? {
            self.expect_sym("(")?;
            loop {
                def.accepts.push(self.ident()?);
                if !self.sym(",")? {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        if self.kw("RETURNS")? {
            self.expect_sym("(")?;
            def.returns = Some(self.ident()?);
            self.expect_sym(")")?;
        }
        let _ = self.sym(";")?;
        if self.kw("MICROOP")? {
            let h = self.ident()?;
            // Optional numeric control-word parameters, skipped.
            while matches!(self.lx.tok, Tok::Num(_)) {
                self.lx.advance()?;
            }
            self.expect_sym(";")?;
            def.hint = Some(h);
        }
        def.body = self.stmt_list_until_end()?;
        let _ = self.sym(";")?;
        Ok(def)
    }

    /// Parses statements up to a closing `END`.
    fn stmt_list_until_end(&mut self) -> Result<Vec<Item>, Diagnostic> {
        self.depth.enter(self.lx.span)?;
        let r = self.stmt_list_until_end_inner();
        self.depth.leave();
        r
    }

    fn stmt_list_until_end_inner(&mut self) -> Result<Vec<Item>, Diagnostic> {
        let mut items = Vec::new();
        let mut dummy = Module::default();
        loop {
            if self.kw("END")? {
                return Ok(items);
            }
            if self.lx.tok == Tok::Eof {
                return Err(self.diag("missing END"));
            }
            items.extend(self.stmt_item(&mut dummy)?);
        }
    }

    /// `DO; … END` group.
    fn do_group_items(&mut self) -> Result<Vec<Item>, Diagnostic> {
        self.expect_kw("DO")?;
        self.expect_sym(";")?;
        self.stmt_list_until_end()
    }

    /// One statement (possibly preceded by labels), appending procedure
    /// and operator declarations encountered to `module`.
    fn stmt_item(&mut self, module: &mut Module) -> Result<Vec<Item>, Diagnostic> {
        let mut items = Vec::new();
        // Pending declaration from lookahead in `module()`?
        if let Some(name) = self.pending_decl.take() {
            if self.kw("PROCEDURE")? {
                let _ = self.sym(";")?;
                let body = self.stmt_list_until_end()?;
                let _ = self.sym(";")?;
                module.procs.push(ProcDef { name, body });
                return Ok(items);
            }
            if self.kw("OPERATOR")? || self.kw("OPERATION")? {
                module.operators.push(self.operator_tail(name)?);
                return Ok(items);
            }
            unreachable!("lookahead guaranteed a declaration keyword");
        }
        // Labels: IDENT ':' not followed by PROCEDURE/OPERATOR.
        loop {
            let save = self.lx.clone_state();
            if let Tok::Ident(w) = self.lx.tok.clone() {
                self.lx.advance()?;
                if self.sym(":")? {
                    if self.peek_kw("PROCEDURE") {
                        self.lx.advance()?;
                        let _ = self.sym(";")?;
                        let body = self.stmt_list_until_end()?;
                        let _ = self.sym(";")?;
                        module.procs.push(ProcDef { name: w, body });
                        return Ok(items);
                    }
                    if self.peek_kw("OPERATOR") || self.peek_kw("OPERATION") {
                        self.lx.advance()?;
                        module.operators.push(self.operator_tail(w)?);
                        return Ok(items);
                    }
                    items.push(Item::Label(w));
                    continue;
                }
            }
            self.lx.restore(save);
            break;
        }
        items.push(Item::Stmt(self.stmt()?));
        Ok(items)
    }

    fn cond(&mut self) -> Result<Cond, Diagnostic> {
        let a = self.atom()?;
        let rel = match &self.lx.tok {
            Tok::Sym(s) if ["=", "<>", "<", "<=", ">", ">="].contains(&s.as_str()) => s.clone(),
            _ => return Err(self.diag("expected relational operator")),
        };
        self.lx.advance()?;
        let b = self.atom()?;
        Ok(Cond { a, rel, b })
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        self.depth.enter(self.lx.span)?;
        let r = self.stmt_inner();
        self.depth.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, Diagnostic> {
        if self.sym(";")? {
            return Ok(Stmt::Empty);
        }
        if self.kw("DO")? {
            self.expect_sym(";")?;
            let body = self.stmt_list_until_end()?;
            let _ = self.sym(";")?;
            return Ok(Stmt::Do(body));
        }
        if self.kw("IF")? {
            let c = self.cond()?;
            self.expect_kw("THEN")?;
            let then_s = Box::new(self.stmt()?);
            let else_s = if self.kw("ELSE")? {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(c, then_s, else_s));
        }
        if self.kw("WHILE")? {
            let c = self.cond()?;
            self.expect_kw("DO")?;
            self.expect_sym(";")?;
            let body = self.stmt_list_until_end()?;
            let _ = self.sym(";")?;
            return Ok(Stmt::While(c, body));
        }
        if self.kw("GOTO")? {
            let l = self.ident()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Goto(l));
        }
        if self.kw("CALL")? {
            let p = self.ident()?;
            let mut args = Vec::new();
            if self.sym("(")? {
                loop {
                    args.push(self.atom()?);
                    if !self.sym(",")? {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            self.expect_sym(";")?;
            return Ok(Stmt::Call(p, args));
        }
        if self.kw("RETURN")? {
            self.expect_sym(";")?;
            return Ok(Stmt::Return);
        }
        if self.kw("ERROR")? {
            self.expect_sym(";")?;
            return Ok(Stmt::Error);
        }

        // Assignment or invocation: IDENT …
        let name = self.ident()?;
        if self.sym("(")? {
            // `ARR(i) = rhs;` or `OPNAME(args);`
            let first = self.atom()?;
            if self.sym(")")? {
                if self.sym("=")? {
                    let rhs = self.rhs()?;
                    self.expect_sym(";")?;
                    return Ok(Stmt::Assign(Lhs::Arr(name, first), rhs));
                }
                // Single-argument invocation statement.
                self.expect_sym(";")?;
                return Ok(Stmt::Call(name, vec![first]));
            }
            // Multi-argument invocation statement.
            let mut args = vec![first];
            while self.sym(",")? {
                args.push(self.atom()?);
            }
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(Stmt::Call(name, args));
        }
        self.expect_sym("=")?;
        let rhs = self.rhs()?;
        self.expect_sym(";")?;
        Ok(Stmt::Assign(Lhs::Var(name), rhs))
    }

    fn rhs(&mut self) -> Result<Rhs, Diagnostic> {
        // Unary forms.
        if self.sym("-")? {
            return Ok(Rhs::Un("-".into(), self.atom()?));
        }
        if self.kw("NOT")? {
            return Ok(Rhs::Un("NOT".into(), self.atom()?));
        }
        // IDENT '(' → array read or operator call.
        if let Tok::Ident(w) = self.lx.tok.clone() {
            let save = self.lx.clone_state();
            self.lx.advance()?;
            if self.sym("(")? {
                let mut args = vec![self.atom()?];
                while self.sym(",")? {
                    args.push(self.atom()?);
                }
                self.expect_sym(")")?;
                if args.len() == 1 {
                    // Disambiguated during lowering (array vs operator).
                    return Ok(Rhs::ArrGet(w, args[0].clone()));
                }
                return Ok(Rhs::OpCall(w, args));
            }
            self.lx.restore(save);
        }
        let a = self.atom()?;
        // Shift forms: `a SHL 3`.
        for sh in ["SHL", "SHR", "SAR", "ROL", "ROR"] {
            if self.kw(sh)? {
                let n = match self.lx.tok {
                    Tok::Num(v) => v,
                    _ => return Err(self.diag("expected shift amount")),
                };
                self.lx.advance()?;
                return Ok(Rhs::Shift(sh.into(), a, n));
            }
        }
        if self.kw("XOR")? {
            let b = self.atom()?;
            return Ok(Rhs::Bin("XOR".into(), a, b));
        }
        for op in ["+", "-", "*", "/", "&", "|"] {
            if self.sym(op)? {
                let b = self.atom()?;
                return Ok(Rhs::Bin(op.to_string(), a, b));
            }
        }
        Ok(Rhs::Atom(a))
    }
}

// Lookahead support: the lexer state is small enough to clone.
impl<'a> Lexer<'a> {
    pub(crate) fn clone_state(&self) -> (Cursor<'a>, Tok, Span) {
        (self.c.clone(), self.tok.clone(), self.span)
    }

    pub(crate) fn restore(&mut self, s: (Cursor<'a>, Tok, Span)) {
        self.c = s.0;
        self.tok = s.1;
        self.span = s.2;
    }
}

