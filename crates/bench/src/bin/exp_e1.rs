//! Regenerates experiment E1's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e1().print("E1: compiled vs hand-written microcode (HM-1)");
}
