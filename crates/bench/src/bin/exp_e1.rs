//! Regenerates experiment E1's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::attach_cache("exp_e1");
    mcc_bench::experiments::e1().print("E1: compiled vs hand-written microcode (HM-1)");
    mcc_cache::flush_global_stats();
}
