//! Regenerates experiment E5's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::attach_cache("exp_e5");
    mcc_bench::experiments::e5().print("E5: macrocode vs compiled microcode vs expert microcode");
    mcc_cache::flush_global_stats();
}
