//! Regenerates experiment E5's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e5().print("E5: macrocode vs compiled microcode vs expert microcode");
}
