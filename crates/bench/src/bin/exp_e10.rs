//! Regenerates experiment E10's table (see EXPERIMENTS.md).
//!
//! Runs through the supervised campaign harness (`mcc-harness`): the same
//! table `mcc campaign e10` produces, byte-identical to the direct
//! `experiments::e10()` path regardless of worker count. Set `MCC_JOBS` to
//! change the worker-pool size (default 4).

use mcc_harness::{run_campaign, HarnessConfig};

fn main() {
    mcc_bench::attach_cache("exp_e10");
    let trials = 250;
    let workers = std::env::var("MCC_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let cfg = HarnessConfig {
        campaign: "e10".into(),
        workers,
        ..HarnessConfig::default()
    };
    let journal = std::env::temp_dir().join("mcc-exp-e10.jsonl");
    let report = run_campaign(mcc_bench::campaign::e10_jobs(trials), &cfg, &journal, false)
        .expect("E10 campaign failed");
    mcc_bench::campaign::e10_table(&report.outcomes, trials)
        .print("E10: differential fuzzing robustness - findings per class, all machines");
    eprintln!("{}", report.summary());
    mcc_cache::flush_global_stats();
}
