//! Regenerates experiment E10's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e10()
        .print("E10: differential fuzzing robustness - findings per class, all machines");
}
