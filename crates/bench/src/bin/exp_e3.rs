//! Regenerates experiment E3's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::attach_cache("exp_e3");
    mcc_bench::experiments::e3().print("E3: YALLL portability - HM-1 (HP300 role) vs BX-2 (VAX role)");
    mcc_cache::flush_global_stats();
}
