//! Regenerates experiment E3's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e3().print("E3: YALLL portability - HM-1 (HP300 role) vs BX-2 (VAX role)");
}
