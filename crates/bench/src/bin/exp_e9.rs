//! Regenerates experiment E9's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e9()
        .print("E9: fault-injection dependability - raw vs parity-protected control store");
}
