//! Regenerates experiment E9's table (see EXPERIMENTS.md).
//!
//! Runs through the supervised campaign harness (`mcc-harness`): the same
//! table `mcc campaign e9` produces, byte-identical to the direct
//! `experiments::e9()` path regardless of worker count. Set `MCC_JOBS` to
//! change the worker-pool size (default 4).

use mcc_harness::{run_campaign, HarnessConfig};

fn main() {
    mcc_bench::attach_cache("exp_e9");
    let trials = 1000;
    let workers = std::env::var("MCC_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let cfg = HarnessConfig {
        campaign: "e9".into(),
        workers,
        ..HarnessConfig::default()
    };
    let journal = std::env::temp_dir().join("mcc-exp-e9.jsonl");
    let report = run_campaign(mcc_bench::campaign::e9_jobs(trials), &cfg, &journal, false)
        .expect("E9 campaign failed");
    mcc_bench::campaign::e9_table(&report.outcomes, trials)
        .print("E9: fault-injection dependability - raw vs parity-protected control store");
    eprintln!("{}", report.summary());
    mcc_cache::flush_global_stats();
}
