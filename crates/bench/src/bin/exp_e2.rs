//! Regenerates experiment E2's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::attach_cache("exp_e2");
    mcc_bench::experiments::e2().print("E2: microinstruction composition algorithms (HM-1)");
    mcc_cache::flush_global_stats();
}
