//! Regenerates experiment E2's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e2().print("E2: microinstruction composition algorithms (HM-1)");
}
