//! Regenerates experiment E4's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e4().print("E4: horizontal (HM-1) vs vertical (VM-1) microarchitecture");
}
