//! Regenerates experiment E4's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::attach_cache("exp_e4");
    mcc_bench::experiments::e4().print("E4: horizontal (HM-1) vs vertical (VM-1) microarchitecture");
    mcc_cache::flush_global_stats();
}
