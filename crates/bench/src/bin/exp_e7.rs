//! Regenerates experiment E7's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e7().print("E7: interrupt poll-point frequency (section 2.1.5)");
}
