//! Regenerates experiment E7's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::attach_cache("exp_e7");
    mcc_bench::experiments::e7().print("E7: interrupt poll-point frequency (section 2.1.5)");
    mcc_cache::flush_global_stats();
}
