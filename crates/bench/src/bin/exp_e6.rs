//! Regenerates experiment E6's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::attach_cache("exp_e6");
    mcc_bench::experiments::e6().print("E6: register budget sweep");
    mcc_bench::experiments::e6b().print("E6b: allocation policy ablation (spread vs reuse)");
    mcc_cache::flush_global_stats();
}
