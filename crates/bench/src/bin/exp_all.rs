//! Regenerates every experiment table in one run.
fn main() {
    use mcc_bench::experiments as ex;
    ex::e1().print("E1: compiled vs hand-written microcode (HM-1)");
    ex::e2().print("E2: microinstruction composition algorithms (HM-1)");
    ex::e3().print("E3: YALLL portability - HM-1 (HP300 role) vs BX-2 (VAX role)");
    ex::e4().print("E4: horizontal (HM-1) vs vertical (VM-1) microarchitecture");
    ex::e5().print("E5: macrocode vs compiled microcode vs expert microcode");
    ex::e6().print("E6: register budget sweep");
    ex::e6b().print("E6b: allocation policy ablation (spread vs reuse)");
    ex::e7().print("E7: interrupt poll-point frequency (section 2.1.5)");
    ex::e8().print("E8: the survey's own observations, regenerated");
    ex::e9().print("E9: fault-injection dependability - raw vs parity-protected control store");
    ex::e10().print("E10: differential fuzzing robustness - findings per class, all machines");
}
