//! Regenerates every experiment table in one run, fanning the jobs
//! across the `mcc-harness` worker pool with the content-addressed
//! compilation cache attached.
//!
//! Stdout carries *only* the tables, in catalog order, regardless of
//! worker count or cache temperature — `run_campaign` orders outcomes
//! by input job, and every byte a table can print is excluded from the
//! cache's volatile fields — so `exp_all | diff` against a warm rerun
//! must be empty (CI enforces this). Supervision and cache telemetry go
//! to stderr.
//!
//! ```text
//! exp_all [--jobs N] [--no-cache]
//!   EXP_ALL_JOBS        worker count        (default 4)
//!   EXP_ALL_E9_TRIALS   E9 trials per cell  (default 1000)
//!   EXP_ALL_E10_TRIALS  E10 trials per cell (default 250)
//!   MCC_CACHE_DIR       disk tier location  (default .mcc-cache)
//!   MCC_NO_CACHE        disable caching
//! ```

use mcc_bench::experiments as ex;
use mcc_harness::{run_campaign, HarnessConfig, Job, JobStatus};

const E9_TITLE: &str =
    "E9: fault-injection dependability - raw vs parity-protected control store";
const E10_TITLE: &str =
    "E10: differential fuzzing robustness - findings per class, all machines";

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The worker count from `EXP_ALL_JOBS`: unset falls back to the
/// default, but a malformed or zero value is a hard error — silently
/// running an expensive batch on the wrong worker count (or deadlocking
/// on an empty pool) is worse than stopping.
fn jobs_from_env(default: usize) -> usize {
    match std::env::var("EXP_ALL_JOBS") {
        Err(_) => default,
        Ok(v) => match v.parse() {
            Ok(0) | Err(_) => {
                eprintln!("exp_all: EXP_ALL_JOBS must be a positive number, got `{v}`");
                std::process::exit(2);
            }
            Ok(n) => n,
        },
    }
}

fn main() {
    let mut workers: usize = jobs_from_env(4);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" => {
                workers = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("exp_all: --jobs needs a number");
                    std::process::exit(2);
                });
                if workers == 0 {
                    eprintln!("exp_all: --jobs must be at least 1 (got 0)");
                    std::process::exit(2);
                }
            }
            "--no-cache" => mcc_cache::set_enabled(false),
            other => {
                eprintln!(
                    "exp_all: unknown argument `{other}` (usage: exp_all [--jobs N] [--no-cache])"
                );
                std::process::exit(2);
            }
        }
    }

    if mcc_cache::enabled() {
        if let Err(e) = mcc_cache::attach_default_disk() {
            eprintln!("exp_all: disk cache unavailable ({e}); continuing in-memory");
        }
    }

    let e9_trials: usize = env_num("EXP_ALL_E9_TRIALS", 1000);
    let e10_trials: u64 = env_num("EXP_ALL_E10_TRIALS", 250);

    let mut jobs: Vec<Job> = ex::GOLDEN_TABLES
        .iter()
        .map(|&(id, title, f)| Job::new(id, id, move || Ok(vec![f().render(title)])))
        .collect();
    jobs.push(Job::new("E9", "E9", move || {
        Ok(vec![ex::e9_with(e9_trials).render(E9_TITLE)])
    }));
    jobs.push(Job::new("E10", "E10", move || {
        Ok(vec![ex::e10_with(e10_trials).render(E10_TITLE)])
    }));

    let cfg = HarnessConfig::batch("exp_all", workers);
    let journal = std::env::temp_dir().join(format!("mcc-exp-all-{}.jsonl", std::process::id()));
    let report = run_campaign(jobs, &cfg, &journal, false).unwrap_or_else(|e| {
        eprintln!("exp_all: {e}");
        std::process::exit(1);
    });
    let _ = std::fs::remove_file(&journal);

    let mut failed = false;
    for o in &report.outcomes {
        if o.status == JobStatus::Ok {
            print!("{}", o.cells[0]);
        } else {
            failed = true;
            eprintln!("exp_all: {} failed: {}", o.id, o.error);
        }
    }

    mcc_cache::flush_global_stats();
    let n = mcc_cache::global().counters();
    eprintln!(
        "exp_all: {} workers; cache {} hits ({} memory + {} disk), {} misses",
        cfg.workers,
        n.hits(),
        n.hits_memory,
        n.hits_disk,
        n.misses
    );
    if failed {
        std::process::exit(1);
    }
}
