//! Regenerates experiment E8's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::experiments::e8().print("E8: the survey's own observations, regenerated");
}
