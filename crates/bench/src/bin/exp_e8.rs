//! Regenerates experiment E8's table (see EXPERIMENTS.md).
fn main() {
    mcc_bench::attach_cache("exp_e8");
    mcc_bench::experiments::e8().print("E8: the survey's own observations, regenerated");
    mcc_cache::flush_global_stats();
}
