//! Experiment campaigns as supervised harness job lists.
//!
//! E9, E10, and the fuzz campaign each decompose into independent jobs —
//! one table row (or one trial window) per job — that `mcc-harness` fans
//! over a worker pool with deadlines, retries, circuit breakers, and a
//! crash-only journal. Every job is a pure function of its parameters, so
//! the assembled table is byte-identical whether the campaign ran on one
//! worker or eight, uninterrupted or killed-and-resumed; see the harness
//! crate docs for the contract. Rows stream into the journal as they
//! finish: a campaign killed at 50% has 50% of its rows fsync'd on disk,
//! and `--resume` completes the rest without re-running any of them.

use mcc_fuzz::{fuzz_range, FuzzConfig, SourceLang};
use mcc_harness::{Job, JobOutcome, JobStatus};
use mcc_machine::machines::{bx2, hm1, vm1, wm64};
use mcc_machine::MachineDesc;

use crate::experiments::{
    e10_header, e10_notes, e10_row, e9_campaign, e9_compiler, e9_header, e9_notes, e9_row, Table,
};
use crate::kernels::suite;

/// The E10 reference machines, by constructor so job closures stay
/// `Send + Sync` without sharing a `MachineDesc`.
const MACHINES: [fn() -> MachineDesc; 4] = [hm1, vm1, bx2, wm64];

/// A degraded table row: the label plus a `-` per data column, so a
/// failed or breaker-skipped job stays *visible* in the table instead of
/// silently shrinking it.
fn degraded_row(label: String, data_columns: usize) -> Vec<String> {
    let mut row = vec![label];
    row.extend((0..data_columns).map(|_| "-".to_string()));
    row
}

/// Strips the campaign prefix (`"e9/"`, `"e10/"`) off a job id to get the
/// row label, and rejoins the remaining path segments with `/`.
fn row_label(job_id: &str) -> String {
    match job_id.split_once('/') {
        Some((_, rest)) => rest.to_string(),
        None => job_id.to_string(),
    }
}

/// Appends one note per non-Ok outcome so degradation is reported, not
/// hidden. Returns how many outcomes were degraded.
fn degradation_notes(outcomes: &[JobOutcome], notes: &mut Vec<String>) -> usize {
    let mut degraded = 0;
    for o in outcomes {
        match o.status {
            JobStatus::Ok => {}
            JobStatus::Failed => {
                degraded += 1;
                notes.push(format!(
                    "DEGRADED {}: failed after {} attempts ({}).",
                    o.id, o.attempts, o.error
                ));
            }
            JobStatus::Skipped => {
                degraded += 1;
                notes.push(format!("DEGRADED {}: skipped ({}).", o.id, o.error));
            }
        }
    }
    degraded
}

// ----------------------------------------------------------------- E9 ----

/// E9 as a job list: one job per (kernel, store mode) — 20 jobs. The
/// breaker key is the kernel, so one pathological kernel is skipped
/// instead of starving the other nineteen rows.
pub fn e9_jobs(trials: usize) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (i, k) in suite().iter().enumerate() {
        for (label, protect) in [("raw", false), ("ecc", true)] {
            let id = format!("e9/{}/{label}", k.name);
            jobs.push(Job::new(id, k.name, move || {
                let ks = suite();
                let k = &ks[i];
                let c = e9_compiler();
                let t = e9_campaign(k, &c, protect, 1980 + i as u64, trials);
                Ok(e9_row(format!("{}/{label}", k.name), &t))
            }));
        }
    }
    jobs
}

/// Assembles the E9 table from campaign outcomes (in job order).
pub fn e9_table(outcomes: &[JobOutcome], trials: usize) -> Table {
    let rows = outcomes
        .iter()
        .map(|o| match o.status {
            JobStatus::Ok => o.cells.clone(),
            _ => degraded_row(row_label(&o.id), e9_header().len() - 1),
        })
        .collect();
    let mut notes = e9_notes(trials);
    degradation_notes(outcomes, &mut notes);
    Table {
        header: e9_header(),
        rows,
        notes,
    }
}

// ----------------------------------------------------------------- E10 ---

/// E10 as a job list: one job per (machine, frontend) — 16 jobs, in the
/// same row order as [`crate::experiments::e10_with`]. The breaker key is
/// the frontend: a frontend whose jobs keep dying is the pathological
/// combination the breaker exists to contain.
pub fn e10_jobs(trials: u64) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (mi, mk) in MACHINES.iter().enumerate() {
        let name = mk().name;
        for lang in SourceLang::ALL {
            let id = format!("e10/{name}/{}", lang.name());
            jobs.push(Job::new(id, lang.name(), move || {
                let m = MACHINES[mi]();
                let report = fuzz_range(
                    &FuzzConfig {
                        seed: 1,
                        trials,
                        langs: vec![lang],
                        machine: m.clone(),
                        ..FuzzConfig::default()
                    },
                    0,
                    trials,
                );
                let r = &report.reports[0];
                Ok(e10_row(format!("{}/{}", m.name, lang.name()), &r.counts))
            }));
        }
    }
    jobs
}

/// Assembles the E10 table from campaign outcomes (in job order).
pub fn e10_table(outcomes: &[JobOutcome], trials: u64) -> Table {
    let mut total = 0u64;
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| match o.status {
            JobStatus::Ok => {
                total += o.cells[1..]
                    .iter()
                    .map(|c| c.parse::<u64>().unwrap_or(0))
                    .sum::<u64>();
                o.cells.clone()
            }
            _ => degraded_row(row_label(&o.id), e10_header().len() - 1),
        })
        .collect();
    let mut notes = e10_notes(trials, total);
    if degradation_notes(outcomes, &mut notes) > 0 {
        notes.push("Total excludes degraded rows.".to_string());
    }
    Table {
        header: e10_header(),
        rows,
        notes,
    }
}

// ----------------------------------------------------------------- fuzz --

/// Trials per fuzz job: small enough that a kill loses little work,
/// large enough that journal overhead stays negligible.
pub const FUZZ_CHUNK: u64 = 25;

/// A fuzz run as a job list: one job per (frontend, trial window), the
/// window small so progress journals frequently. Relies on
/// [`mcc_fuzz::fuzz_range`]'s per-trial RNG: chunked counts sum to
/// exactly the unchunked campaign's.
pub fn fuzz_jobs(seed: u64, trials: u64, machine_name: &str) -> Vec<Job> {
    let mk: fn() -> MachineDesc = match machine_name {
        "vm1" => vm1,
        "bx2" => bx2,
        "wm64" => wm64,
        _ => hm1,
    };
    let mut jobs = Vec::new();
    for lang in SourceLang::ALL {
        let mut lo = 0u64;
        while lo < trials {
            let hi = (lo + FUZZ_CHUNK).min(trials);
            let id = format!("fuzz/{}/{lo}..{hi}", lang.name());
            jobs.push(Job::new(id, lang.name(), move || {
                let report = fuzz_range(
                    &FuzzConfig {
                        seed,
                        trials,
                        langs: vec![lang],
                        machine: mk(),
                        ..FuzzConfig::default()
                    },
                    lo,
                    hi,
                );
                let r = &report.reports[0];
                let mut cells = vec![lang.name().to_string()];
                cells.extend(r.counts.iter().map(|n| n.to_string()));
                Ok(cells)
            }));
            lo = hi;
        }
    }
    jobs
}

/// Assembles the per-frontend findings table from fuzz-chunk outcomes.
pub fn fuzz_table(outcomes: &[JobOutcome], seed: u64, trials: u64) -> Table {
    use mcc_fuzz::FindingClass;
    let mut per_lang: Vec<(&'static str, [u64; 5])> = SourceLang::ALL
        .iter()
        .map(|l| (l.name(), [0u64; 5]))
        .collect();
    let mut totals = [0u64; 5];
    let mut notes = vec![format!(
        "{trials} trials per frontend, seed {seed}; chunked {FUZZ_CHUNK} trials per job."
    )];
    for o in outcomes {
        if o.status != JobStatus::Ok {
            continue;
        }
        if let Some((_, counts)) = per_lang.iter_mut().find(|(n, _)| *n == o.cells[0]) {
            for (i, c) in o.cells[1..].iter().enumerate() {
                let v = c.parse::<u64>().unwrap_or(0);
                counts[i] += v;
                totals[i] += v;
            }
        }
    }
    if degradation_notes(outcomes, &mut notes) > 0 {
        notes.push("Counts exclude degraded windows.".to_string());
    }
    let mut header = vec!["frontend"];
    header.extend(FindingClass::ALL.iter().map(|c| c.name()));
    let mut rows: Vec<Vec<String>> = per_lang
        .iter()
        .map(|(name, counts)| {
            let mut row = vec![name.to_string()];
            row.extend(counts.iter().map(|n| n.to_string()));
            row
        })
        .collect();
    let mut total_row = vec!["total".to_string()];
    total_row.extend(totals.iter().map(|n| n.to_string()));
    rows.push(total_row);
    Table {
        header,
        rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_harness::{run_campaign, HarnessConfig};
    use std::time::Duration;

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("mcc-bench-campaign-tests");
        std::fs::create_dir_all(&d).unwrap();
        d.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn hcfg(name: &str, workers: usize) -> HarnessConfig {
        HarnessConfig {
            campaign: name.to_string(),
            workers,
            deadline: Some(Duration::from_secs(120)),
            ..HarnessConfig::default()
        }
    }

    /// The tentpole's determinism claim in miniature: the harness path
    /// with 1 worker, the harness path with 4 workers, and the direct
    /// path all render the identical E9 table.
    #[test]
    fn e9_campaign_path_matches_direct_path_for_any_worker_count() {
        const TRIALS: usize = 10;
        let direct = crate::experiments::e9_with(TRIALS);
        let p1 = tmp("e9-w1");
        let p4 = tmp("e9-w4");
        let r1 = run_campaign(e9_jobs(TRIALS), &hcfg("e9", 1), &p1, false).unwrap();
        let r4 = run_campaign(e9_jobs(TRIALS), &hcfg("e9", 4), &p4, false).unwrap();
        let t1 = e9_table(&r1.outcomes, TRIALS);
        let t4 = e9_table(&r4.outcomes, TRIALS);
        assert_eq!(t1.rows, direct.rows);
        assert_eq!(t4.rows, direct.rows);
        assert_eq!(t1.notes, direct.notes);
        assert_eq!(t1.header, direct.header);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p4).ok();
    }

    #[test]
    fn e10_campaign_path_matches_direct_path() {
        const TRIALS: u64 = 5;
        let direct = crate::experiments::e10_with(TRIALS);
        let p = tmp("e10-w4");
        let r = run_campaign(e10_jobs(TRIALS), &hcfg("e10", 4), &p, false).unwrap();
        let t = e10_table(&r.outcomes, TRIALS);
        assert_eq!(t.rows, direct.rows);
        assert_eq!(t.notes, direct.notes);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fuzz_chunks_assemble_the_full_table() {
        let p = tmp("fuzz-w2");
        let jobs = fuzz_jobs(1, 30, "hm1");
        assert_eq!(jobs.len(), 4 * 2, "30 trials chunk into two jobs per frontend");
        let r = run_campaign(jobs, &hcfg("fuzz", 2), &p, false).unwrap();
        let t = fuzz_table(&r.outcomes, 1, 30);
        assert_eq!(t.rows.len(), 5, "four frontends plus the total row");
        let full = mcc_fuzz::fuzz(&FuzzConfig {
            seed: 1,
            trials: 30,
            ..FuzzConfig::default()
        });
        for (row, rep) in t.rows.iter().zip(full.reports.iter()) {
            assert_eq!(row[0], rep.lang.name());
            let got: Vec<u64> = row[1..].iter().map(|c| c.parse().unwrap()).collect();
            assert_eq!(got, rep.counts.to_vec(), "{} counts", rep.lang.name());
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn degraded_outcomes_render_visible_rows_and_notes() {
        let outcomes = vec![
            JobOutcome {
                id: "e9/sum/raw".into(),
                status: JobStatus::Ok,
                attempts: 1,
                error: String::new(),
                cells: vec![
                    "sum/raw".into(),
                    "1".into(),
                    "2".into(),
                    "3".into(),
                    "4".into(),
                    "5".into(),
                    "50.0%".into(),
                ],
            },
            JobOutcome {
                id: "e9/sum/ecc".into(),
                status: JobStatus::Failed,
                attempts: 3,
                error: "boom".into(),
                cells: vec![],
            },
            JobOutcome {
                id: "e9/qsort/raw".into(),
                status: JobStatus::Skipped,
                attempts: 0,
                error: "circuit breaker open for key `qsort`".into(),
                cells: vec![],
            },
        ];
        let t = e9_table(&outcomes, 10);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[1][0], "sum/ecc");
        assert!(t.rows[1][1..].iter().all(|c| c == "-"));
        assert_eq!(t.rows[2][0], "qsort/raw");
        assert!(t.notes.iter().any(|n| n.contains("DEGRADED e9/sum/ecc")));
        assert!(t
            .notes
            .iter()
            .any(|n| n.contains("DEGRADED e9/qsort/raw") && n.contains("skipped")));
    }
}
