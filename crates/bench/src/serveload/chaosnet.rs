//! The `--chaos-net` mode: a routed fleet driven through seeded
//! fault-injection proxies on **every** hop.
//!
//! Topology (all on 127.0.0.1):
//!
//! ```text
//! client ──chaos──▶ router(serve_lines) ──chaos──▶ shard b0 (mcc serve child)
//!                        │
//!                        └───────chaos──▶ shard b1 (mcc serve child)
//! ```
//!
//! Each proxy runs the full fault menu — resets (pre-write, mid-frame,
//! post-write), torn and corrupted frames, latency spikes, stalls,
//! trickle, duplication, black-holes — on a schedule that is a pure
//! function of its seed, which is itself derived from `--seed`. The
//! schedules print on stdout before anything binds a socket, so the
//! stdout transcript is seed-pure and byte-identical across `--clients`
//! and `--jobs` (the burst is deliberately a single closed-loop client:
//! the *wire* is the variable under test, not the concurrency).
//!
//! Gates (any violation is a hard error):
//! * **dropped = 0** — every request gets a response despite the faults;
//! * **double_executions = 0** — proven by a cache-counter ledger: every
//!   request is a cold compile with a unique nonce, so each execution is
//!   exactly one `cache_misses` tick on exactly one shard; Σ misses
//!   above the 200-response count means a retry or failover re-executed;
//! * **corrupt_accepted = 0** — no 200 carries a checksum that differs
//!   from the locally-pinned canon (a corrupted frame that slipped past
//!   the envelope checksum would land here);
//! * **fault_kinds = 11/11** — every fault kind injected at least once.

use super::*;
use mcc_chaosnet::{schedule_text, ChaosProxy, FaultPlan, KIND_COUNT};
use mcc_route::{Backend, RouteConfig, Router, TcpBackend};
use mcc_serve::proto;
use mcc_serve::tcp::LineHandler;
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;

/// Per-proxy seeds, derived from the master seed and the proxy's slot
/// (0 = the front proxy, 1+i = shard i's proxy) so the three schedules
/// differ but remain a pure function of `--seed`.
fn proxy_seed(master: u64, slot: u64) -> u64 {
    splitmix64(master ^ (0xc11a_05ed ^ slot.wrapping_mul(0x9E37_79B9)))
}

/// One response's outcome as seen by the front client.
struct CSample {
    entry: usize,
    code: u64,
    tier: u64,
    checksum: String,
    micros: u64,
}

pub(super) fn run(cfg: &LoadConfig) -> Result<(), String> {
    match cfg.proto {
        None => run_pass(cfg, false, None),
        Some(ProtoChoice::V1) => run_pass(cfg, false, Some("v1")),
        Some(ProtoChoice::V2) => run_pass(cfg, true, Some("v2")),
        Some(ProtoChoice::Both) => {
            run_pass(cfg, false, Some("v1"))?;
            run_pass(cfg, true, Some("v2"))
        }
    }
}

/// One full chaos-net battery over the chosen wire. `v2` opts every
/// backend hop (client→router and router→shard) into the binary
/// protocol; the proxies sniff the dialect themselves. `tag` suffixes
/// the seed-pure stdout lines (`proto=v1|v2`) — absent on a plain
/// `--chaos-net` run so its transcript stays byte-identical to the
/// pre-`--proto` format.
fn run_pass(cfg: &LoadConfig, v2: bool, tag: Option<&str>) -> Result<(), String> {
    let proto_sfx = tag.map(|t| format!(" proto={t}")).unwrap_or_default();
    let n = match cfg.backends {
        0 => 2,
        1 => return Err("--chaos-net needs --backends >= 2 (or omit for the default 2)".to_string()),
        n => n,
    };
    let entries = Arc::new(corpus());
    let total = usize::try_from(cfg.rps * cfg.duration_ms / 1000).unwrap_or(usize::MAX).max(1);
    let plan = FaultPlan::default();

    // Full-coverage pre-check, analytically (a pure function of the
    // seed): each shard proxy sees at least two frames per request the
    // ring places on it, and one full schedule cycle needs
    // `warm + 10·stride + 1` frames. Failing loudly here beats a
    // timing-dependent `fault_kinds` verdict later.
    let cycle_frames = plan.warm + (KIND_COUNT - 1) * plan.stride + 1;
    let need = cycle_frames.div_ceil(2);
    let placement = routed::placement_counts(cfg, &entries, n, total, 0);
    for (i, &c) in placement.iter().enumerate() {
        if c < need {
            return Err(format!(
                "--chaos-net: the ring places only {c} requests on b{i}, \
                 but full fault coverage needs >= {need}; raise --rps or --duration-ms"
            ));
        }
    }

    // ---- seed-pure stdout: header and every proxy's schedule ----
    println!(
        "bench-serve chaos-net seed={} rps={} duration_ms={} requests={} backends={n} \
         warm={} stride={}{proto_sfx}",
        cfg.seed, cfg.rps, cfg.duration_ms, total, plan.warm, plan.stride
    );
    print!("{}", schedule_text("front", proxy_seed(cfg.seed, 0), &plan));
    for i in 0..n {
        print!("{}", schedule_text(&format!("b{i}"), proxy_seed(cfg.seed, 1 + i as u64), &plan));
    }

    // ---- the fleet: real `mcc serve` children, fresh cache dirs ----
    let base = std::env::temp_dir().join(format!(
        "mcc-bench-chaosnet-{}{}",
        std::process::id(),
        tag.map(|t| format!("-{t}")).unwrap_or_default()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let mut fleet = routed::FleetGuard(Vec::new());
    for i in 0..n {
        fleet.0.push(routed::spawn_shard(cfg, &base.join(format!("shard{i}")))?);
    }

    // One chaos proxy per shard hop, then the router over them. Hedging
    // is off and probing effectively off: every execution path must be
    // the retry protocol, nothing may paper over a lost frame by racing
    // a second backend (that would be a double execution by design).
    let mut shard_proxies = Vec::with_capacity(n);
    for (i, s) in fleet.0.iter().enumerate() {
        let l = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("chaos-net: bind: {e}"))?;
        shard_proxies.push(
            ChaosProxy::start(l, &s.addr, proxy_seed(cfg.seed, 1 + i as u64), plan)
                .map_err(|e| format!("chaos-net: shard proxy: {e}"))?,
        );
    }
    let backends: Vec<Arc<dyn Backend>> = shard_proxies
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Arc::new(
                TcpBackend::new(&format!("b{i}"), p.addr(), cfg.seed, 3)
                    .with_wire(Some(Duration::from_millis(250)), 5)
                    .with_proto2(v2),
            ) as Arc<dyn Backend>
        })
        .collect();
    let router = Arc::new(Router::new(
        backends,
        RouteConfig {
            seed: cfg.seed,
            hedge_after: None,
            probe_interval: Duration::from_secs(100),
            call_timeout: Some(Duration::from_millis(250)),
            call_retries: 5,
            ..RouteConfig::default()
        },
    ));

    // The router served over real TCP, fronted by its own chaos proxy.
    let stop = Arc::new(AtomicBool::new(false));
    let rlistener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("chaos-net: bind router: {e}"))?;
    let raddr = rlistener.local_addr().map_err(|e| e.to_string())?.to_string();
    let serve_thread = {
        let (router, stop) = (Arc::clone(&router), Arc::clone(&stop));
        std::thread::spawn(move || {
            let _ = mcc_serve::tcp::serve_lines(router as Arc<dyn LineHandler>, rlistener, stop);
        })
    };
    let fl = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("chaos-net: bind: {e}"))?;
    let mut front_proxy = ChaosProxy::start(fl, &raddr, proxy_seed(cfg.seed, 0), plan)
        .map_err(|e| format!("chaos-net: front proxy: {e}"))?;

    // Canonical checksums from a *local* in-process server, outside the
    // chaotic wire entirely (nonces past the burst range keep its cache
    // keys distinct from the shards'). Compilation is deterministic
    // across processes, so these pin what the shards must answer.
    let local = Server::start(ServeConfig {
        workers: cfg.workers,
        queue_bound: cfg.queue_bound.max(entries.len()),
        ..ServeConfig::default()
    });
    let mut canonical = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let r = local.handle_line(&proto_line(e, total + i, "canon"), "canon");
        if r.code != 200 {
            return Err(format!(
                "chaos-net canon compile failed for {}/{}: {}",
                e.kernel,
                e.machine,
                r.to_line().trim_end()
            ));
        }
        canonical.push(Response::field_str(&r.to_line(), "checksum").unwrap_or_default());
    }
    local.drain();

    // ---- the burst: one sequential client, enveloped requests ----
    // The client is itself a `TcpBackend` — the same hardened wire code
    // the router uses — with a deadline comfortably above the router's
    // own per-hop retries, and rid = the request index, so a duplicate
    // or replayed frame anywhere downstream dedups at the shard.
    let front = TcpBackend::new("front", front_proxy.addr(), cfg.seed, 3)
        .with_wire(Some(Duration::from_millis(900)), 6)
        .with_proto2(v2);
    let start = Instant::now();
    let mut samples: Vec<CSample> = Vec::with_capacity(total);
    let mut first_errors: Vec<String> = Vec::new();
    for k in 0..total {
        let entry = pick(cfg.seed, k, entries.len());
        let bare = proto_line(&entries[entry], k, "bench");
        let frame = proto::wrap_envelope("bench", k as u64, bare.trim_end());
        let sent = Instant::now();
        match front.call(&frame, "bench") {
            Ok(resp) => samples.push(CSample {
                entry,
                code: Response::field_num(&resp, "code").unwrap_or(0),
                tier: Response::field_num(&resp, "tier").unwrap_or(0),
                checksum: Response::field_str(&resp, "checksum").unwrap_or_default(),
                micros: sent.elapsed().as_micros() as u64,
            }),
            Err(e) => {
                if first_errors.len() < 5 {
                    first_errors.push(format!("k={k}: {e}"));
                }
            }
        }
    }
    let elapsed_ms = start.elapsed().as_millis() as u64;

    // ---- the ledger: shard stats over a clean wire (no proxies) ----
    let stats_line = "{\"op\":\"stats\"}\n";
    let mut misses = 0u64;
    let mut replayed = 0u64;
    let mut shard_corrupt = 0u64;
    let mut shard_oversized = 0u64;
    for s in &fleet.0 {
        let resp = mcc_fleet::child::line_call(&s.addr, stats_line, Duration::from_secs(5))
            .map_err(|e| format!("chaos-net: shard stats: {e}"))?;
        misses += Response::field_num(&resp, "cache_misses").unwrap_or(0);
        replayed += Response::field_num(&resp, "replayed").unwrap_or(0);
        shard_corrupt += Response::field_num(&resp, "corrupt_frames").unwrap_or(0);
        shard_oversized += Response::field_num(&resp, "oversized_frames").unwrap_or(0);
    }

    // ---- verdict ----
    let responses = samples.len();
    let dropped = total - responses;
    let ok200 = samples.iter().filter(|s| s.code == 200).count();
    let mut corrupt_accepted = 0u64;
    let mut tiered: std::collections::HashMap<(usize, u64), &str> =
        std::collections::HashMap::new();
    for s in samples.iter().filter(|s| s.code == 200) {
        let expect = if s.tier == 0 {
            canonical[s.entry].as_str()
        } else {
            tiered.entry((s.entry, s.tier)).or_insert(s.checksum.as_str())
        };
        if s.checksum != expect {
            corrupt_accepted += 1;
        }
    }
    let conforms = corrupt_accepted == 0;
    // Exactly-once: every 200 is one cold compile somewhere; a miss
    // beyond that count is the same request executed twice.
    let double_executions = misses.saturating_sub(ok200 as u64);
    let mut kinds: std::collections::BTreeSet<&'static str> = std::collections::BTreeSet::new();
    let mut injected_total = 0u64;
    let mut injected_detail: Vec<String> = Vec::new();
    for (name, p) in std::iter::once(("front", &front_proxy))
        .chain(shard_proxies.iter().enumerate().map(|(i, p)| (routed_name(i), p)))
    {
        for (kind, count) in p.injected() {
            if count > 0 {
                kinds.insert(kind);
                injected_total += count;
                injected_detail.push(format!("{name}/{kind}:{count}"));
            }
        }
    }
    let covered = kinds.len() as u64;

    println!(
        "chaos-net verdict: responses={responses} dropped={dropped} \
         corrupt_accepted={corrupt_accepted} double_executions={double_executions} \
         conformance={} fault_kinds={covered}/{KIND_COUNT}{proto_sfx}",
        if conforms { "ok" } else { "VIOLATED" }
    );

    // ---- timing-dependent numbers (stderr + JSON) ----
    let mut lat: Vec<u64> = samples.iter().map(|s| s.micros).collect();
    lat.sort_unstable();
    let pct = |p: usize| lat.get(lat.len().saturating_sub(1) * p / 100).copied().unwrap_or(0);
    let (p50, p95, p99) = (pct(50), pct(95), pct(99));
    let rc = router.counters();
    let (failovers, router_corrupt) = (
        rc.failovers.load(Ordering::Relaxed),
        rc.corrupt_frames.load(Ordering::Relaxed),
    );
    eprintln!(
        "chaos-net timing: elapsed_ms={elapsed_ms} ok={ok200} replayed={replayed} \
         shard_misses={misses} shard_corrupt={shard_corrupt} shard_oversized={shard_oversized} \
         router_corrupt={router_corrupt} failovers={failovers} injected={injected_total} \
         p50us={p50} p95us={p95} p99us={p99} per_kind=[{}]",
        injected_detail.join(" ")
    );
    for e in &first_errors {
        eprintln!("chaos-net dropped: {e}");
    }

    if !cfg.json_path.is_empty() {
        // On a `--proto both` run the v2 pass's report is the one that
        // survives; the self-describing `proto` field says which it is.
        let proto_json = tag.map(|t| format!("\"proto\":\"{t}\",")).unwrap_or_default();
        let json = format!(
            "{{\"bench\":\"serve\",\"mode\":\"chaos-net\",{proto_json}\"seed\":{},\"rps\":{},\
             \"duration_ms\":{},\"backends\":{n},\"requests\":{total},\"responses\":{responses},\
             \"dropped\":{dropped},\"ok\":{ok200},\"replayed\":{replayed},\
             \"shard_misses\":{misses},\"double_executions\":{double_executions},\
             \"corrupt_accepted\":{corrupt_accepted},\"shard_corrupt\":{shard_corrupt},\
             \"router_corrupt\":{router_corrupt},\"failovers\":{failovers},\
             \"injected\":{injected_total},\"fault_kinds\":{covered},\
             \"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99},\"elapsed_ms\":{elapsed_ms},\
             \"conformance\":\"{}\"}}\n",
            cfg.seed,
            cfg.rps,
            cfg.duration_ms,
            if conforms { "ok" } else { "violated" }
        );
        std::fs::File::create(&cfg.json_path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .map_err(|e| format!("writing {}: {e}", cfg.json_path))?;
    }

    // ---- teardown (before the gates, so failures don't leak children) ----
    front_proxy.stop();
    stop.store(true, Ordering::SeqCst);
    let _ = serve_thread.join();
    router.drain();
    for p in &mut shard_proxies {
        p.stop();
    }
    drop(fleet);
    let _ = std::fs::remove_dir_all(&base);

    if dropped != 0 {
        return Err(format!("chaos-net: {dropped} requests got no response"));
    }
    if ok200 != total {
        return Err(format!("chaos-net: {} responses were not 200", total - ok200));
    }
    if !conforms {
        return Err(format!(
            "chaos-net: {corrupt_accepted} corrupt responses were accepted as 200s"
        ));
    }
    if double_executions != 0 {
        return Err(format!(
            "chaos-net: cache ledger shows {double_executions} double executions"
        ));
    }
    if covered != KIND_COUNT {
        return Err(format!("chaos-net: only {covered}/{KIND_COUNT} fault kinds were injected"));
    }
    Ok(())
}

/// Shard proxy display names, leaked once — the injected-detail lines
/// borrow them for the lifetime of the report.
fn routed_name(i: usize) -> &'static str {
    leak_name(&format!("b{i}"))
}
