//! `--chaos-soak`: the self-healing proof. A real supervised fleet
//! (router + shards as child processes under [`mcc_fleet::Fleet`]) is
//! driven through several paced bursts while a seeded kill schedule
//! SIGKILLs one shard mid-burst — including, once, a shard sabotaged to
//! crash-loop on respawn. The gates are the fleet's whole value
//! proposition:
//!
//! * **zero accepted requests dropped** across every burst, kills and
//!   all — failover plus live `leave`/`join` ring membership absorb the
//!   losses;
//! * every killed healthy shard **restarts and serves again** — its
//!   `"backend"` tag reappears on ring-owned keys after rejoin;
//! * the sabotaged shard is **quarantined after its restart budget**,
//!   not hot-looped, and no healthy shard is ever quarantined;
//! * checksums stay conformant fleet-wide.
//!
//! Determinism split, as everywhere in `bench-serve`: the schedule and
//! the verdict lines on stdout are pure functions of the seed (CI diffs
//! them across `--jobs`); latency, inflation ratios, and served counts
//! go to stderr and `BENCH_serve.json`.

use super::*;
use mcc_fleet::child::line_call;
use mcc_fleet::{Fleet, FleetConfig, ShardSpec, ShardState};
use mcc_harness::backoff::BackoffConfig;
use mcc_harness::restart::RestartPolicy;
use mcc_route::RouteConfig;

/// The sabotage shard: comes up healthy, but its respawn argv is
/// deliberately unparseable, so every post-kill life dies before the
/// banner and the restart budget drains to quarantine.
const SABOTAGE: &str = "bx";

/// One request's outcome through the fleet's router child.
struct SSample {
    entry: usize,
    code: u64,
    tier: u64,
    checksum: String,
    backend: String,
    micros: u64,
}

/// Conformance over one burst: tier-0 checksums match the warm canon,
/// and every `(entry, tier)` pair agrees with itself.
fn conformance(samples: &[SSample], canonical: &[String]) -> bool {
    let mut ok = true;
    let mut tiered: std::collections::HashMap<(usize, u64), &str> =
        std::collections::HashMap::new();
    for s in samples.iter().filter(|s| s.code == 200) {
        let expect = if s.tier == 0 {
            canonical[s.entry].as_str()
        } else {
            tiered.entry((s.entry, s.tier)).or_insert(s.checksum.as_str())
        };
        if s.checksum != expect {
            ok = false;
        }
    }
    ok
}

/// p50/p95/p99 of a burst.
fn percentiles(samples: &[SSample]) -> (u64, u64, u64) {
    let mut lat: Vec<u64> = samples.iter().map(|s| s.micros).collect();
    lat.sort_unstable();
    let pct = |p: usize| lat.get(lat.len().saturating_sub(1) * p / 100).copied().unwrap_or(0);
    (pct(50), pct(95), pct(99))
}

/// One paced burst fired at the fleet's router over TCP. `kill` is
/// `(request index, victim name)`: the client thread that draws that
/// index SIGKILLs the victim's child first — the supervisor reaps and
/// heals it while the burst is still running.
fn soak_burst(
    addr: &str,
    fleet: &Fleet,
    entries: &[Entry],
    cfg: &LoadConfig,
    total: usize,
    nonce_base: usize,
    kill: Option<(usize, &str)>,
) -> Vec<SSample> {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let mut all = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..cfg.clients.max(1) {
            let next = &next;
            let (seed, rps) = (cfg.seed, cfg.rps);
            handles.push(scope.spawn(move || {
                let mut samples = Vec::new();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= total {
                        break;
                    }
                    let due = Duration::from_micros(k as u64 * 1_000_000 / rps.max(1));
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    if let Some((at, victim)) = kill {
                        if k == at {
                            fleet.kill_shard(victim);
                        }
                    }
                    let entry = pick(seed, k, entries.len());
                    let line = proto_line(&entries[entry], nonce_base + k, &format!("soak{c}"));
                    let sent = Instant::now();
                    // A failed call leaves no sample: that request counts
                    // as dropped and fails the gate.
                    if let Ok(resp) = line_call(addr, &line, Duration::from_secs(15)) {
                        samples.push(SSample {
                            entry,
                            code: Response::field_num(&resp, "code").unwrap_or(0),
                            tier: Response::field_num(&resp, "tier").unwrap_or(0),
                            checksum: Response::field_str(&resp, "checksum").unwrap_or_default(),
                            backend: Response::field_str(&resp, "backend").unwrap_or_default(),
                            micros: sent.elapsed().as_micros() as u64,
                        });
                    }
                }
                samples
            }));
        }
        for h in handles {
            all.extend(h.join().expect("soak client thread"));
        }
    });
    all
}

/// After a healthy victim rejoins: compile a handful of keys the ring
/// places on it (analytically, over the currently joined members) and
/// count `200`s tagged with its name. Retries a few rounds — the join
/// frame lands asynchronously with the probe.
fn rejoin_served(
    addr: &str,
    fleet: &Fleet,
    entries: &[Entry],
    cfg: &LoadConfig,
    victim: &str,
    probe_base: usize,
) -> u64 {
    for _round in 0..50 {
        let members: Vec<String> = fleet
            .snapshot()
            .iter()
            .filter(|s| s.joined)
            .map(|s| s.name.clone())
            .collect();
        if !members.contains(&victim.to_string()) {
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        let ring = mcc_route::Ring::new(&members, RouteConfig::default().vnodes);
        let mut served = 0u64;
        let mut sent = 0usize;
        let mut j = 0usize;
        while sent < 8 && j < 16_384 {
            let entry = pick(cfg.seed, j, entries.len());
            let e = &entries[entry];
            let point = mcc_route::point_for(e.machine, "yalll", &nonce_src(e, probe_base + j));
            if members[ring.primary(point)] == victim {
                sent += 1;
                let line = proto_line(e, probe_base + j, "rejoin");
                if let Ok(resp) = line_call(addr, &line, Duration::from_secs(15)) {
                    if Response::field_num(&resp, "code") == Some(200)
                        && Response::field_str(&resp, "backend").as_deref() == Some(victim)
                    {
                        served += 1;
                    }
                }
            }
            j += 1;
        }
        if served > 0 {
            return served;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    0
}

/// The soak driver. See the module docs for the gates.
pub(super) fn run(cfg: &LoadConfig) -> Result<(), String> {
    if cfg.backends < 2 {
        return Err("--chaos-soak needs --backends >= 2 (someone must survive)".to_string());
    }
    if cfg.bursts < 4 {
        return Err(
            "--chaos-soak needs --bursts >= 4 (a baseline plus at least three kills)".to_string(),
        );
    }
    let entries = corpus();
    let total = usize::try_from(cfg.rps * cfg.duration_ms / 1000).unwrap_or(usize::MAX).max(8);
    let n = cfg.backends;
    let bursts = cfg.bursts;
    let healthy: Vec<String> = (0..n).map(|i| format!("b{i}")).collect();

    // ---- the seeded schedule (stdout; pure function of the seed) ----
    // The sabotage kill lands mid-sequence so healthy kills bracket it.
    let sab_burst = 1 + (bursts - 2) / 2;
    let mut schedule: Vec<(usize, String, usize)> = Vec::new();
    for b in 1..bursts {
        let kill_at =
            total / 4 + (splitmix64(cfg.seed ^ 0x50AC ^ b as u64) % (total / 2).max(1) as u64) as usize;
        let victim = if b == sab_burst {
            SABOTAGE.to_string()
        } else {
            healthy[(splitmix64(cfg.seed ^ 0xC1A05 ^ b as u64) % n as u64) as usize].clone()
        };
        schedule.push((b, victim, kill_at));
    }

    println!(
        "bench-serve chaos-soak seed={} rps={} duration_ms={} bursts={bursts} backends={n} \
         requests_per_burst={total} corpus={} shards=[{} {SABOTAGE}]",
        cfg.seed,
        cfg.rps,
        cfg.duration_ms,
        entries.len(),
        healthy.join(" ")
    );
    for (b, victim, kill_at) in &schedule {
        println!("schedule burst={b} victim={victim} kill_at={kill_at}");
    }

    // ---- the fleet ----
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let cache_root = std::env::temp_dir().join(format!("mcc-bench-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);
    let mut fcfg = FleetConfig::new(exe, cache_root.clone());
    fcfg.workers = cfg.workers;
    fcfg.queue_bound = cfg.queue_bound;
    fcfg.seed = cfg.seed;
    fcfg.hedge_ms = 0; // exactly-once attribution: no hedges
    fcfg.probe_interval_ms = 25;
    fcfg.restart = RestartPolicy {
        budget: 2,
        backoff: BackoffConfig {
            base: Duration::from_millis(50),
            cap: Duration::from_millis(250),
        },
    };
    fcfg.heartbeat_interval = Duration::from_millis(100);
    fcfg.stable_after = Duration::from_millis(500);
    fcfg.log = true;
    let budget = fcfg.restart.budget;

    let mut specs: Vec<ShardSpec> = healthy.iter().map(|name| ShardSpec::stock(name)).collect();
    specs.push(ShardSpec {
        name: SABOTAGE.to_string(),
        argv: None,
        restart_argv: Some(vec![
            "serve".to_string(),
            "--port".to_string(),
            "not-a-port".to_string(),
        ]),
    });
    let mut fleet = Fleet::start(fcfg, specs)?;
    if !fleet.wait_until(Duration::from_secs(30), |shards| {
        shards.iter().all(|s| s.state == ShardState::Up && s.joined)
    }) {
        fleet.shutdown();
        return Err("fleet never became fully up and joined".to_string());
    }
    let addr = fleet.router_addr();

    // Nonce ranges: bursts, warm-up, and rejoin probes must never share
    // a cache key, or a request stops being a genuine cold compile.
    let stride = total + entries.len() + 1;
    let warm_base = bursts * stride;
    let probe_stride = 16_384;
    let probe_base = |b: usize| warm_base + entries.len() + b * probe_stride;

    // Warm-up over the wire pins the canonical tier-0 checksums.
    let mut canonical = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let line = proto_line(e, warm_base + i, "warm");
        let resp = line_call(&addr, &line, Duration::from_secs(30))
            .map_err(|e| format!("warm-up: {e}"))?;
        if Response::field_num(&resp, "code") != Some(200) {
            fleet.shutdown();
            return Err(format!(
                "warm-up compile failed for {}/{}: {}",
                e.kernel,
                e.machine,
                resp.trim_end()
            ));
        }
        canonical.push(Response::field_str(&resp, "checksum").unwrap_or_default());
    }

    // ---- the bursts ----
    let mut burst_rows: Vec<String> = Vec::new();
    let mut baseline_p99 = 0u64;
    let mut all_ok = true;
    let mut rejoins_ok = true;
    for b in 0..bursts {
        let kill = schedule
            .iter()
            .find(|(kb, _, _)| *kb == b)
            .map(|(_, v, at)| (*at, v.as_str()));
        let start = Instant::now();
        let samples = soak_burst(&addr, &fleet, &entries, cfg, total, b * stride, kill);
        let elapsed_ms = start.elapsed().as_millis() as u64;

        let dropped = total - samples.len();
        let conforms = conformance(&samples, &canonical);
        if dropped != 0 || !conforms {
            all_ok = false;
        }
        let (p50, p95, p99) = percentiles(&samples);
        if b == 0 {
            baseline_p99 = p99.max(1);
        }
        let ok200 = samples.iter().filter(|s| s.code == 200).count() as u64;
        let shed = samples.iter().filter(|s| s.code == 503).count() as u64;

        let mut served_after = 0u64;
        let mut verdict_tail = String::new();
        match kill {
            Some((_, victim)) if victim != SABOTAGE => {
                // The healed shard must come back, rejoin the ring, and
                // serve its own keys again.
                let back = fleet.wait_until(Duration::from_secs(30), |shards| {
                    shards
                        .iter()
                        .any(|s| s.name == victim && s.state == ShardState::Up && s.joined)
                });
                served_after = if back {
                    rejoin_served(&addr, &fleet, &entries, cfg, victim, probe_base(b))
                } else {
                    0
                };
                if served_after == 0 {
                    rejoins_ok = false;
                }
                verdict_tail = format!(
                    " victim={victim} rejoined={} rejoin_served={}",
                    if back { "ok" } else { "VIOLATED" },
                    if served_after > 0 { "ok" } else { "VIOLATED" }
                );
            }
            Some((_, victim)) => {
                // The sabotaged shard must drain its budget and land in
                // quarantine — never hot-loop.
                let quarantined = fleet.wait_until(Duration::from_secs(30), |shards| {
                    shards
                        .iter()
                        .any(|s| s.name == victim && s.state == ShardState::Quarantined)
                });
                if !quarantined {
                    all_ok = false;
                }
                verdict_tail = format!(
                    " victim={victim} quarantined={}",
                    if quarantined { "ok" } else { "VIOLATED" }
                );
            }
            None => {}
        }

        println!(
            "burst={b} dropped={dropped} conformance={}{verdict_tail}",
            if conforms { "ok" } else { "VIOLATED" }
        );
        let inflation_pct = p99 * 100 / baseline_p99;
        // Served-by-backend tally: timing-dependent (failover and the
        // in-burst rejoin shift it), so stderr only.
        let mut by_backend: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for s in samples.iter().filter(|s| s.code == 200 && !s.backend.is_empty()) {
            *by_backend.entry(s.backend.as_str()).or_insert(0) += 1;
        }
        let served: Vec<String> =
            by_backend.iter().map(|(name, c)| format!("{name}:{c}")).collect();
        eprintln!(
            "soak burst={b} elapsed_ms={elapsed_ms} ok={ok200} shed503={shed} \
             p50us={p50} p95us={p95} p99us={p99} p99_inflation_pct={inflation_pct} \
             rejoin_served={served_after} served=[{}]",
            served.join(" ")
        );
        burst_rows.push(format!(
            "{{\"burst\":{b},\"victim\":\"{}\",\"kill_at\":{},\"requests\":{total},\
             \"responses\":{},\"dropped\":{dropped},\"ok\":{ok200},\"shed\":{shed},\
             \"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99},\
             \"p99_inflation_pct\":{inflation_pct},\"rejoin_served\":{served_after},\
             \"elapsed_ms\":{elapsed_ms}}}",
            kill.map_or("", |(_, v)| v),
            kill.map_or(-1i64, |(at, _)| at as i64),
            samples.len()
        ));
    }

    // ---- fleet-wide verdicts ----
    let snapshot = fleet.snapshot();
    let quarantined: Vec<String> = snapshot
        .iter()
        .filter(|s| s.state == ShardState::Quarantined)
        .map(|s| s.name.clone())
        .collect();
    let healthy_quarantined: Vec<&String> =
        quarantined.iter().filter(|q| q.as_str() != SABOTAGE).collect();
    let sab = snapshot.iter().find(|s| s.name == SABOTAGE);
    let sab_restarts = sab.map_or(0, |s| s.restarts);
    let budget_held = sab_restarts == u64::from(budget);

    println!(
        "chaos-soak verdict: dropped={} conformance={} rejoins={} quarantined=[{}] \
         healthy_quarantined={} restart_budget={}",
        if all_ok { "ok" } else { "VIOLATED" },
        if all_ok { "ok" } else { "VIOLATED" },
        if rejoins_ok { "ok" } else { "VIOLATED" },
        quarantined.join(" "),
        if healthy_quarantined.is_empty() { "none" } else { "VIOLATED" },
        if budget_held { "ok" } else { "VIOLATED" }
    );

    if !cfg.json_path.is_empty() {
        let json = format!(
            "{{\"bench\":\"serve\",\"mode\":\"chaos-soak\",\"seed\":{},\"rps\":{},\
             \"duration_ms\":{},\"clients\":{},\"backends\":{n},\"bursts\":{bursts},\
             \"restart_budget\":{budget},\"sabotage\":\"{SABOTAGE}\",\
             \"sabotage_restarts\":{sab_restarts},\"quarantined\":[{}],\
             \"bursts_detail\":[{}]}}\n",
            cfg.seed,
            cfg.rps,
            cfg.duration_ms,
            cfg.clients,
            quarantined
                .iter()
                .map(|q| format!("\"{q}\""))
                .collect::<Vec<_>>()
                .join(","),
            burst_rows.join(",")
        );
        // Nested rows put this report beyond the toolkit's flat-object
        // JSON reader, same as the scaling report.
        std::fs::File::create(&cfg.json_path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .map_err(|e| format!("writing {}: {e}", cfg.json_path))?;
    }

    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&cache_root);

    if !all_ok {
        return Err("chaos-soak: a burst dropped requests, broke conformance, or missed quarantine"
            .to_string());
    }
    if !rejoins_ok {
        return Err("chaos-soak: a killed shard never served again after rejoin".to_string());
    }
    if !healthy_quarantined.is_empty() {
        return Err(format!(
            "chaos-soak: healthy shards were quarantined: {healthy_quarantined:?}"
        ));
    }
    if quarantined.iter().all(|q| q != SABOTAGE) {
        return Err("chaos-soak: the sabotaged shard escaped quarantine".to_string());
    }
    if !budget_held {
        return Err(format!(
            "chaos-soak: sabotage restarts {sab_restarts} != budget {budget}"
        ));
    }
    Ok(())
}
