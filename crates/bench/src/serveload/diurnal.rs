//! The `--diurnal` QoS mode: one abusive tenant against a seeded day
//! curve of well-behaved tenants, gating the whole per-tenant QoS
//! surface end to end.
//!
//! Two phases, each against its own in-process [`Server`]:
//!
//! 1. **WFQ share.** Five closed-loop tenants saturate a single worker:
//!    four "free" tenants (weight 2, interactive) each demand `FREE_DEMAND`
//!    compiles, one "abuser" (weight 1, batch) floods. Weighted fair
//!    queueing gives each free tenant 4× the abuser's service rate
//!    (weight ratio 2:1 × class cost ratio 1:2), so when the free
//!    tenants finish, the abuser must have been served `FREE_DEMAND/4 ±
//!    10%` — the analytic share. A FIFO queue would instead serve the
//!    abuser in proportion to its demand, which is unbounded.
//! 2. **Diurnal isolation.** Three well-behaved interactive tenants are
//!    paced by a seeded segment curve (the "day"); the abuser floods
//!    from more threads than its queue quota admits. Gates: every
//!    well-behaved request answers `200` under the latency bound, the
//!    abuser is visibly throttled (quota `503`s), nothing is dropped,
//!    the `metrics` exposition parses as Prometheus text, and the
//!    `--trace` journal replays exactly — including after a torn tail
//!    is appended.
//!
//! stdout carries only seed-determined facts and the pass/fail verdicts
//! (byte-identical across `--clients`/`--jobs`); measured numbers go to
//! stderr and `BENCH_serve.json`.

use super::*;
use mcc_serve::{metrics, trace};
use std::sync::atomic::AtomicBool;

/// Per-free-tenant demand for the WFQ share phase.
const FREE_DEMAND: u64 = 200;
/// Free tenants in the share phase.
const FREE_TENANTS: usize = 4;
/// Well-behaved tenants in the diurnal phase.
const WB_TENANTS: usize = 3;
/// Requests per well-behaved tenant across the day curve.
const WB_DEMAND: usize = 150;
/// Segments in the day curve.
const SEGMENTS: usize = 6;
/// Base inter-arrival time at curve multiplier 1, microseconds.
const BASE_GAP_US: u64 = 8_000;
/// Abuser queue quota in the diurnal phase.
const QUOTA: usize = 4;
/// Abuser flood threads (must exceed the quota to trip it).
const ABUSER_THREADS: usize = 8;
/// Well-behaved p99 latency bound, microseconds.
const P99_BOUND_US: u64 = 500_000;

/// The wire frame for one QoS request. Distinct `k` ranges per tenant
/// keep every nonce (and so every cache key) unique within a phase.
fn qos_line(e: &Entry, k: usize, tenant: &str, class: &str) -> String {
    mcc_serve::proto::compile_line_qos(
        &format!("{tenant}-{k}"),
        e.machine,
        "yalll",
        &nonce_src(e, k),
        Some(tenant),
        Some(class),
    )
}

/// The day-curve rate multiplier for one tenant segment: 1–4×, a pure
/// function of the seed.
fn curve(seed: u64, tenant: usize, segment: usize) -> u64 {
    splitmix64(seed ^ ((tenant as u64) << 32) ^ segment as u64) % 4 + 1
}

/// Threads per tenant in the share phase. WFQ shares are defined for
/// *backlogged* tenants — with a single closed-loop thread a tenant
/// forfeits its queue position every turnaround (memoryless virtual
/// time banks no credit) and the shares degenerate toward round-robin.
/// Three threads keep ~2 requests queued per tenant throughout.
const SHARE_CONC: usize = 3;

/// Phase 1: the saturated WFQ share measurement. Returns
/// `(abuser_served_at_free_done, free_errors)`.
fn wfq_share_phase(cfg: &LoadConfig, entries: &Arc<Vec<Entry>>) -> (u64, u64) {
    let server = Arc::new(Server::start(ServeConfig {
        workers: 1,
        queue_bound: 4096,
        default_weight: 1,
        tenant_weights: (0..FREE_TENANTS).map(|t| (format!("free{t}"), 2)).collect(),
        ..ServeConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let abuser_served = Arc::new(AtomicU64::new(0));
    let free_errors = Arc::new(AtomicU64::new(0));

    let mut abusers = Vec::new();
    let abuser_next = Arc::new(AtomicUsize::new(9_000_000));
    for _ in 0..SHARE_CONC {
        let (server, stop, served) =
            (Arc::clone(&server), Arc::clone(&stop), Arc::clone(&abuser_served));
        let (entries, seed, next) = (Arc::clone(entries), cfg.seed, Arc::clone(&abuser_next));
        abusers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let k = next.fetch_add(1, Ordering::Relaxed);
                let e = &entries[pick(seed, k, entries.len())];
                let r = server.handle_line(&qos_line(e, k, "abuser", "batch"), "abuser");
                if r.code == 200 {
                    served.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    let mut frees = Vec::new();
    for t in 0..FREE_TENANTS {
        let issue = Arc::new(AtomicUsize::new(0));
        for _ in 0..SHARE_CONC {
            let (server, errors) = (Arc::clone(&server), Arc::clone(&free_errors));
            let (entries, seed, issue) = (Arc::clone(entries), cfg.seed, Arc::clone(&issue));
            frees.push(std::thread::spawn(move || {
                let tenant = format!("free{t}");
                loop {
                    let j = issue.fetch_add(1, Ordering::Relaxed);
                    if j >= FREE_DEMAND as usize {
                        break;
                    }
                    let k = (t + 1) * 1_000_000 + j;
                    let e = &entries[pick(seed, k, entries.len())];
                    let r = server.handle_line(&qos_line(e, k, &tenant, "interactive"), &tenant);
                    if r.code != 200 {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
    }
    for f in frees {
        f.join().expect("free tenant thread");
    }
    // The share is read the instant the last free tenant completes —
    // everything the abuser gets after this point is uncontended and
    // does not count against fairness.
    let measured = abuser_served.load(Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
    for a in abusers {
        a.join().expect("abuser thread");
    }
    server.drain();
    (measured, free_errors.load(Ordering::Relaxed))
}

/// One well-behaved sample in the diurnal phase.
struct WbSample {
    tenant: usize,
    code: u16,
    micros: u64,
}

/// Phase 2 outcome.
struct DiurnalOutcome {
    wb: Vec<WbSample>,
    abuser_ok: u64,
    abuser_shed: u64,
    quota_shed: u64,
    metrics_ok: bool,
    metrics_err: String,
    trace_records: u64,
    trace_expected: u64,
    trace_torn_detected: bool,
}

/// Phase 2: the paced day curve with a quota-throttled flood.
fn diurnal_phase(cfg: &LoadConfig, entries: &Arc<Vec<Entry>>) -> Result<DiurnalOutcome, String> {
    let trace_path = std::env::temp_dir().join(format!(
        "mcc-bench-diurnal-{}-{}.jsonl",
        std::process::id(),
        cfg.seed
    ));
    let server = Arc::new(Server::start(ServeConfig {
        workers: cfg.workers,
        queue_bound: 32,
        tenant_quota: QUOTA,
        trace_path: Some(trace_path.clone()),
        ..ServeConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let abuser_ok = Arc::new(AtomicU64::new(0));
    let abuser_shed = Arc::new(AtomicU64::new(0));

    let mut abusers = Vec::new();
    for a in 0..ABUSER_THREADS {
        let (server, stop) = (Arc::clone(&server), Arc::clone(&stop));
        let (ok, shed) = (Arc::clone(&abuser_ok), Arc::clone(&abuser_shed));
        let (entries, seed) = (Arc::clone(entries), cfg.seed);
        abusers.push(std::thread::spawn(move || {
            let mut k = 8_000_000 + a * 100_000;
            while !stop.load(Ordering::Relaxed) {
                let e = &entries[pick(seed, k, entries.len())];
                let r = server.handle_line(&qos_line(e, k, "noisy", "batch"), "noisy");
                match r.code {
                    200 => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    503 => {
                        shed.fetch_add(1, Ordering::Relaxed);
                        // Back off a breath instead of busy-spinning on
                        // the quota gate.
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    _ => {}
                }
                k += 1;
            }
        }));
    }

    let mut wbs = Vec::new();
    for t in 0..WB_TENANTS {
        let server = Arc::clone(&server);
        let (entries, seed) = (Arc::clone(entries), cfg.seed);
        wbs.push(std::thread::spawn(move || {
            let tenant = format!("wb{t}");
            let start = Instant::now();
            let mut due = Duration::ZERO;
            let mut samples = Vec::with_capacity(WB_DEMAND);
            for j in 0..WB_DEMAND {
                let segment = j * SEGMENTS / WB_DEMAND;
                due += Duration::from_micros(BASE_GAP_US / curve(seed, t, segment));
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                let k = (t + 1) * 1_000_000 + j;
                let e = &entries[pick(seed, k, entries.len())];
                let line = qos_line(e, k, &tenant, "interactive");
                let sent = Instant::now();
                let r = server.handle_line(&line, &tenant);
                samples.push(WbSample {
                    tenant: t,
                    code: r.code,
                    micros: sent.elapsed().as_micros() as u64,
                });
            }
            samples
        }));
    }

    let mut wb = Vec::with_capacity(WB_TENANTS * WB_DEMAND);
    for h in wbs {
        wb.extend(h.join().expect("well-behaved thread"));
    }
    stop.store(true, Ordering::Relaxed);
    for h in abusers {
        h.join().expect("abuser thread");
    }

    let stats = server
        .handle_line("{\"op\":\"stats\",\"id\":\"diurnal\"}\n", "bench")
        .to_line();
    let quota_shed = Response::field_num(&stats, "quota_shed").unwrap_or(0);

    // Metrics-shape gate: the exposition must parse as Prometheus text
    // and carry the per-tenant series the run just generated.
    let text = server.metrics_text();
    let (metrics_ok, metrics_err) = match metrics::validate(&text) {
        Ok(()) => {
            let has_tenants = text.contains("tenant=\"noisy\"") && text.contains("tenant=\"wb0\"");
            let has_hist = text.contains("mcc_serve_latency_us_bucket");
            if has_tenants && has_hist {
                (true, String::new())
            } else {
                (false, "exposition is missing expected tenant series".to_string())
            }
        }
        Err(e) => (false, e),
    };
    server.drain();
    drop(server);

    // Trace gate: the journal must replay exactly, then keep replaying
    // the durable prefix after a torn tail is appended.
    let (clean, clean_torn) = trace::replay(&trace_path).map_err(|e| format!("trace replay: {e}"))?;
    let trace_records = clean.len() as u64;
    let mut raw = std::fs::read(&trace_path).map_err(|e| format!("trace read: {e}"))?;
    raw.extend_from_slice(b"{\"seq\":999,\"client\":\"torn");
    std::fs::write(&trace_path, &raw).map_err(|e| format!("trace write: {e}"))?;
    let (after, torn) = trace::replay(&trace_path).map_err(|e| format!("trace replay: {e}"))?;
    let trace_torn_detected =
        !clean_torn && torn && after.len() as u64 == trace_records && trace_records > 0;
    let _ = std::fs::remove_file(&trace_path);

    let expected = wb.len() as u64
        + abuser_ok.load(Ordering::Relaxed)
        + abuser_shed.load(Ordering::Relaxed);
    Ok(DiurnalOutcome {
        wb,
        abuser_ok: abuser_ok.load(Ordering::Relaxed),
        abuser_shed: abuser_shed.load(Ordering::Relaxed),
        quota_shed,
        metrics_ok,
        metrics_err,
        trace_records,
        trace_expected: expected,
        trace_torn_detected,
    })
}

/// Runs both phases and prints the verdicts. `Err` when a gate fails.
pub(super) fn run(cfg: &LoadConfig) -> Result<(), String> {
    let entries = Arc::new(corpus());
    let analytic = FREE_DEMAND / 4;
    let tolerance = (analytic / 10).max(1);

    // ---- deterministic preamble (stdout) ----
    println!(
        "bench-serve diurnal seed={} free_tenants={FREE_TENANTS} free_demand={FREE_DEMAND} \
         wb_tenants={WB_TENANTS} wb_demand={WB_DEMAND} segments={SEGMENTS} quota={QUOTA}",
        cfg.seed
    );
    println!("wfq weights free=2 abuser=1; classes free=interactive abuser=batch");
    println!("wfq analytic_abuser_share={analytic} tolerance={tolerance}");
    let rows: Vec<Vec<String>> = (0..WB_TENANTS)
        .map(|t| {
            let mut row = vec![format!("wb{t}")];
            row.extend((0..SEGMENTS).map(|s| format!("{}x", curve(cfg.seed, t, s))));
            row
        })
        .collect();
    crate::print_table(&["tenant", "s0", "s1", "s2", "s3", "s4", "s5"], &rows);

    let start = Instant::now();
    let (measured, free_errors) = wfq_share_phase(cfg, &entries);
    let share_ok = free_errors == 0 && measured.abs_diff(analytic) <= tolerance;

    let out = diurnal_phase(cfg, &entries)?;
    let elapsed_ms = start.elapsed().as_millis() as u64;

    let wb_all_ok = out.wb.iter().all(|s| s.code == 200);
    let dropped = (WB_TENANTS * WB_DEMAND).saturating_sub(out.wb.len());
    let mut p99s = Vec::new();
    for t in 0..WB_TENANTS {
        let mut lat: Vec<u64> =
            out.wb.iter().filter(|s| s.tenant == t).map(|s| s.micros).collect();
        lat.sort_unstable();
        p99s.push(lat.get(lat.len().saturating_sub(1) * 99 / 100).copied().unwrap_or(0));
    }
    let p99_ok = p99s.iter().all(|&p| p < P99_BOUND_US);
    let throttled = out.abuser_shed > 0 && out.quota_shed > 0;
    let trace_ok = out.trace_torn_detected && out.trace_records == out.trace_expected;

    // ---- verdicts (stdout, deterministic in a passing run) ----
    let v = |ok: bool| if ok { "ok" } else { "VIOLATED" };
    println!(
        "verdicts wfq_share={} throttled={} p99_bound={} dropped={dropped} metrics={} trace={}",
        v(share_ok),
        v(throttled),
        v(p99_ok),
        v(out.metrics_ok),
        v(trace_ok)
    );

    // ---- measured numbers (stderr + JSON) ----
    eprintln!(
        "bench-serve diurnal timing: elapsed_ms={elapsed_ms} abuser_share={measured} \
         analytic={analytic} free_errors={free_errors} abuser_ok={} abuser_shed={} \
         quota_shed={} wb_p99_us={:?} trace_records={}/{}{}",
        out.abuser_ok,
        out.abuser_shed,
        out.quota_shed,
        p99s,
        out.trace_records,
        out.trace_expected,
        if out.metrics_err.is_empty() {
            String::new()
        } else {
            format!(" metrics_err={}", out.metrics_err)
        }
    );
    if !cfg.json_path.is_empty() {
        let json = format!(
            "{{\"bench\":\"serve-diurnal\",\"seed\":{},\"free_demand\":{FREE_DEMAND},\
             \"analytic_share\":{analytic},\"measured_share\":{measured},\"tolerance\":{tolerance},\
             \"free_errors\":{free_errors},\"wb_requests\":{},\"dropped\":{dropped},\
             \"wb_p99_us_max\":{},\"p99_bound_us\":{P99_BOUND_US},\"abuser_ok\":{},\
             \"abuser_shed\":{},\"quota_shed\":{},\"trace_records\":{},\"elapsed_ms\":{elapsed_ms},\
             \"wfq_share\":\"{}\",\"throttled\":\"{}\",\"p99_bound\":\"{}\",\"metrics\":\"{}\",\
             \"trace\":\"{}\"}}\n",
            cfg.seed,
            out.wb.len(),
            p99s.iter().copied().max().unwrap_or(0),
            out.abuser_ok,
            out.abuser_shed,
            out.quota_shed,
            out.trace_records,
            v(share_ok),
            v(throttled),
            v(p99_ok),
            v(out.metrics_ok),
            v(trace_ok)
        );
        debug_assert!(mcc_harness::json::parse_object(json.trim_end()).is_some());
        std::fs::File::create(&cfg.json_path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .map_err(|e| format!("writing {}: {e}", cfg.json_path))?;
    }

    if !share_ok {
        return Err(format!(
            "wfq share violated: abuser served {measured}, analytic {analytic} ± {tolerance} \
             (free_errors={free_errors})"
        ));
    }
    if !throttled {
        return Err("abuser was never quota-throttled".to_string());
    }
    if !p99_ok {
        return Err(format!("well-behaved p99 {p99s:?} exceeded {P99_BOUND_US}us"));
    }
    if dropped != 0 || !wb_all_ok {
        return Err(format!(
            "well-behaved tenants degraded: dropped={dropped} all_ok={wb_all_ok}"
        ));
    }
    if !out.metrics_ok {
        return Err(format!("metrics exposition invalid: {}", out.metrics_err));
    }
    if !trace_ok {
        return Err(format!(
            "trace replay violated: {}/{} records, torn_detected={}",
            out.trace_records, out.trace_expected, out.trace_torn_detected
        ));
    }
    Ok(())
}
