//! The `--proto` A/B mode: the same seeded burst fired at one real TCP
//! server over wire protocol v1 (newline-delimited lockstep lines) and
//! v2 (length-prefixed binary frames, pipelined), producing both series
//! from one process in one report.
//!
//! The determinism split matches the rest of `bench-serve`:
//!
//! * **stdout** is a pure function of `(seed, rps, duration, proto)`:
//!   the header, the scheduled mix per corpus entry with its canonical
//!   checksum, and one `proto=… responses=… dropped=… conformance=…`
//!   verdict line per series. Byte-identical across `--clients` and
//!   `--jobs`.
//! * **stderr and the JSON report** carry the timing: per-series p50/
//!   p95/p99 and throughput, under `v1_`/`v2_`-prefixed keys so one
//!   `--proto both` run yields both series side by side.
//!
//! Latency is **coordinated-omission corrected**: every request has a
//! scheduled due instant (`k / rps`), and its latency is measured from
//! that instant, not from when a backed-up client finally got around to
//! sending it. Under an oversaturating pace a lockstep client pushes
//! its backlog into visible latency, while a pipelined client keeps the
//! server's workers fed — which is exactly the difference the A/B is
//! meant to expose at a fixed `--clients`.
//!
//! Request sources are padded with comment ballast past the v2
//! compression threshold, so the v2 series exercises the compressed
//! path; comments never reach the parser, so the artifact — and hence
//! the checksum canon — is unchanged.
//!
//! With `--net-delay-us N` both series run through an in-process delay
//! relay that holds every byte burst for `N` µs each way — netem-style
//! constant link delay. Loopback is the one place a lockstep protocol
//! is nearly free (a synchronous ping-pong round trip costs only two
//! context switches); a real wire charges the full RTT per lockstep
//! request, which is the cost v2's pipeline amortizes. The relay puts
//! that term back so the A/B reflects the deployment the protocol
//! exists for, while `0` keeps the raw-loopback microbenchmark.

use super::*;
use mcc_serve::proto2;
use mcc_serve::tcp::LineHandler;
use std::collections::HashMap;
use std::io::BufRead as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;

/// Pad request sources to at least this many bytes — comfortably past
/// `proto2::COMPRESS_MIN_BYTES`, so every v2 request body compresses.
const PAD_TARGET: usize = 2048;

/// Generous clean-wire deadline: nothing in this mode injects faults,
/// so a timeout is a genuine failure, not an event to ride out.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// The nonced, padded source for nonce `k`: corpus source, the nonce
/// comment, then comment ballast up to [`PAD_TARGET`]. Each series uses
/// one nonce for its whole burst — the A/B measures the wire, so the
/// server side should be a steady-state cache-hit workload, not a
/// compile benchmark.
fn ab_src(e: &Entry, k: usize) -> String {
    let mut s = format!("{}; nonce {k}\n", e.src);
    while s.len() < PAD_TARGET {
        s.push_str("; pad pad pad pad pad pad pad pad pad pad pad pad pad pad pad\n");
    }
    s
}

/// The wire line for request `k` of a corpus entry (bare, un-enveloped:
/// both series measure the protocol, not the idempotency layer).
fn ab_line(e: &Entry, k: usize, id_prefix: &str) -> String {
    mcc_serve::proto::compile_line(
        &format!("{id_prefix}-{k}"),
        e.machine,
        "yalll",
        &ab_src(e, k),
    )
}

/// One request's outcome in one series.
struct ABSample {
    entry: usize,
    code: u64,
    tier: u64,
    checksum: String,
    /// Completion time minus the scheduled due instant, in microseconds.
    micros: u64,
}

/// The per-client in-flight window for the v2 series: enough to keep
/// the workers fed, never enough to push the admission queue into
/// shedding (total in flight stays under `workers + queue_bound`).
fn v2_window(cfg: &LoadConfig) -> u32 {
    if let Ok(v) = std::env::var("MCC_AB_WINDOW") {
        if let Ok(n) = v.parse::<u32>() {
            return n.clamp(1, proto2::SERVER_WINDOW);
        }
    }
    let budget = (cfg.workers + cfg.queue_bound) / cfg.clients.max(1) / 2;
    budget.clamp(1, proto2::SERVER_WINDOW as usize) as u32
}

/// One direction of the delay relay: read a burst, hold it for the
/// link delay, pass it on. While one burst is in the hold, later bytes
/// queue in the kernel socket buffer and ride the next read — constant
/// per-burst delay with serialization, the netem model. Exits when
/// either side closes.
fn relay(mut from: TcpStream, mut to: TcpStream, delay: Duration) {
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        match std::io::Read::read(&mut from, &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                std::thread::sleep(delay);
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
    let _ = from.shutdown(std::net::Shutdown::Read);
}

/// Starts the emulated-WAN proxy in front of `target`: every accepted
/// connection gets a backend connection and a relay thread per
/// direction, each adding the one-way delay. Returns the address
/// clients should dial. The accept loop polls the stop flag, so
/// teardown is bounded; relay threads die with their sockets.
fn start_delay_proxy(
    target: String,
    delay: Duration,
    stop: Arc<AtomicBool>,
) -> Result<(String, std::thread::JoinHandle<()>), String> {
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("proto-ab: proxy bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    let handle = std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((client, _)) => {
                    let Ok(backend) = TcpStream::connect(&target) else { continue };
                    client.set_nodelay(true).ok();
                    backend.set_nodelay(true).ok();
                    let (Ok(c2), Ok(b2)) = (client.try_clone(), backend.try_clone()) else {
                        continue;
                    };
                    std::thread::spawn(move || relay(client, backend, delay));
                    std::thread::spawn(move || relay(b2, c2, delay));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
    });
    Ok((addr, handle))
}

pub(super) fn run(cfg: &LoadConfig, choice: ProtoChoice) -> Result<(), String> {
    let entries = Arc::new(corpus());
    let total = usize::try_from(cfg.rps * cfg.duration_ms / 1000).unwrap_or(usize::MAX).max(1);
    let series = choice.series();
    // One nonce per series (so the two series never share a cache line
    // beyond the corpus itself); the canon range sits past all of them.
    let stride = total + entries.len() + 1;
    let canon_base = series.len() * stride;

    let server = Arc::new(Server::start(ServeConfig {
        workers: cfg.workers,
        queue_bound: cfg.queue_bound,
        ..ServeConfig::default()
    }));

    // Canonical tier-0 checksums, compiled in-process (off the wire).
    let mut canonical: Vec<String> = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let r = server.handle_line(&ab_line(e, canon_base + i, "warm"), "warmup");
        if r.code != 200 {
            return Err(format!(
                "proto-ab warm-up compile failed for {}/{}: {}",
                e.kernel,
                e.machine,
                r.to_line().trim_end()
            ));
        }
        canonical.push(Response::field_str(&r.to_line(), "checksum").unwrap_or_default());
    }

    // The server behind a real TCP hop — the protocol under test needs
    // an actual wire, not an in-process call.
    let stop = Arc::new(AtomicBool::new(false));
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("proto-ab: bind: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
    let serve_thread = {
        let (server, stop) = (Arc::clone(&server), Arc::clone(&stop));
        std::thread::spawn(move || {
            let _ = mcc_serve::tcp::serve_lines(server as Arc<dyn LineHandler>, listener, stop);
        })
    };
    // The emulated WAN, when asked for: clients dial the relay instead
    // of the server, and both series pay the same link delay.
    let (dial_addr, proxy_thread) = if cfg.net_delay_us > 0 {
        let (a, h) = start_delay_proxy(
            addr.clone(),
            Duration::from_micros(cfg.net_delay_us),
            Arc::clone(&stop),
        )?;
        (a, Some(h))
    } else {
        (addr.clone(), None)
    };

    // ---- seed-pure stdout: header and the scheduled mix ----
    println!(
        "bench-serve proto-ab seed={} rps={} duration_ms={} net_delay_us={} requests={} corpus={} series={}",
        cfg.seed,
        cfg.rps,
        cfg.duration_ms,
        cfg.net_delay_us,
        total,
        entries.len(),
        series.join(",")
    );
    let mut scheduled = vec![0u64; entries.len()];
    for k in 0..total {
        scheduled[pick(cfg.seed, k, entries.len())] += 1;
    }
    let rows: Vec<Vec<String>> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            vec![
                e.kernel.to_string(),
                e.machine.to_string(),
                scheduled[i].to_string(),
                canonical[i].clone(),
            ]
        })
        .collect();
    crate::print_table(&["kernel", "machine", "scheduled", "checksum"], &rows);

    // ---- the series ----
    let window = v2_window(cfg);
    let mut json_fields: Vec<String> = Vec::new();
    for (si, proto) in series.iter().enumerate() {
        let nonce_base = si * stride;
        let start = Instant::now();
        let samples = run_series(proto, &dial_addr, &entries, cfg, total, nonce_base, window)?;
        let elapsed_ms = (start.elapsed().as_millis() as u64).max(1);

        let responses = samples.len();
        let dropped = total - responses;
        let mut conforms = true;
        let mut tiered: HashMap<(usize, u64), &str> = HashMap::new();
        for s in samples.iter().filter(|s| s.code == 200) {
            let expect = if s.tier == 0 {
                canonical[s.entry].as_str()
            } else {
                tiered.entry((s.entry, s.tier)).or_insert(s.checksum.as_str())
            };
            if s.checksum != expect {
                conforms = false;
            }
        }
        println!(
            "proto={proto} responses={responses} dropped={dropped} conformance={}",
            if conforms { "ok" } else { "VIOLATED" }
        );

        let ok = samples.iter().filter(|s| s.code == 200).count() as u64;
        let mut lat: Vec<u64> = samples.iter().map(|s| s.micros).collect();
        lat.sort_unstable();
        let pct =
            |p: usize| lat.get(lat.len().saturating_sub(1) * p / 100).copied().unwrap_or(0);
        let (p50, p95, p99) = (pct(50), pct(95), pct(99));
        let throughput = responses as u64 * 1000 / elapsed_ms;
        eprintln!(
            "proto-ab timing proto={proto}: clients={} workers={} window={} elapsed_ms={elapsed_ms} \
             ok={ok} p50us={p50} p95us={p95} p99us={p99} throughput_rps={throughput}",
            cfg.clients,
            cfg.workers,
            if *proto == "v2" { window } else { 1 }
        );
        json_fields.push(format!(
            "\"{proto}_responses\":{responses},\"{proto}_ok\":{ok},\"{proto}_p50_us\":{p50},\
             \"{proto}_p95_us\":{p95},\"{proto}_p99_us\":{p99},\
             \"{proto}_throughput_rps\":{throughput},\"{proto}_elapsed_ms\":{elapsed_ms},\
             \"{proto}_conformance\":\"{}\"",
            if conforms { "ok" } else { "violated" }
        ));

        if dropped != 0 {
            return Err(format!("proto-ab {proto}: {dropped} requests got no response"));
        }
        if !conforms {
            return Err(format!("proto-ab {proto}: checksum conformance violated"));
        }
    }

    // ---- teardown, then the report ----
    stop.store(true, Ordering::SeqCst);
    if let Some(h) = proxy_thread {
        let _ = h.join();
    }
    let _ = serve_thread.join();
    server.drain();

    if !cfg.json_path.is_empty() {
        let json = format!(
            "{{\"bench\":\"serve\",\"mode\":\"proto-ab\",\"seed\":{},\"rps\":{},\
             \"duration_ms\":{},\"clients\":{},\"workers\":{},\"queue_bound\":{},\
             \"net_delay_us\":{},\"requests\":{},\"window\":{window},{}}}\n",
            cfg.seed,
            cfg.rps,
            cfg.duration_ms,
            cfg.clients,
            cfg.workers,
            cfg.queue_bound,
            cfg.net_delay_us,
            total,
            json_fields.join(",")
        );
        debug_assert!(mcc_harness::json::parse_object(json.trim_end()).is_some());
        std::fs::File::create(&cfg.json_path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .map_err(|e| format!("writing {}: {e}", cfg.json_path))?;
    }
    Ok(())
}

/// Runs one series: `clients` threads share the paced schedule, each
/// owning the request indices congruent to its slot. Returns every
/// sample or the first client's transport error — the wire is clean
/// here, so an error is a finding, not an event.
fn run_series(
    proto: &str,
    addr: &str,
    entries: &Arc<Vec<Entry>>,
    cfg: &LoadConfig,
    total: usize,
    nonce_base: usize,
    window: u32,
) -> Result<Vec<ABSample>, String> {
    let clients = cfg.clients.max(1);
    // Every request line is built before the clock starts: rendering
    // 2 KiB of comment ballast per request is expensive enough that
    // doing it inside the paced loop makes the *client* the bottleneck,
    // and the series would measure request generation, not the wire.
    let mut batches: Vec<Vec<(usize, usize, String)>> =
        (0..clients).map(|_| Vec::new()).collect();
    for k in 0..total {
        let entry = pick(cfg.seed, k, entries.len());
        batches[k % clients].push((k, entry, ab_line(&entries[entry], nonce_base, "ab")));
    }
    let start = Instant::now();
    let mut handles = Vec::new();
    for batch in batches {
        let addr = addr.to_string();
        let rps = cfg.rps;
        let v2 = proto == "v2";
        handles.push(std::thread::spawn(move || -> Result<Vec<ABSample>, String> {
            if v2 {
                run_client_v2(&addr, &batch, rps, window, start)
            } else {
                run_client_v1(&addr, &batch, rps, start)
            }
        }));
    }
    let mut samples = Vec::with_capacity(total);
    for h in handles {
        samples.extend(h.join().expect("client thread")?);
    }
    Ok(samples)
}

/// Request `k`'s scheduled due offset from the series start.
fn due_offset(k: usize, rps: u64) -> Duration {
    Duration::from_micros(k as u64 * 1_000_000 / rps.max(1))
}

/// Sleeps until `k`'s due instant (no-op if already past it).
fn pace(start: Instant, k: usize, rps: u64) {
    if let Some(wait) = due_offset(k, rps).checked_sub(start.elapsed()) {
        std::thread::sleep(wait);
    }
}

/// Latency from the due instant to now, in microseconds.
fn due_lat(start: Instant, k: usize, rps: u64) -> u64 {
    start
        .elapsed()
        .saturating_sub(due_offset(k, rps))
        .as_micros() as u64
}

/// Parses one response body into a sample.
fn sample_of(entry: usize, body: &str, micros: u64) -> ABSample {
    ABSample {
        entry,
        code: Response::field_num(body, "code").unwrap_or(0),
        tier: Response::field_num(body, "tier").unwrap_or(0),
        checksum: Response::field_str(body, "checksum").unwrap_or_default(),
        micros,
    }
}

/// The v1 client: one connection, strict lockstep — write a line, read
/// a line. Its concurrency is exactly the client count.
fn run_client_v1(
    addr: &str,
    batch: &[(usize, usize, String)],
    rps: u64,
    start: Instant,
) -> Result<Vec<ABSample>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("v1 connect: {e}"))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut w = stream.try_clone().map_err(|e| e.to_string())?;
    let mut r = std::io::BufReader::new(stream);
    let mut samples = Vec::with_capacity(batch.len());
    let mut line = String::new();
    for (k, entry, frame) in batch {
        pace(start, *k, rps);
        mcc_serve::tcp::write_frame(&mut w, frame.as_bytes())
            .map_err(|e| format!("v1 write: {e}"))?;
        line.clear();
        let n = r.read_line(&mut line).map_err(|e| format!("v1 read: {e}"))?;
        if n == 0 {
            return Err("v1: server closed mid-series".to_string());
        }
        samples.push(sample_of(*entry, line.trim_end(), due_lat(start, *k, rps)));
    }
    Ok(samples)
}

/// Absorbs one server frame into the client's bookkeeping: a response
/// is matched back to its request by rid and timestamped against that
/// request's due instant.
fn v2_absorb(
    f: &proto2::Frame,
    pending: &mut HashMap<u64, (usize, usize)>,
    samples: &mut Vec<ABSample>,
    start: Instant,
    rps: u64,
) -> Result<(), String> {
    match f.ftype {
        proto2::FrameType::Response => {
            if let Some((entry, k)) = pending.remove(&f.rid) {
                samples.push(sample_of(entry, &f.body, due_lat(start, k, rps)));
            }
            Ok(())
        }
        // A redundant hello-ack is harmless; anything else is not.
        proto2::FrameType::HelloAck => Ok(()),
        proto2::FrameType::Error => Err(format!("v2 error frame: {}", f.body)),
        other => Err(format!("v2: unexpected frame type {other:?} from the server")),
    }
}

/// The v2 client: one negotiated connection, up to `window` requests in
/// flight, responses matched back to their request by rid. Same paced
/// schedule as v1 — the pipeline depth is the only variable. One thread
/// owns both halves: after every send it flips the socket non-blocking
/// and drains whatever responses have arrived, so a response is
/// timestamped within one send interval of arrival instead of sitting
/// unread in the socket inflating its own latency — without paying a
/// reader thread's context switches on a small box.
fn run_client_v2(
    addr: &str,
    batch: &[(usize, usize, String)],
    rps: u64,
    window: u32,
    start: Instant,
) -> Result<Vec<ABSample>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("v2 connect: {e}"))?;
    let want = proto2::Caps { compress: true, window };
    let c = match proto2::Client::handshake(stream, Some(READ_TIMEOUT), &want)
        .map_err(|e| format!("v2 handshake: {e}"))?
    {
        proto2::Handshake::V2(c) => c,
        proto2::Handshake::V1Peer => {
            return Err("v2 series: the server answered as a v1 peer".to_string())
        }
    };
    let (mut tx, mut rx) = c.split();
    let window = tx.caps.window.max(1) as usize;
    // How many backlogged requests may share one write syscall; bounds
    // the stretch between response drains while behind schedule.
    let max_queue = window.min(8);
    let mut pending: HashMap<u64, (usize, usize)> = HashMap::with_capacity(window);
    let mut samples = Vec::with_capacity(batch.len());
    let mut queued = 0usize;
    for (i, (k, entry, frame)) in batch.iter().enumerate() {
        pace(start, *k, rps);
        // Window full: put the queue on the wire, then block until a
        // slot frees.
        if pending.len() >= window {
            tx.flush().map_err(|e| format!("v2 send: {e}"))?;
            queued = 0;
            while pending.len() >= window {
                let f = rx.recv().map_err(|e| format!("v2 recv: {e}"))?;
                v2_absorb(&f, &mut pending, &mut samples, start, rps)?;
            }
        }
        pending.insert(*k as u64, (*entry, *k));
        tx.queue(proto2::FrameType::Request, "", *k as u64, frame.trim_end());
        queued += 1;
        // Keep queueing while the next request is already due — a
        // backlogged burst becomes one write. On schedule, every
        // request flushes (and drains) individually, just like v1.
        let next_is_due = batch
            .get(i + 1)
            .is_some_and(|(nk, _, _)| due_offset(*nk, rps) <= start.elapsed());
        if queued < max_queue && next_is_due {
            continue;
        }
        tx.flush().map_err(|e| format!("v2 send: {e}"))?;
        queued = 0;
        // Opportunistic drain: take everything already readable, then
        // go back to pacing. The mode flip is safe — both halves live
        // on this thread, and no send happens while non-blocking.
        rx.set_nonblocking(true)?;
        while let Some(f) = rx.recv_ready().map_err(|e| format!("v2 recv: {e}"))? {
            v2_absorb(&f, &mut pending, &mut samples, start, rps)?;
        }
        rx.set_nonblocking(false)?;
    }
    // Tail: every request is sent; wait out the stragglers.
    tx.flush().map_err(|e| format!("v2 send: {e}"))?;
    while !pending.is_empty() {
        let f = rx.recv().map_err(|e| format!("v2 recv: {e}"))?;
        v2_absorb(&f, &mut pending, &mut samples, start, rps)?;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_source_exceeds_the_compression_threshold_and_keeps_the_artifact() {
        let entries = corpus();
        let e = &entries[0];
        let src = ab_src(e, 3);
        assert!(src.len() >= PAD_TARGET);
        assert!(src.len() >= proto2::COMPRESS_MIN_BYTES);
        let m = mcc_machine::machines::by_name(e.machine).unwrap();
        let c = mcc_core::Compiler::new(m);
        let a = c.compile_contained(mcc_core::SourceLang::Yalll, &e.src).unwrap();
        let b = c.compile_contained(mcc_core::SourceLang::Yalll, &src).unwrap();
        assert_eq!(
            mcc_cache::serialize_artifact(&a),
            mcc_cache::serialize_artifact(&b),
            "padding and nonce must be invisible to the artifact"
        );
    }

    #[test]
    fn window_is_clamped_to_the_admission_budget() {
        let tight = LoadConfig { clients: 8, workers: 2, queue_bound: 4, ..LoadConfig::default() };
        assert_eq!(v2_window(&tight), 1);
        let wide = LoadConfig { clients: 2, workers: 8, queue_bound: 64, ..LoadConfig::default() };
        assert_eq!(v2_window(&wide), 18);
    }

    #[test]
    fn tiny_ab_run_is_clean_on_both_series() {
        let cfg = LoadConfig {
            clients: 2,
            rps: 400,
            duration_ms: 200,
            seed: 9,
            workers: 4,
            queue_bound: 16,
            json_path: String::new(),
            proto: Some(ProtoChoice::Both),
            ..LoadConfig::default()
        };
        run(&cfg, ProtoChoice::Both).expect("tiny A/B run upholds its invariants");
    }
}
