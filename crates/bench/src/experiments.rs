//! The experiment harnesses E1–E9 (see EXPERIMENTS.md for the mapping to
//! the paper's claims). Each function returns `(header, rows, notes)` so
//! the `exp_*` binaries and EXPERIMENTS.md share one source of numbers.

use mcc_compact::{compact, Algorithm};
use mcc_core::{Artifact, Compiler, CompilerOptions, SourceLang};
use mcc_machine::machines::{bx2, hm1, vm1, wm64};
use mcc_machine::{ConflictModel, MachineDesc};
use mcc_mir::select::{select_op, SelectedOp};
use mcc_sim::{SimOptions, Simulator};

use crate::handwritten;
use crate::kernels::{suite, Lang};
use crate::macrointerp;

/// A rendered experiment: header, rows, free-text notes.
pub struct Table {
    /// Column names.
    pub header: Vec<&'static str>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
    /// Interpretation notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Renders the table with notes to a string — exactly the bytes
    /// [`print`](Self::print) writes, so the golden conformance suite
    /// and the parallel `exp_all` driver share one formatter.
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "\n== {title} ==\n");
        out.push_str(&crate::render_table(&self.header, &self.rows));
        for n in &self.notes {
            let _ = writeln!(out, "  {n}");
        }
        out
    }

    /// Prints the table with notes.
    pub fn print(&self, title: &str) {
        print!("{}", self.render(title));
    }
}

/// Compiles through the content-addressed cache (disk-persisted when a
/// tier is attached), panicking on pipeline errors like the experiments
/// always have.
fn cached(c: &Compiler, lang: SourceLang, src: &str) -> Artifact {
    mcc_cache::compile_cached(c, lang, src, mcc_cache::Persist::Disk).unwrap()
}

/// One catalog entry: `(id, title, builder)`.
pub type GoldenTable = (&'static str, &'static str, fn() -> Table);

/// The deterministic experiment catalog: `(id, title, builder)` for
/// every table whose cells are a pure function of the toolkit — the
/// tables `exp_all` prints first and `tests/golden.rs` pins
/// byte-for-byte. E9/E10 are excluded: their trial counts are
/// runtime-tunable campaign parameters.
pub const GOLDEN_TABLES: [GoldenTable; 9] = [
    ("E1", "E1: compiled vs hand-written microcode (HM-1)", e1),
    ("E2", "E2: microinstruction composition algorithms (HM-1)", e2),
    (
        "E3",
        "E3: YALLL portability - HM-1 (HP300 role) vs BX-2 (VAX role)",
        e3,
    ),
    (
        "E4",
        "E4: horizontal (HM-1) vs vertical (VM-1) microarchitecture",
        e4,
    ),
    (
        "E5",
        "E5: macrocode vs compiled microcode vs expert microcode",
        e5,
    ),
    ("E6", "E6: register budget sweep", e6),
    ("E6b", "E6b: allocation policy ablation (spread vs reuse)", e6b),
    ("E7", "E7: interrupt poll-point frequency (section 2.1.5)", e7),
    ("E8", "E8: the survey's own observations, regenerated", e8),
];

fn pct(over: usize, base: usize) -> String {
    if base == 0 {
        "-".into()
    } else {
        format!("{:+.1}%", (over as f64 - base as f64) / base as f64 * 100.0)
    }
}

// ----------------------------------------------------------------- E1 ----

/// Runs a hand-written program with inputs, returning (instrs, cycles).
fn run_hand(
    m: &MachineDesc,
    p: &mcc_machine::MicroProgram,
    setup: impl FnOnce(&mut Simulator),
    check: impl FnOnce(&Simulator),
) -> (usize, u64) {
    let mut sim = Simulator::new(m.clone(), p);
    setup(&mut sim);
    let stats = sim.run(&SimOptions::default()).unwrap();
    check(&sim);
    (p.instr_count(), stats.cycles)
}

/// E1: compiled code size vs hand-written microcode (the MPGL ≤15% claim,
/// adjusted by what a 1970s heuristic compiler actually achieves).
pub fn e1() -> Table {
    let m = hm1();
    let c = Compiler::new(m.clone());
    let r = |n: &str| m.resolve_reg_name(n).unwrap();

    // (kernel name, hand program+run, compiled kernel)
    let mut rows = Vec::new();
    let ks = suite();
    let get = |name: &str| ks.iter().find(|k| k.name == name).unwrap();

    // popcount
    {
        let hand = handwritten::popcount(&m);
        let (hs, hc) = run_hand(
            &m,
            &hand,
            |s| s.set_reg(r("R0"), 0xB7),
            |s| assert_eq!(s.reg(r("R1")), 0xB7u64.count_ones() as u64),
        );
        let (art, cc) = get("popcount").run(&c);
        // The compiled kernel loads its constants itself (2 ldi): charge
        // the hand version the same two cycles/instructions for fairness.
        rows.push(row_e1("popcount", hs + 2, hc + 2, art.stats.micro_instrs, cc));
    }
    // gcd
    {
        let hand = handwritten::gcd(&m);
        let (hs, hc) = run_hand(
            &m,
            &hand,
            |s| {
                s.set_reg(r("R0"), 252);
                s.set_reg(r("R1"), 105);
            },
            |s| assert_eq!(s.reg(r("R0")), 21),
        );
        let (art, cc) = get("gcd").run(&c);
        rows.push(row_e1("gcd", hs + 2, hc + 2, art.stats.micro_instrs, cc));
    }
    // memcpy16 (both versions load their own constants)
    {
        let hand = handwritten::memcpy16(&m);
        let (hs, hc) = run_hand(
            &m,
            &hand,
            |s| {
                for i in 0..16u64 {
                    s.set_mem(0x100 + i, (i * 7 + 3) & 0xFFFF);
                }
            },
            |s| {
                for i in 0..16u64 {
                    assert_eq!(s.mem(0x80 + i), (i * 7 + 3) & 0xFFFF);
                }
            },
        );
        let (art, cc) = get("memcpy16").run(&c);
        rows.push(row_e1("memcpy16", hs, hc, art.stats.micro_instrs, cc));
    }
    // sum8 (hand) vs a YALLL sum loop compiled.
    {
        let hand = handwritten::sum_words(&m, 0x100, 8);
        let (hs, hc) = run_hand(
            &m,
            &hand,
            |s| {
                for i in 0..8u64 {
                    s.set_mem(0x100 + i, i + 1);
                }
            },
            |s| assert_eq!(s.reg(r("R2")), 36),
        );
        let src = "\
reg ptr = R0
reg n = R1
reg acc = R2
reg t = R3
const ptr, 0x100
const n, 8
const acc, 0
loop: jump done if n = 0
    load t, ptr
    add acc, acc, t
    add ptr, ptr, 1
    sub n, n, 1
    jump loop
done: exit acc
";
        let art = cached(&c, SourceLang::Yalll, src);
        let mut sim = art.simulator();
        for i in 0..8u64 {
            sim.set_mem(0x100 + i, i + 1);
        }
        let stats = sim.run(&SimOptions::default()).unwrap();
        assert_eq!(art.read_symbol(&sim, "acc"), Some(36));
        rows.push(row_e1("sum8", hs, hc, art.stats.micro_instrs, stats.cycles));
    }

    let notes = vec![
        "hand = expert microcode (flag reuse, branch/flag overlap, 1-cycle swap);".into(),
        "compiled = default pipeline (critical-path list scheduling, fine conflicts).".into(),
        "Paper claim (MPGL, §2.2.5): compiled code ≤ 15% larger than hand-written.".into(),
    ];
    Table {
        header: vec![
            "kernel", "hand MIs", "compiled MIs", "size Δ", "hand cyc", "compiled cyc", "cyc Δ",
        ],
        rows,
        notes,
    }
}

fn row_e1(name: &str, hs: usize, hc: u64, cs: usize, cc: u64) -> Vec<String> {
    vec![
        name.into(),
        hs.to_string(),
        cs.to_string(),
        pct(cs, hs),
        hc.to_string(),
        cc.to_string(),
        pct(cc as usize, hc as usize),
    ]
}

// ----------------------------------------------------------------- E2 ----

/// Straight-line blocks for the compaction shoot-out: every block of every
/// kernel after selection, plus seeded random blocks.
fn e2_blocks(m: &MachineDesc) -> Vec<Vec<SelectedOp>> {
    let mut blocks = Vec::new();
    for k in suite() {
        // Lower through legalize+alloc, then collect selected blocks.
        let c = Compiler::new(m.clone());
        let art = k.compile(&c);
        let _ = art; // compiled only to assert the kernel is valid here
        let src = (k.source)(m);
        let f = match k.lang {
            Lang::Yalll => mcc_yalll::parse(&src, m).unwrap().func,
            Lang::Simpl => mcc_simpl::parse(&src, m).unwrap().func,
            Lang::Empl => mcc_empl::compile(&src).unwrap().func,
        };
        let mut f = f;
        mcc_mir::legalize(m, &mut f).unwrap();
        mcc_regalloc::allocate(m, &mut f, &Default::default()).unwrap();
        mcc_core::mark_dead_flags(&mut f);
        let sel = mcc_mir::select_function(m, &f).unwrap();
        for b in sel.blocks {
            if b.ops.len() >= 3 {
                blocks.push(b.ops);
            }
        }
    }
    // Seeded random DAG blocks.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1980);
    let file = m.find_file("R").unwrap();
    for _ in 0..30 {
        let len = rng.gen_range(4..12);
        let mut ops = Vec::new();
        for _ in 0..len {
            let d = rng.gen_range(0..12u16);
            let a = rng.gen_range(0..12u16);
            let b = rng.gen_range(0..12u16);
            let rr = |i| mcc_mir::Operand::Reg(mcc_machine::RegRef::new(file, i));
            let mut op = match rng.gen_range(0..5) {
                0 => mcc_mir::MirOp::mov(rr(d), rr(a)),
                1 => mcc_mir::MirOp::alu(mcc_machine::AluOp::Add, rr(d), rr(a), rr(b)),
                2 => mcc_mir::MirOp::alu(mcc_machine::AluOp::Xor, rr(d), rr(a), rr(b)),
                3 => mcc_mir::MirOp::shift(mcc_machine::ShiftOp::Shr, rr(d), rr(a), 1),
                _ => mcc_mir::MirOp::ldi(rr(d), rng.gen_range(0..0xFFFF)),
            };
            // Straight-line throwaway blocks: no one reads the flags.
            op.flags_dead = true;
            ops.push(select_op(m, &op).unwrap());
        }
        blocks.push(ops);
    }
    blocks
}

/// E2: microinstruction counts per compaction algorithm (the §2.1.4
/// algorithm family), against the exact minimum.
pub fn e2() -> Table {
    let m = hm1();
    let blocks = e2_blocks(&m);
    let total_ops: usize = blocks.iter().map(|b| b.len()).sum();

    let mut rows = Vec::new();
    let optimal: usize = blocks
        .iter()
        .map(|b| compact(&m, b, Algorithm::BranchBound, ConflictModel::Fine).len())
        .sum();
    for (algo, model, label) in [
        (Algorithm::Linear, ConflictModel::Coarse, "linear (SIMPL [18])"),
        (
            Algorithm::CriticalPath,
            ConflictModel::Coarse,
            "critical path [22]",
        ),
        (
            Algorithm::LevelPack,
            ConflictModel::Coarse,
            "level partition [3]",
        ),
        (Algorithm::Tokoro, ConflictModel::Fine, "phase-aware [21]"),
        (
            Algorithm::BranchBound,
            ConflictModel::Fine,
            "exact (minimal)",
        ),
    ] {
        let mis: usize = blocks.iter().map(|b| compact(&m, b, algo, model).len()).sum();
        let optimal_hits = blocks
            .iter()
            .filter(|b| {
                compact(&m, b, algo, model).len()
                    == compact(&m, b, Algorithm::BranchBound, ConflictModel::Fine).len()
            })
            .count();
        rows.push(vec![
            label.to_string(),
            mis.to_string(),
            format!("{:.3}", total_ops as f64 / mis as f64),
            pct(mis, optimal),
            format!("{optimal_hits}/{}", blocks.len()),
        ]);
    }
    Table {
        header: vec!["algorithm", "total MIs", "ops/MI", "vs minimal", "blocks at minimum"],
        rows,
        notes: vec![
            format!(
                "{} blocks ({} µops) from the kernel suite + seeded random DAGs, on HM-1.",
                blocks.len(),
                total_ops
            ),
            "Paper (§2.1.4): heuristics give \"a minimal or near minimal sequence\".".into(),
        ],
    }
}

// ----------------------------------------------------------------- E3 ----

/// E3: YALLL portability — identical sources, HM-1 (≈HP300) vs BX-2
/// (≈VAX-11).
pub fn e3() -> Table {
    let mut rows = Vec::new();
    let (hm, bx) = (hm1(), bx2());
    let ch = Compiler::new(hm);
    let cb = Compiler::new(bx);
    let mut tot = (0u64, 0u64);
    for k in suite().into_iter().filter(|k| k.lang == Lang::Yalll) {
        let (ah, cyh) = k.run(&ch);
        let (ab, cyb) = k.run(&cb);
        tot.0 += cyh;
        tot.1 += cyb;
        rows.push(vec![
            k.name.into(),
            ah.stats.micro_instrs.to_string(),
            ab.stats.micro_instrs.to_string(),
            cyh.to_string(),
            cyb.to_string(),
            format!("{:.2}x", cyb as f64 / cyh as f64),
        ]);
    }
    Table {
        header: vec!["kernel", "HM-1 MIs", "BX-2 MIs", "HM-1 cyc", "BX-2 cyc", "BX-2 slowdown"],
        rows,
        notes: vec![
            format!(
                "Aggregate slowdown {:.2}x. Paper (§2.2.4): \"the HP implementation performed a lot better than the VAX implementation\".",
                tot.1 as f64 / tot.0 as f64
            ),
        ],
    }
}

// ----------------------------------------------------------------- E4 ----

/// E4: horizontal vs vertical encoding (§1 / reference \[5\]).
pub fn e4() -> Table {
    let mut rows = Vec::new();
    let (h, v) = (hm1(), vm1());
    let ch = Compiler::new(h.clone());
    let cv = Compiler::new(v.clone());
    let mut tot = (0u64, 0u64);
    for k in suite().into_iter().filter(|k| k.lang != Lang::Empl) {
        let (ah, cyh) = k.run(&ch);
        let (av, cyv) = k.run(&cv);
        tot.0 += cyh;
        tot.1 += cyv;
        let bits_h = ah.stats.micro_instrs as u64 * h.control_word_bits() as u64;
        let bits_v = av.stats.micro_instrs as u64 * v.control_word_bits() as u64;
        rows.push(vec![
            k.name.into(),
            cyh.to_string(),
            cyv.to_string(),
            format!("{:.2}x", cyv as f64 / cyh as f64),
            bits_h.to_string(),
            bits_v.to_string(),
        ]);
    }
    Table {
        header: vec![
            "kernel",
            "HM-1 cyc",
            "VM-1 cyc",
            "VM-1 slowdown",
            "HM-1 store bits",
            "VM-1 store bits",
        ],
        rows,
        notes: vec![
            format!("Aggregate slowdown {:.2}x.", tot.1 as f64 / tot.0 as f64),
            "Paper (§1): vertical encoding \"usually implies a loss of flexibility and speed\",".into(),
            "bought back in control-store bits per instruction (45 vs 96).".into(),
        ],
    }
}

// ----------------------------------------------------------------- E5 ----

/// E5: macrocode vs compiled microcode vs expert microcode (§3's
/// factor-5 / factor-10 remark).
pub fn e5() -> Table {
    let m = hm1();
    let art_interp = macrointerp::compile_interpreter(&m).unwrap();
    let r = |n: &str| m.resolve_reg_name(n).unwrap();

    let mut rows = Vec::new();

    // Workload 1: sum of 8 words at 0x100.
    {
        let data: Vec<(u64, u64)> = (0..8).map(|i| (0x100 + i, i + 1)).collect();
        let macro_prog =
            mcc_sim::macroisa::sum_program(0x100, 8, 0x200, 0x201, 0x202);
        let (sim, st_macro) = macrointerp::interpret(&art_interp, &macro_prog, &data, 3_000_000);
        assert_eq!(sim.mem(0x200), 36);

        let c = Compiler::new(m.clone());
        let src = "\
reg ptr = R0
reg n = R1
reg acc = R2
reg t = R3
const ptr, 0x100
const n, 8
const acc, 0
loop: jump done if n = 0
    load t, ptr
    add acc, acc, t
    add ptr, ptr, 1
    sub n, n, 1
    jump loop
done: exit acc
";
        let art = cached(&c, SourceLang::Yalll, src);
        let mut sim = art.simulator();
        for &(a, v) in &data {
            sim.set_mem(a, v);
        }
        let st_comp = sim.run(&SimOptions::default()).unwrap();
        assert_eq!(art.read_symbol(&sim, "acc"), Some(36));

        let hand = handwritten::sum_words(&m, 0x100, 8);
        let mut sim = Simulator::new(m.clone(), &hand);
        for &(a, v) in &data {
            sim.set_mem(a, v);
        }
        let st_hand = sim.run(&SimOptions::default()).unwrap();
        assert_eq!(sim.reg(r("R2")), 36);

        rows.push(vec![
            "sum8".into(),
            st_macro.cycles.to_string(),
            st_comp.cycles.to_string(),
            st_hand.cycles.to_string(),
            format!("{:.1}x", st_macro.cycles as f64 / st_comp.cycles as f64),
            format!("{:.1}x", st_macro.cycles as f64 / st_hand.cycles as f64),
        ]);
    }

    // Workload 2: copy 16 words (unrolled LDA/STA at the macro level).
    {
        use mcc_sim::macroisa::{MacroInstr, MacroOp};
        let mut macro_prog = Vec::new();
        for i in 0..16 {
            macro_prog.push(MacroInstr::new(MacroOp::Lda, 0x100 + i));
            macro_prog.push(MacroInstr::new(MacroOp::Sta, 0x80 + i));
        }
        macro_prog.push(MacroInstr::new(MacroOp::Halt, 0));
        let data: Vec<(u64, u64)> = (0..16).map(|i| (0x100 + i, (i * 7 + 3) & 0xFFFF)).collect();
        let (sim, st_macro) = macrointerp::interpret(&art_interp, &macro_prog, &data, 3_000_000);
        assert_eq!(sim.mem(0x80), 3);

        let c = Compiler::new(m.clone());
        let k = suite().into_iter().find(|k| k.name == "memcpy16").unwrap();
        let (_, st_comp) = k.run(&c);

        let hand = handwritten::memcpy16(&m);
        let mut sim = Simulator::new(m.clone(), &hand);
        for &(a, v) in &data {
            sim.set_mem(a, v);
        }
        let st_hand = sim.run(&SimOptions::default()).unwrap();
        assert_eq!(sim.mem(0x80 + 5), (5 * 7 + 3) & 0xFFFF);

        rows.push(vec![
            "memcpy16".into(),
            st_macro.cycles.to_string(),
            st_comp.to_string(),
            st_hand.cycles.to_string(),
            format!("{:.1}x", st_macro.cycles as f64 / st_comp as f64),
            format!("{:.1}x", st_macro.cycles as f64 / st_hand.cycles as f64),
        ]);
    }

    Table {
        header: vec![
            "workload",
            "macro cyc",
            "compiled µcode cyc",
            "hand µcode cyc",
            "speedup (compiled)",
            "speedup (hand)",
        ],
        rows,
        notes: vec![
            "macro = MAC-1 program run by the microcoded interpreter (itself compiled by this toolkit).".into(),
            "Paper (§3): \"speed up … by a factor of five with comparatively little effort\" (HLL)".into(),
            "vs \"a factor of ten only after mastering a complicated microassembly language\".".into(),
        ],
    }
}

// ----------------------------------------------------------------- E6 ----

/// E6: spills and cycles vs register budget, plus the spread-vs-reuse
/// allocation ablation.
pub fn e6() -> Table {
    // A 12-live-variable EMPL kernel.
    let mut src = String::new();
    for i in 0..12 {
        src.push_str(&format!("DECLARE V{i} FIXED;\n"));
    }
    src.push_str("DECLARE T FIXED;\n");
    for i in 0..12 {
        src.push_str(&format!("V{i} = {};\n", i * 5 + 2));
    }
    src.push_str("T = 0;\n");
    for i in 0..12 {
        src.push_str(&format!("T = T + V{i};\n"));
    }
    let want: u64 = (0..12).map(|i| i * 5 + 2).sum();

    let mut rows = Vec::new();
    for budget in [4u16, 6, 8, 12, 16, 64, 256] {
        // HM-1 has 16 registers; larger budgets only exist on WM-64.
        let m: MachineDesc = if budget <= 16 { hm1() } else { wm64() };
        let mut opts = CompilerOptions::default();
        opts.alloc.budget = Some(budget);
        let name = m.name.clone();
        let art = cached(&Compiler::with_options(m, opts), SourceLang::Empl, &src);
        let (sim, stats) = art.run().unwrap();
        assert_eq!(art.read_symbol(&sim, "T"), Some(want));
        rows.push(vec![
            format!("{name}/{budget}"),
            art.stats.spills.to_string(),
            art.stats.spill_moves.to_string(),
            art.stats.micro_instrs.to_string(),
            stats.cycles.to_string(),
        ]);
    }
    Table {
        header: vec!["machine/budget", "spills", "fill+store ops", "MIs", "cycles"],
        rows,
        notes: vec![
            "Paper (§2.1.3): microregister budgets range from 16 (VAX-11) to 256 (CD 480);".into(),
            "spilling \"should be done in such a way that the number of fetches and stores is minimized\".".into(),
        ],
    }
}

/// E6b: the allocation/composition interdependence ablation — spread
/// (avoid reuse) vs greedy reuse.
pub fn e6b() -> Table {
    // Independent chains that compact well unless allocation serialises
    // them by reusing registers.
    let mut src = String::new();
    for i in 0..4 {
        src.push_str(&format!("DECLARE A{i} FIXED;\nDECLARE B{i} FIXED;\n"));
    }
    for i in 0..4 {
        src.push_str(&format!("A{i} = {};\n", i + 1));
        src.push_str(&format!("B{i} = A{i} + {};\n", 10 * (i + 1)));
    }
    let mut rows = Vec::new();
    for (label, spread) in [("spread (avoid reuse)", true), ("greedy reuse", false)] {
        let mut opts = CompilerOptions::default();
        opts.alloc.spread = spread;
        let art = cached(&Compiler::with_options(hm1(), opts), SourceLang::Empl, &src);
        let (_, stats) = art.run().unwrap();
        rows.push(vec![
            label.into(),
            art.stats.micro_instrs.to_string(),
            format!("{:.2}", art.stats.packing_ratio()),
            stats.cycles.to_string(),
        ]);
    }
    let c_spread: u64 = rows[0][3].parse().unwrap();
    let c_greedy: u64 = rows[1][3].parse().unwrap();
    let finding = if c_spread < c_greedy {
        format!(
            "Measured: spread is {:.1}% faster — reuse introduced false dependences.",
            (c_greedy - c_spread) as f64 / c_greedy as f64 * 100.0
        )
    } else {
        "Measured: no difference on this kernel — the compactor's candidate choice and \
         anti-dependence-tolerant packing absorb the reuse hazards the paper feared."
            .to_string()
    };
    Table {
        header: vec!["allocation policy", "MIs", "ops/MI", "cycles"],
        rows,
        notes: vec![
            "Paper (§2.1.4): \"a register allocation phase should introduce as little resource".into(),
            "dependencies as possible between statements which are not data dependent\".".into(),
            finding,
        ],
    }
}

// ----------------------------------------------------------------- E7 ----

/// E7: interrupt poll-point frequency vs latency and overhead (§2.1.5).
pub fn e7() -> Table {
    // A long-running kernel: checksum 192 words.
    // The loop body is unrolled 8x, so the straight-line stretch is long
    // enough for the per-ops poll interval to matter.
    let mut body = String::new();
    for _ in 0..8 {
        body.push_str("    load t, ptr\n    add acc, acc, t\n    add ptr, ptr, 1\n");
    }
    let src = format!(
        "\
reg ptr = R0
reg n = R1
reg acc = R2
reg t = R3
const ptr, 0x100
const n, 24
const acc, 0
loop: jump done if n = 0
{body}    sub n, n, 1
    jump loop
done: exit acc
"
    );
    let src = src.as_str();
    let want: u64 = (0..192u64).map(|i| (i * 3 + 1) & 0xFFFF).sum::<u64>() & 0xFFFF;

    let mut rows = Vec::new();
    let mut base_cycles = 0u64;
    for (label, interval) in [
        ("no polling", None),
        ("every 32 ops", Some(32)),
        ("every 8 ops", Some(8)),
        ("every 2 ops", Some(2)),
    ] {
        let opts = CompilerOptions {
            poll_interval: interval,
            ..Default::default()
        };
        let art = cached(&Compiler::with_options(hm1(), opts), SourceLang::Yalll, src);
        let mut sim = art.simulator();
        for i in 0..192u64 {
            sim.set_mem(0x100 + i, (i * 3 + 1) & 0xFFFF);
        }
        // Ten interrupts over the run.
        let opts_sim = SimOptions {
            interrupts: (1..=10).map(|k| k * 150).collect(),
            max_cycles: 10_000_000,
            ..Default::default()
        };
        let stats = sim.run(&opts_sim).unwrap();
        assert_eq!(art.read_symbol(&sim, "acc"), Some(want));
        if interval.is_none() {
            base_cycles = stats.cycles;
        }
        rows.push(vec![
            label.into(),
            art.stats.polls.to_string(),
            stats.cycles.to_string(),
            pct(stats.cycles as usize, base_cycles as usize),
            stats.interrupt_latency_max.to_string(),
            format!(
                "{:.0}",
                stats.interrupt_latency_total as f64 / stats.interrupts.max(1) as f64
            ),
        ]);
    }
    Table {
        header: vec![
            "poll policy",
            "polls inserted",
            "cycles",
            "poll overhead",
            "max latency",
            "mean latency",
        ],
        rows,
        notes: vec![
            "10 interrupts arrive at 150-cycle intervals; service cost 40 cycles each.".into(),
            "Paper (§2.1.5): a long microprogram \"must periodically check whether any".into(),
            "interrupts are pending\" — the sweep shows the latency/overhead trade.".into(),
        ],
    }
}

// ----------------------------------------------------------------- E8 ----

/// E8: the survey's feature matrix and §3 statistics.
pub fn e8() -> Table {
    let s = mcc_survey::stats();
    let rows = vec![
        vec![
            "sequential specification".into(),
            format!("{}/{}", s.sequential, s.total),
            "\"eight allow complete sequential specification\"".into(),
        ],
        vec![
            "explicit composition".into(),
            format!("{}/{}", s.explicit_composition, s.total),
            "\"only two (S* and CHAMIL)\"".into(),
        ],
        vec![
            "symbolic variables".into(),
            format!("{}/{}", s.symbolic_variables, s.total),
            "\"only two or three (EMPL, PL/MP and in a certain sense YALLL)\"".into(),
        ],
        vec![
            "parameter passing".into(),
            format!("{}/{}", s.parameter_passing, s.total),
            "\"no language supports the passing of parameters\"".into(),
        ],
        vec![
            "interrupt/trap handling".into(),
            format!("{}/{}", s.interrupts, s.total),
            "\"completely neglected\"".into(),
        ],
    ];
    Table {
        header: vec!["§3 observation", "measured", "paper text"],
        rows,
        notes: vec!["Full matrix:".into(), mcc_survey::feature_matrix()],
    }
}

// ----------------------------------------------------------------- E9 ----

/// Watchdog budget for E9: generous against the ≤8-op poll spacing the
/// campaign compiles its kernels with, tight against corrupted poll-less
/// loops.
const E9_WATCHDOG: u64 = 512;

/// Runs one dependability campaign: kernel `k` under `trials` seeded
/// single-fault runs, with the control store parity-protected or raw.
///
/// The same `seed` against both store modes injects the *identical* fault
/// sequence, so protected and raw rows compare like for like.
pub fn e9_campaign(
    k: &crate::kernels::Kernel,
    c: &Compiler,
    protect: bool,
    seed: u64,
    trials: usize,
) -> mcc_faults::Tally {
    let art = k
        .compile(c)
        .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    // Fault-free reference run fixes the injection horizon.
    let mut sim = art.simulator();
    (k.setup)(&mut sim);
    let clean = sim
        .run(&SimOptions {
            watchdog: Some(E9_WATCHDOG),
            ..Default::default()
        })
        .unwrap_or_else(|e| panic!("{} clean run: {e}", k.name));
    assert_eq!(
        (k.result)(&art, &sim),
        k.expected,
        "{} clean run computed the wrong answer",
        k.name
    );

    let mut space = mcc_faults::FaultSpace::new(
        c.machine(),
        art.program.instr_count() as u32,
        clean.cycles,
    );
    // Target the kernels' working set so memory upsets can matter.
    space.mem_lo = 0;
    space.mem_hi = 0x200;
    let spec = mcc_faults::CampaignSpec {
        seed,
        trials,
        mix: mcc_faults::FaultMix::default(),
    };
    // Runaways that keep polling escape the watchdog; the cycle budget is
    // the blunt backstop.
    let max_cycles = clean.cycles * 20 + 20_000;
    let report = mcc_faults::run_campaign(&spec, &space, |plan| {
        let mut sim = art.simulator();
        (k.setup)(&mut sim);
        let res = sim.run(&SimOptions {
            max_cycles,
            faults: plan,
            watchdog: Some(E9_WATCHDOG),
            protect_store: protect,
            ..Default::default()
        });
        let correct = res.is_ok() && (k.result)(&art, &sim) == k.expected;
        (res, correct)
    });
    report.tally
}

/// The compiler every E9 row uses: poll points let the watchdog
/// distinguish a hung machine from a working loop (§2.1.5's polling,
/// reused as a liveness heartbeat).
pub(crate) fn e9_compiler() -> Compiler {
    let opts = CompilerOptions {
        poll_interval: Some(8),
        ..Default::default()
    };
    Compiler::with_options(hm1(), opts)
}

/// E9's column names (shared by the direct and campaign paths).
pub(crate) fn e9_header() -> Vec<&'static str> {
    vec![
        "kernel/store",
        "masked",
        "recovered",
        "detected",
        "hang",
        "SDC",
        "coverage",
    ]
}

/// Renders one E9 row from a campaign tally.
pub(crate) fn e9_row(label: String, t: &mcc_faults::Tally) -> Vec<String> {
    vec![
        label,
        t.masked.to_string(),
        t.recovered.to_string(),
        t.detected_halt.to_string(),
        t.hang.to_string(),
        t.sdc.to_string(),
        format!("{:.1}%", t.coverage() * 100.0),
    ]
}

/// E9's interpretation notes (shared by the direct and campaign paths).
pub(crate) fn e9_notes(trials: usize) -> Vec<String> {
    vec![
        format!(
            "{trials} seeded single-fault trials per row; mix = control flips 50%, \
             register 20%, memory 15%, stuck-at 10%, page unmap 5%."
        ),
        "raw = corrupted control words execute; ecc = parity-checked fetch with".into(),
        format!(
            "scrub + restart-from-checkpoint recovery. Watchdog {E9_WATCHDOG} cycles; \
             the same seed feeds both store modes."
        ),
        "coverage = fraction of trials not ending in silent data corruption.".into(),
    ]
}

/// E9 with an explicit trial count (tests use a small one).
pub fn e9_with(trials: usize) -> Table {
    let c = e9_compiler();
    let mut rows = Vec::new();
    for (i, k) in suite().iter().enumerate() {
        for (label, protect) in [("raw", false), ("ecc", true)] {
            let t = e9_campaign(k, &c, protect, 1980 + i as u64, trials);
            rows.push(e9_row(format!("{}/{label}", k.name), &t));
        }
    }
    Table {
        header: e9_header(),
        rows,
        notes: e9_notes(trials),
    }
}

/// E9: dependability under seeded fault injection (§2.1.5 extended: the
/// microarchitecture must keep its promises when hardware misbehaves).
pub fn e9() -> Table {
    e9_with(1000)
}

// ----------------------------------------------------------------- E10 ---

/// E10 with an explicit trial count (tests use a small one).
///
/// One differential-fuzzing campaign per frontend against every reference
/// machine, fixed seed: each row is findings-per-class, and a healthy
/// tree is all-zero. Unlike E1–E9, which measure *performance*, E10
/// measures *trustworthiness* — §2.1.1's premise that the programmer must
/// be able to rely on the translator, made into a regenerable number.
pub fn e10_with(trials: u64) -> Table {
    use mcc_fuzz::{fuzz, FuzzConfig};
    let mut rows = Vec::new();
    let mut total = 0u64;
    for m in [hm1(), vm1(), bx2(), wm64()] {
        let report = fuzz(&FuzzConfig {
            seed: 1,
            trials,
            machine: m.clone(),
            ..FuzzConfig::default()
        });
        total += report.total_findings();
        for r in &report.reports {
            rows.push(e10_row(format!("{}/{}", m.name, r.lang.name()), &r.counts));
        }
    }
    Table {
        header: e10_header(),
        rows,
        notes: e10_notes(trials, total),
    }
}

/// E10's column names (shared by the direct and campaign paths).
pub(crate) fn e10_header() -> Vec<&'static str> {
    let mut header = vec!["machine/frontend"];
    header.extend(mcc_fuzz::FindingClass::ALL.iter().map(|c| c.name()));
    header
}

/// Renders one E10 row from per-class finding counts.
pub(crate) fn e10_row(label: String, counts: &[u64; 5]) -> Vec<String> {
    let mut row = vec![label];
    row.extend(counts.iter().map(|n| n.to_string()));
    row
}

/// E10's interpretation notes (shared by the direct and campaign paths).
pub(crate) fn e10_notes(trials: u64, total: u64) -> Vec<String> {
    vec![
        format!("{trials} trials per cell, seed 1; reference oracle: sequential emission."),
        "Every generated program is compiled under all five compaction algorithms and".into(),
        "simulated; divergence in final state, a panic, a hang, a rejected well-formed".into(),
        "program, or a budget blowout counts in its class. Mutated (malformed) variants".into(),
        "additionally check diagnostic quality: non-empty message, in-range span.".into(),
        format!(
            "Total findings: {total}. An all-zero table is the robustness baseline \
             this tree ships with."
        ),
    ]
}

/// E10: differential-fuzzing robustness table (all-zero when healthy).
pub fn e10() -> Table {
    e10_with(250)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_table_has_rows_and_validates() {
        let t = e1();
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn e2_orders_algorithms_sanely() {
        let t = e2();
        // The exact algorithm's total is minimal.
        let get = |i: usize| t.rows[i][1].parse::<usize>().unwrap();
        let exact = get(4);
        for i in 0..4 {
            assert!(get(i) >= exact, "row {i}: {:?}", t.rows);
        }
        // The phase-aware compactor beats the coarse critical-path one.
        assert!(get(3) <= get(1), "{:?}", t.rows);
    }

    #[test]
    fn e3_shows_bx2_slower() {
        let t = e3();
        for r in &t.rows {
            let hm: u64 = r[3].parse().unwrap();
            let bx: u64 = r[4].parse().unwrap();
            assert!(bx >= hm, "{r:?}");
        }
    }

    #[test]
    fn e4_shows_vertical_slower() {
        let t = e4();
        for r in &t.rows {
            let h: u64 = r[1].parse().unwrap();
            let v: u64 = r[2].parse().unwrap();
            assert!(v >= h, "{r:?}");
        }
    }

    #[test]
    fn e5_speedups_are_large() {
        let t = e5();
        for r in &t.rows {
            let mac: f64 = r[1].parse().unwrap();
            let comp: f64 = r[2].parse().unwrap();
            let hand: f64 = r[3].parse().unwrap();
            assert!(mac / comp > 2.0, "compiled speedup too small: {r:?}");
            assert!(hand <= comp, "hand must beat the compiler: {r:?}");
        }
    }

    #[test]
    fn e6_spills_decrease_with_budget() {
        let t = e6();
        let spills: Vec<usize> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(spills[0] > 0, "budget 4 must spill");
        assert!(
            spills.windows(2).all(|w| w[0] >= w[1]),
            "spills must not increase with budget: {spills:?}"
        );
        assert_eq!(*spills.last().unwrap(), 0);
    }

    #[test]
    fn e7_latency_shrinks_with_polling() {
        let t = e7();
        let lat: Vec<u64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            lat[0] > lat[3],
            "polling must reduce worst-case latency: {lat:?}"
        );
    }

    /// The acceptance pair for E9: a parity-protected store turns control
    /// corruption into detect → scrub → restart recoveries, and a raw
    /// store produces watchdog-caught hangs. Small trial count so the
    /// suite stays fast; the `exp_e9` binary runs the full 1000.
    #[test]
    fn e9_protected_store_recovers_and_raw_store_hangs() {
        let a = e9_with(120);
        let count = |suffix: &str, col: usize| -> u64 {
            a.rows
                .iter()
                .filter(|r| r[0].ends_with(suffix))
                .map(|r| r[col].parse::<u64>().unwrap())
                .sum()
        };
        // Columns: 1 masked, 2 recovered, 3 detected, 4 hang, 5 SDC.
        assert!(count("/ecc", 2) > 0, "no ECC recovery seen: {:?}", a.rows);
        assert!(count("/raw", 4) > 0, "no raw-store hang seen: {:?}", a.rows);
        // Protection must not lose ground on silent corruption overall.
        assert!(
            count("/ecc", 5) <= count("/raw", 5),
            "ECC store shows more SDC than raw: {:?}",
            a.rows
        );
    }

    /// Same seed, same campaign: the table is a pure function of its
    /// seeds.
    #[test]
    fn e9_is_deterministic() {
        let a = e9_with(40);
        let b = e9_with(40);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn e8_matches_paper() {
        let t = e8();
        assert_eq!(t.rows[0][1], "8/10");
        assert_eq!(t.rows[1][1], "2/10");
        assert_eq!(t.rows[3][1], "0/10");
    }

    /// The acceptance claim for E10: a healthy tree fuzzes clean on every
    /// machine × frontend cell. Small trial count so the suite stays
    /// fast; the `exp_e10` binary runs the full campaign.
    #[test]
    fn e10_healthy_tree_is_all_zero() {
        let t = e10_with(15);
        assert_eq!(t.rows.len(), 16, "4 machines x 4 frontends");
        for row in &t.rows {
            for cell in &row[1..] {
                assert_eq!(cell, "0", "finding in {row:?}");
            }
        }
    }

    /// Same seed, same campaign: E10 is a pure function of its config.
    #[test]
    fn e10_is_deterministic() {
        let a = e10_with(10);
        let b = e10_with(10);
        assert_eq!(a.rows, b.rows);
    }
}
