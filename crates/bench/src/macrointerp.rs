//! The MAC-1 interpreter, written as a microprogram.
//!
//! "Traditionally, microprogramming has been used for the realization of
//! macroarchitectures" (§1 of the survey) — this module realises one: the
//! [`mcc_sim::macroisa`] accumulator ISA, interpreted by a microprogram
//! built in MIR and compiled through the ordinary pipeline (emulator
//! construction, the use case of the survey's reference \[14\]).
//!
//! Register assignment on the host machine: `R15` = macro PC, `R14` =
//! macro ACC, `R13` = IR, `R12` = operand, `R11` = opcode, `R10` =
//! scratch. The opcode dispatch uses the host's multiway-branch facility
//! (§2.1.6: "multiway branches, which are available on many machines").

use mcc_core::{Artifact, Compiler, CompileError};
use mcc_machine::{AluOp, CondKind, MachineDesc, ShiftOp};
use mcc_mir::{FuncBuilder, MirFunction, Operand, Term};
use mcc_sim::macroisa::MacroInstr;
use mcc_sim::{SimOptions, SimStats, Simulator};

/// Builds the interpreter as machine-level MIR for a machine with ≥16
/// general-purpose registers and a dispatch facility (HM-1, WM-64).
pub fn interpreter_mir(m: &MachineDesc) -> MirFunction {
    let r = |name: &str| Operand::Reg(m.resolve_reg_name(name).unwrap());
    let (pc, acc, ir, opd, opc, t) =
        (r("R15"), r("R14"), r("R13"), r("R12"), r("R11"), r("R10"));

    let mut b = FuncBuilder::new("mac1_interp");
    let fetch = b.new_labeled_block("fetch");
    b.jump_and_switch(fetch);
    b.load(ir, pc);
    b.alu_imm(AluOp::Add, pc, pc, 1);
    b.alu_imm(AluOp::And, opd, ir, 0x0FFF);
    b.shift(ShiftOp::Shr, opc, ir, 12);

    // Handlers.
    let h_halt = b.new_labeled_block("h_halt");
    let h_lda = b.new_labeled_block("h_lda");
    let h_sta = b.new_labeled_block("h_sta");
    let h_add = b.new_labeled_block("h_add");
    let h_sub = b.new_labeled_block("h_sub");
    let h_ldi = b.new_labeled_block("h_ldi");
    let h_jmp = b.new_labeled_block("h_jmp");
    let h_jz = b.new_labeled_block("h_jz");
    let h_jnz = b.new_labeled_block("h_jnz");
    let h_and = b.new_labeled_block("h_and");
    let h_shr = b.new_labeled_block("h_shr");
    let h_shl = b.new_labeled_block("h_shl");

    let handlers = [
        h_halt, h_lda, h_sta, h_add, h_sub, h_ldi, h_jmp, h_jz, h_jnz, h_and, h_shr, h_shl,
        h_halt, h_halt, h_halt, h_halt,
    ];
    // The dispatch table: 16 consecutive single-jump blocks.
    let table: Vec<u32> = (0..16)
        .map(|k| {
            let blk = b.new_block();
            b.switch_to(blk);
            b.terminate(Term::Jump(handlers[k]));
            blk
        })
        .collect();
    b.switch_to(fetch);
    b.terminate(Term::Dispatch {
        src: opc,
        mask: 0xF,
        table,
    });

    // HALT
    b.switch_to(h_halt);
    b.terminate(Term::Halt);
    // LDA: ACC = MEM[opd]
    b.switch_to(h_lda);
    b.load(acc, opd);
    b.terminate(Term::Jump(fetch));
    // STA
    b.switch_to(h_sta);
    b.store(opd, acc);
    b.terminate(Term::Jump(fetch));
    // ADD
    b.switch_to(h_add);
    b.load(t, opd);
    b.alu(AluOp::Add, acc, acc, t);
    b.terminate(Term::Jump(fetch));
    // SUB
    b.switch_to(h_sub);
    b.load(t, opd);
    b.alu(AluOp::Sub, acc, acc, t);
    b.terminate(Term::Jump(fetch));
    // LDI
    b.switch_to(h_ldi);
    b.mov(acc, opd);
    b.terminate(Term::Jump(fetch));
    // JMP
    b.switch_to(h_jmp);
    b.mov(pc, opd);
    b.terminate(Term::Jump(fetch));
    // JZ
    b.switch_to(h_jz);
    {
        let set = b.new_block();
        b.alu_un(AluOp::Pass, t, acc);
        b.branch(CondKind::Zero, set, fetch);
        b.switch_to(set);
        b.mov(pc, opd);
        b.terminate(Term::Jump(fetch));
    }
    // JNZ
    b.switch_to(h_jnz);
    {
        let set = b.new_block();
        b.alu_un(AluOp::Pass, t, acc);
        b.branch(CondKind::NotZero, set, fetch);
        b.switch_to(set);
        b.mov(pc, opd);
        b.terminate(Term::Jump(fetch));
    }
    // AND
    b.switch_to(h_and);
    b.load(t, opd);
    b.alu(AluOp::And, acc, acc, t);
    b.terminate(Term::Jump(fetch));
    // SHR / SHL: variable amounts become single-bit loops.
    for (h, op) in [(h_shr, ShiftOp::Shr), (h_shl, ShiftOp::Shl)] {
        b.switch_to(h);
        let head = b.new_labeled_block("sh_head");
        let body = b.new_block();
        b.jump_and_switch(head);
        b.alu_un(AluOp::Pass, t, opd);
        b.branch(CondKind::Zero, fetch, body);
        b.switch_to(body);
        b.shift(op, acc, acc, 1);
        b.alu_imm(AluOp::Sub, opd, opd, 1);
        b.terminate(Term::Jump(head));
    }

    // The macro state is observable.
    b.mark_live_out(pc);
    b.mark_live_out(acc);
    let f = b.finish();
    f.validate().expect("interpreter MIR is well-formed");
    f
}

/// Compiles the interpreter for machine `m`.
///
/// # Errors
///
/// Propagates pipeline errors (e.g. a machine without dispatch and
/// without the legalisation ingredients).
pub fn compile_interpreter(m: &MachineDesc) -> Result<Artifact, CompileError> {
    Compiler::new(m.clone()).compile_mir(interpreter_mir(m))
}

/// Loads a MAC-1 program at macro address 0 and interprets it on the
/// microcoded interpreter. Returns the simulator (for state inspection)
/// and statistics.
///
/// # Panics
///
/// Panics if the interpreter does not halt within `max_cycles`.
pub fn interpret(
    art: &Artifact,
    program: &[MacroInstr],
    data: &[(u64, u64)],
    max_cycles: u64,
) -> (Simulator, SimStats) {
    let mut sim = art.simulator();
    for (i, instr) in program.iter().enumerate() {
        sim.set_mem(i as u64, instr.encode() as u64);
    }
    for &(a, v) in data {
        sim.set_mem(a, v);
    }
    let stats = sim
        .run(&SimOptions {
            max_cycles,
            ..Default::default()
        })
        .expect("interpreter run");
    (sim, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_sim::macroisa::{assemble, MacroMachine, MacroOp};

    fn mk(ops: &[(MacroOp, u16)]) -> Vec<MacroInstr> {
        ops.iter().map(|&(o, a)| MacroInstr::new(o, a)).collect()
    }

    #[test]
    fn interpreter_matches_reference_machine() {
        use MacroOp::*;
        let m = hm1();
        let art = compile_interpreter(&m).unwrap();
        let acc_reg = m.resolve_reg_name("R14").unwrap();

        let programs: Vec<Vec<MacroInstr>> = vec![
            mk(&[(Ldi, 5), (Sta, 100), (Lda, 100), (Add, 100), (Halt, 0)]),
            mk(&[(Ldi, 7), (Sub, 200), (Jz, 4), (Ldi, 99), (Halt, 0)]),
            mk(&[(Ldi, 0b1010), (Shl, 3), (Shr, 1), (Halt, 0)]),
            mk(&[
                // countdown loop: acc = 5; while acc != 0: acc -= 1
                (Ldi, 5),
                (Sub, 300),
                (Jnz, 1),
                (Halt, 0),
            ]),
            mk(&[(Ldi, 0xFF), (And, 101), (Halt, 0)]),
        ];
        let data: Vec<(u64, u64)> = vec![(100, 0), (101, 0x0F0F), (200, 7), (300, 1)];

        for prog in &programs {
            // Reference.
            let mut mm = MacroMachine::new();
            mm.load(0, &assemble(prog));
            for &(a, v) in &data {
                mm.mem[a as usize] = v as u16;
            }
            mm.run(10_000);
            assert!(mm.halted);

            // Microcoded.
            let (sim, _) = interpret(&art, prog, &data, 2_000_000);
            assert_eq!(
                sim.reg(acc_reg),
                mm.acc as u64,
                "ACC mismatch for {prog:?}"
            );
            // Memory effects agree.
            for a in [100u64, 101, 200, 300] {
                assert_eq!(sim.mem(a), mm.mem[a as usize] as u64, "mem[{a}]");
            }
        }
    }

    #[test]
    fn interpretation_overhead_is_large() {
        // The E5 premise: interpreting costs an order of magnitude.
        use MacroOp::*;
        let m = hm1();
        let art = compile_interpreter(&m).unwrap();
        let prog = mk(&[(Ldi, 1), (Add, 50), (Sta, 51), (Halt, 0)]);
        let (_, stats) = interpret(&art, &prog, &[(50, 2)], 100_000);
        // Four macroinstructions; each costs many microcycles.
        assert!(
            stats.cycles > 4 * 6,
            "interpretation should cost ≫ direct microcode, got {}",
            stats.cycles
        );
    }
}
