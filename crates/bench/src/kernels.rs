//! The kernel suite: small microprograms in the toolkit's languages,
//! parameterised by the target's general-purpose file name so the same
//! kernel retargets to every reference machine.
//!
//! Each kernel carries a *reference function* computing the expected
//! result in plain Rust, so every experiment validates what it measures.

use mcc_core::{Artifact, Compiler, SourceLang};
use mcc_machine::MachineDesc;
use mcc_sim::{SimOptions, Simulator};

/// Which frontend a kernel is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// YALLL assembly.
    Yalll,
    /// SIMPL.
    Simpl,
    /// EMPL.
    Empl,
}

/// One kernel: a name, a source generator, a setup, and a checker.
pub struct Kernel {
    /// Short name for tables.
    pub name: &'static str,
    /// The language it is written in.
    pub lang: Lang,
    /// Produces the source for a machine (binding registers by file name).
    pub source: fn(&MachineDesc) -> String,
    /// Prepares simulator state (memory contents etc.).
    pub setup: fn(&mut Simulator),
    /// Extracts the observable result after the run.
    pub result: fn(&Artifact, &Simulator) -> u64,
    /// The expected result.
    pub expected: u64,
}

impl Kernel {
    /// Compiles this kernel with the given compiler.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn compile(&self, c: &Compiler) -> Result<Artifact, mcc_core::CompileError> {
        let src = (self.source)(c.machine());
        let lang = match self.lang {
            Lang::Yalll => SourceLang::Yalll,
            Lang::Simpl => SourceLang::Simpl,
            Lang::Empl => SourceLang::Empl,
        };
        // Kernels are recompiled under many option sets by every
        // experiment: the content-addressed cache is what makes a warm
        // `exp_all` fast, and its tests prove it changes nothing.
        mcc_cache::compile_cached(c, lang, &src, mcc_cache::Persist::Disk)
    }

    /// Compiles, runs and checks; returns `(artifact, cycles)`.
    ///
    /// # Panics
    ///
    /// Panics when the simulated result disagrees with the reference —
    /// an experiment must never tabulate wrong code.
    pub fn run(&self, c: &Compiler) -> (Artifact, u64) {
        let art = self
            .compile(c)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", self.name, c.machine().name));
        let mut sim = art.simulator();
        (self.setup)(&mut sim);
        let stats = sim
            .run(&SimOptions {
                max_cycles: 5_000_000,
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("{} on {}: {e}", self.name, c.machine().name));
        let got = (self.result)(&art, &sim);
        assert_eq!(
            got, self.expected,
            "{} on {} computed the wrong answer",
            self.name,
            c.machine().name
        );
        (art, stats.cycles)
    }
}

fn gp(m: &MachineDesc) -> &'static str {
    if m.find_file("R").is_some() {
        "R"
    } else {
        "G"
    }
}

fn sym(art: &Artifact, sim: &Simulator, name: &str) -> u64 {
    art.read_symbol(sim, name)
        .unwrap_or_else(|| panic!("symbol `{name}` missing"))
}

/// `popcount(0xB7B7) = 10`
fn popcount_src(m: &MachineDesc) -> String {
    let g = gp(m);
    format!(
        "\
reg x = {g}0
reg n = {g}1
reg bit = {g}2
const x, 0xB7
const n, 0
loop: jump done if x = 0
    move bit, x
    and bit, bit, 1
    add n, n, bit
    shr x, x, 1
    jump loop
done: exit n
"
    )
}

/// `gcd(252, 105) = 21`
fn gcd_src(m: &MachineDesc) -> String {
    let g = gp(m);
    format!(
        "\
reg a = {g}0
reg b = {g}1
reg t = {g}2
const a, 252
const b, 105
loop: jump done if b = 0
    jump swap if a < b
    sub a, a, b
    jump loop
swap: move t, a
    move a, b
    move b, t
    jump loop
done: exit a
"
    )
}

/// Copies 16 words from 0x100 to 0x180; result = checksum of the copy.
fn memcpy_src(m: &MachineDesc) -> String {
    let g = gp(m);
    format!(
        "\
reg src = {g}0
reg dst = {g}1
reg n = {g}2
reg t = {g}3
const src, 0x100
const dst, 0x80
const n, 16
loop: jump done if n = 0
    load t, src
    stor t, dst
    add src, src, 1
    add dst, dst, 1
    sub n, n, 1
    jump loop
done: exit t
"
    )
}

fn memcpy_setup(sim: &mut Simulator) {
    for i in 0..16u64 {
        sim.set_mem(0x100 + i, (i * 7 + 3) & 0xFFFF);
    }
}

fn memcpy_result(_art: &Artifact, sim: &Simulator) -> u64 {
    (0..16u64).map(|i| sim.mem(0x80 + i)).sum::<u64>() & 0xFFFF
}

/// `fib(14) = 377`
fn fib_src(m: &MachineDesc) -> String {
    let g = gp(m);
    format!(
        "\
reg a = {g}0
reg b = {g}1
reg t = {g}2
reg n = {g}3
const a, 0
const b, 1
const n, 14
loop: jump done if n = 0
    move t, b
    add b, a, b
    move a, t
    sub n, n, 1
    jump loop
done: exit a
"
    )
}

/// Bit-reverse a 16-bit word with SIMPL (`0x1234` → `0x2C48`).
fn bitrev_src(m: &MachineDesc) -> String {
    let g = gp(m);
    format!(
        "\
program bitrev;
begin
    0x1234 -> {g}1;
    0 -> {g}2;
    16 -> {g}3;
    while {g}3 <> 0 do
    begin
        {g}2 shl 1 -> {g}2;
        {g}1 shr 1 -> {g}1;
        if UF = 1 then {g}2 | 1 -> {g}2;
        {g}3 - 1 -> {g}3;
    end;
end"
    )
}

/// Sum an 8-word table with EMPL (symbolic variables + memory array).
fn table_sum_src(_m: &MachineDesc) -> String {
    "DECLARE A(8) FIXED; DECLARE I FIXED; DECLARE S FIXED; DECLARE T FIXED;
I = 0; S = 0;
A(0) = 3; A(1) = 1; A(2) = 4; A(3) = 1; A(4) = 5; A(5) = 9; A(6) = 2; A(7) = 6;
WHILE I < 8 DO;
  T = A(I);
  S = S + T;
  I = I + 1;
END;
"
    .to_string()
}

/// One step of a linear congruential PRNG chain (20 rounds), SIMPL.
fn lcg_src(m: &MachineDesc) -> String {
    let g = gp(m);
    format!(
        "\
program lcg;
begin
    7 -> {g}1;
    20 -> {g}2;
    while {g}2 <> 0 do
    begin
        comment x times 5 plus 1 via shifts;
        {g}1 shl 2 -> {g}3;
        {g}1 + {g}3 -> {g}1;
        {g}1 + 1 -> {g}1;
        {g}2 - 1 -> {g}2;
    end;
end"
    )
}

fn lcg_expected() -> u64 {
    let mut x: u16 = 7;
    for _ in 0..20 {
        x = x.wrapping_mul(5).wrapping_add(1);
    }
    x as u64
}

/// 6×7 via EMPL's expanded multiply.
fn mul_src(_m: &MachineDesc) -> String {
    "DECLARE X FIXED; DECLARE Y FIXED; DECLARE Z FIXED; X = 57; Y = 83; Z = X * Y;".to_string()
}

/// The kernel suite.
pub fn suite() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "popcount",
            lang: Lang::Yalll,
            source: popcount_src,
            setup: |_| {},
            result: |a, s| sym(a, s, "n"),
            expected: 0xB7u64.count_ones() as u64,
        },
        Kernel {
            name: "gcd",
            lang: Lang::Yalll,
            source: gcd_src,
            setup: |_| {},
            result: |a, s| sym(a, s, "a"),
            expected: 21,
        },
        Kernel {
            name: "memcpy16",
            lang: Lang::Yalll,
            source: memcpy_src,
            setup: memcpy_setup,
            result: memcpy_result,
            expected: (0..16u64).map(|i| (i * 7 + 3) & 0xFFFF).sum::<u64>() & 0xFFFF,
        },
        Kernel {
            name: "fib14",
            lang: Lang::Yalll,
            source: fib_src,
            setup: |_| {},
            result: |a, s| sym(a, s, "a"),
            expected: 377,
        },
        Kernel {
            name: "bitrev",
            lang: Lang::Simpl,
            source: bitrev_src,
            setup: |_| {},
            result: |a, s| {
                let g = if a.machine.find_file("R").is_some() { "R2" } else { "G2" };
                let r = a.machine.resolve_reg_name(g).unwrap();
                s.reg(r)
            },
            expected: (0x1234u16.reverse_bits()) as u64,
        },
        Kernel {
            name: "lcg20",
            lang: Lang::Simpl,
            source: lcg_src,
            setup: |_| {},
            result: |a, s| {
                let g = if a.machine.find_file("R").is_some() { "R1" } else { "G1" };
                let r = a.machine.resolve_reg_name(g).unwrap();
                s.reg(r)
            },
            expected: lcg_expected(),
        },
        Kernel {
            name: "tablesum",
            lang: Lang::Empl,
            source: table_sum_src,
            setup: |_| {},
            result: |a, s| sym(a, s, "S"),
            expected: 3 + 1 + 4 + 1 + 5 + 9 + 2 + 6,
        },
        Kernel {
            name: "mul16",
            lang: Lang::Empl,
            source: mul_src,
            setup: |_| {},
            result: |a, s| sym(a, s, "Z"),
            expected: 57 * 83,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::{all, hm1};

    #[test]
    fn all_kernels_run_on_hm1() {
        let c = Compiler::new(hm1());
        for k in suite() {
            let (_, cycles) = k.run(&c);
            assert!(cycles > 0, "{}", k.name);
        }
    }

    #[test]
    fn yalll_kernels_run_on_all_machines() {
        for m in all() {
            let c = Compiler::new(m);
            for k in suite().into_iter().filter(|k| k.lang == Lang::Yalll) {
                k.run(&c);
            }
        }
    }
}
