//! The `mcc bench-serve` closed-loop load generator.
//!
//! Drives an in-process [`mcc_serve::Server`] with a seeded, paced burst
//! and separates its output by determinism:
//!
//! * **stdout** carries only what is a pure function of `(seed, rps,
//!   duration)` — the scheduled request mix per corpus entry, the
//!   canonical tier-0 checksums, and the accounting invariants
//!   (`responses == requests`, `dropped == 0`, checksum conformance).
//!   It is byte-identical across `--clients` and worker counts, which is
//!   what CI diffs.
//! * **stderr and `BENCH_serve.json`** carry the timing-dependent
//!   numbers: the code histogram, shed/degrade counts, latency
//!   percentiles, and throughput.
//!
//! Every request appends a distinct YALLL comment line (`; nonce k`), so
//! the content-addressed cache sees a fresh key and every request costs a
//! real compile — that is what fills the queue and exercises the shedding
//! tiers — while the *artifact* (and therefore the checksum) stays
//! identical per `(kernel, machine, tier)`, because comments never reach
//! the parser.

mod chaosnet;
mod diurnal;
mod proto_ab;
mod soak;

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcc_machine::machines;
use mcc_serve::{proto::Response, ServeConfig, Server};

use crate::kernels::{self, Lang};

/// Load-generator tuning (the `bench-serve` CLI flags).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Paced request rate, requests/second (global, not per client).
    pub rps: u64,
    /// Length of the schedule; total requests = `rps × duration / 1000`.
    pub duration_ms: u64,
    /// Seed for the request mix.
    pub seed: u64,
    /// Server worker threads.
    pub workers: usize,
    /// Server admission bound.
    pub queue_bound: usize,
    /// Where to write the JSON report (empty = skip).
    pub json_path: String,
    /// Routed fleet size (`0` = the classic single in-process server,
    /// no router). With `N ≥ 1` the burst runs through `mcc route` over
    /// an in-process fleet at every doubling size up to `N`, emitting
    /// the scaling table.
    pub backends: usize,
    /// Kill-one-backend mode: SIGKILL the seed-chosen victim shard when
    /// this request index is drawn (requires `backends ≥ 2`; spawns
    /// real `mcc serve` child processes).
    pub kill_at: Option<usize>,
    /// Chaos-soak mode: run `--bursts` paced bursts against a
    /// supervised [`mcc_fleet::Fleet`] under a seeded kill schedule
    /// (requires `backends ≥ 2`; one extra sabotage shard is added).
    pub chaos_soak: bool,
    /// Burst count for `--chaos-soak`: one baseline burst plus a kill
    /// per remaining burst (minimum 4).
    pub bursts: usize,
    /// Chaos-net mode: drive a routed fleet through seeded
    /// fault-injection proxies on every hop (client→router and
    /// router→shard) and gate zero drops, zero double executions, and
    /// zero corrupt frames accepted (`--chaos-net`).
    pub chaos_net: bool,
    /// Wire-protocol selection (`--proto v1|v2|both`). On its own it
    /// runs the A/B mode over a real TCP hop; combined with
    /// `--chaos-net` it picks the wire the fault battery runs on.
    /// `None` keeps every mode on its classic v1 behavior.
    pub proto: Option<ProtoChoice>,
    /// One-way emulated network delay for the `--proto` A/B, in
    /// microseconds (`--net-delay-us`; 0 = raw loopback). Both series
    /// traverse the same delay relay, so the A/B measures the protocols
    /// under a realistic link RTT instead of the loopback special case
    /// where a lockstep round trip is nearly free.
    pub net_delay_us: u64,
    /// Diurnal QoS mode (`--diurnal`): a seeded day-curve of well-behaved
    /// interactive tenants plus one flooding batch abuser, gating the WFQ
    /// share, quota throttling, latency isolation, metrics shape, and
    /// trace replay.
    pub diurnal: bool,
}

/// Which wire protocol(s) a `--proto` run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoChoice {
    /// Newline-delimited lines only.
    V1,
    /// Binary length-prefixed frames only.
    V2,
    /// Both, as back-to-back series in one report.
    Both,
}

impl ProtoChoice {
    /// Parses the `--proto` flag value.
    pub fn parse(s: &str) -> Option<ProtoChoice> {
        match s {
            "v1" => Some(ProtoChoice::V1),
            "v2" => Some(ProtoChoice::V2),
            "both" => Some(ProtoChoice::Both),
            _ => None,
        }
    }

    /// The series tags this choice runs, in order.
    fn series(self) -> &'static [&'static str] {
        match self {
            ProtoChoice::V1 => &["v1"],
            ProtoChoice::V2 => &["v2"],
            ProtoChoice::Both => &["v1", "v2"],
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            rps: 200,
            duration_ms: 2_000,
            seed: 42,
            workers: 2,
            queue_bound: 8,
            json_path: "BENCH_serve.json".to_string(),
            backends: 0,
            kill_at: None,
            chaos_soak: false,
            bursts: 4,
            chaos_net: false,
            proto: None,
            net_delay_us: 0,
            diurnal: false,
        }
    }
}

/// One corpus entry: a YALLL kernel rendered for one reference machine.
struct Entry {
    kernel: &'static str,
    machine: &'static str,
    src: String,
}

/// The bench corpus: every YALLL kernel of the shared suite on every
/// reference machine. (YALLL only, because its `;` comments carry the
/// cache-defeating nonce without touching the parsed program.)
fn corpus() -> Vec<Entry> {
    let mut out = Vec::new();
    for m in machines::all() {
        for k in kernels::suite() {
            if k.lang == Lang::Yalll {
                out.push(Entry {
                    kernel: k.name,
                    machine: leak_name(&m.name),
                    src: (k.source)(&m),
                });
            }
        }
    }
    out
}

/// Machine names in the suite are `String`s on the descriptor; the bench
/// table wants `&'static str`. The corpus is built once per process.
fn leak_name(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

/// SplitMix64: the toolkit's standard seedable mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which corpus entry request `k` compiles — a pure function of the seed.
fn pick(seed: u64, k: usize, n: usize) -> usize {
    (splitmix64(seed ^ (k as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)) % n as u64) as usize
}

/// One client's observation of one request.
struct Sample {
    entry: usize,
    code: u16,
    tier: u64,
    checksum: String,
    micros: u64,
}

/// Runs the load, prints the deterministic table to stdout and the
/// timing table to stderr, writes the JSON report. Returns `Err` with a
/// diagnostic when an invariant breaks (a dropped response or a checksum
/// nonconformance) — the caller turns that into a nonzero exit.
///
/// # Errors
///
/// Invariant violations and JSON-report I/O errors.
pub fn run(cfg: &LoadConfig) -> Result<(), String> {
    if cfg.diurnal {
        if cfg.chaos_net || cfg.chaos_soak || cfg.backends > 0 || cfg.proto.is_some() {
            return Err("--diurnal combines only with the default mode".to_string());
        }
        return diurnal::run(cfg);
    }
    if cfg.chaos_net {
        return chaosnet::run(cfg);
    }
    if let Some(choice) = cfg.proto {
        if cfg.chaos_soak || cfg.backends > 0 {
            return Err(
                "--proto combines only with the default mode or --chaos-net".to_string()
            );
        }
        return proto_ab::run(cfg, choice);
    }
    if cfg.chaos_soak {
        return soak::run(cfg);
    }
    if cfg.backends > 0 {
        return match cfg.kill_at {
            Some(k) => routed::run_kill(cfg, k),
            None => routed::run_scaling(cfg),
        };
    }
    let entries = corpus();
    let total = usize::try_from(cfg.rps * cfg.duration_ms / 1000).unwrap_or(usize::MAX).max(1);

    let server = Arc::new(Server::start(ServeConfig {
        workers: cfg.workers,
        queue_bound: cfg.queue_bound,
        ..ServeConfig::default()
    }));

    // Warm-up: one unloaded tier-0 compile per corpus entry pins the
    // canonical checksum every burst response is checked against.
    // Nonces beyond the burst range keep these cache keys distinct too.
    let mut canonical: Vec<String> = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let line = proto_line(e, total + i, "warm");
        let r = server.handle_line(&line, "warmup");
        if r.code != 200 {
            return Err(format!(
                "warm-up compile failed for {}/{}: {}",
                e.kernel,
                e.machine,
                r.to_line().trim_end()
            ));
        }
        let rendered = r.to_line();
        canonical.push(Response::field_str(&rendered, "checksum").unwrap_or_default());
    }

    // The paced burst: `clients` closed-loop threads share one global
    // request index; request k launches no earlier than k/rps seconds in.
    let next = Arc::new(AtomicUsize::new(0));
    let entries = Arc::new(entries);
    let start = Instant::now();
    let mut clients = Vec::new();
    for c in 0..cfg.clients.max(1) {
        let server = Arc::clone(&server);
        let next = Arc::clone(&next);
        let entries = Arc::clone(&entries);
        let (seed, rps) = (cfg.seed, cfg.rps);
        clients.push(std::thread::spawn(move || {
            let mut samples = Vec::new();
            loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= total {
                    break;
                }
                let due = Duration::from_micros(k as u64 * 1_000_000 / rps.max(1));
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                let entry = pick(seed, k, entries.len());
                let line = proto_line(&entries[entry], k, &format!("client{c}"));
                let sent = Instant::now();
                let r = server.handle_line(&line, &format!("client{c}"));
                let rendered = r.to_line();
                samples.push(Sample {
                    entry,
                    code: r.code,
                    tier: Response::field_num(&rendered, "tier").unwrap_or(0),
                    checksum: Response::field_str(&rendered, "checksum").unwrap_or_default(),
                    micros: sent.elapsed().as_micros() as u64,
                });
            }
            samples
        }));
    }
    let mut samples: Vec<Sample> = Vec::with_capacity(total);
    for c in clients {
        samples.extend(c.join().expect("client thread"));
    }
    let elapsed = start.elapsed();
    server.drain();

    // ---- invariants (deterministic; stdout) ----
    let responses = samples.len();
    let dropped = total - responses;
    // Conformance: per (entry, tier) every 200's checksum must agree,
    // and at tier 0 it must equal the warm-up canon — the cache and the
    // shedding tiers must be invisible to correctness.
    let mut conforms = true;
    let mut tiered: std::collections::HashMap<(usize, u64), &str> =
        std::collections::HashMap::new();
    for s in samples.iter().filter(|s| s.code == 200) {
        let expect = if s.tier == 0 {
            canonical[s.entry].as_str()
        } else {
            tiered.entry((s.entry, s.tier)).or_insert(s.checksum.as_str())
        };
        if s.checksum != expect {
            conforms = false;
        }
    }

    let mut scheduled = vec![0u64; entries.len()];
    for k in 0..total {
        scheduled[pick(cfg.seed, k, entries.len())] += 1;
    }
    println!(
        "bench-serve seed={} rps={} duration_ms={} requests={} corpus={}",
        cfg.seed,
        cfg.rps,
        cfg.duration_ms,
        total,
        entries.len()
    );
    let rows: Vec<Vec<String>> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            vec![
                e.kernel.to_string(),
                e.machine.to_string(),
                scheduled[i].to_string(),
                canonical[i].clone(),
            ]
        })
        .collect();
    crate::print_table(&["kernel", "machine", "scheduled", "checksum"], &rows);
    println!(
        "responses={responses} dropped={dropped} conformance={}",
        if conforms { "ok" } else { "VIOLATED" }
    );

    // ---- timing-dependent numbers (stderr + JSON) ----
    let count = |code: u16| samples.iter().filter(|s| s.code == code).count() as u64;
    let (n200, n429, n500, n503, n504) =
        (count(200), count(429), count(500), count(503), count(504));
    let n400 = count(400);
    let degraded = samples.iter().filter(|s| s.code == 200 && s.tier > 0).count() as u64;
    let mut lat: Vec<u64> = samples.iter().map(|s| s.micros).collect();
    lat.sort_unstable();
    let pct = |p: usize| lat.get(lat.len().saturating_sub(1) * p / 100).copied().unwrap_or(0);
    let (p50, p95, p99, pmax) = (pct(50), pct(95), pct(99), lat.last().copied().unwrap_or(0));
    let elapsed_ms = elapsed.as_millis() as u64;
    let throughput = (responses as u64 * 1000).checked_div(elapsed_ms).unwrap_or(0);
    let shed_permille = n503 * 1000 / total.max(1) as u64;
    eprintln!(
        "bench-serve timing: clients={} workers={} bound={} elapsed_ms={elapsed_ms} \
         ok={n200} err400={n400} rate429={n429} panic500={n500} shed503={n503} deadline504={n504} \
         degraded={degraded} p50us={p50} p95us={p95} p99us={p99} maxus={pmax} \
         throughput_rps={throughput} shed_permille={shed_permille}",
        cfg.clients, cfg.workers, cfg.queue_bound
    );

    if !cfg.json_path.is_empty() {
        let json = format!(
            "{{\"bench\":\"serve\",\"seed\":{},\"rps\":{},\"duration_ms\":{},\"clients\":{},\
             \"workers\":{},\"queue_bound\":{},\"requests\":{},\"responses\":{},\"dropped\":{},\
             \"ok\":{n200},\"compile_errors\":{n400},\"rate_limited\":{n429},\"panics\":{n500},\
             \"shed\":{n503},\"deadline_expired\":{n504},\"degraded\":{degraded},\
             \"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99},\"max_us\":{pmax},\
             \"elapsed_ms\":{elapsed_ms},\"throughput_rps\":{throughput},\
             \"shed_permille\":{shed_permille},\"conformance\":\"{}\"}}\n",
            cfg.seed,
            cfg.rps,
            cfg.duration_ms,
            cfg.clients,
            cfg.workers,
            cfg.queue_bound,
            total,
            responses,
            dropped,
            if conforms { "ok" } else { "violated" }
        );
        // The report must parse back under the toolkit's own reader.
        debug_assert!(mcc_harness::json::parse_object(json.trim_end()).is_some());
        std::fs::File::create(&cfg.json_path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .map_err(|e| format!("writing {}: {e}", cfg.json_path))?;
    }

    if dropped != 0 {
        return Err(format!("{dropped} requests got no response"));
    }
    if !conforms {
        return Err("checksum conformance violated".to_string());
    }
    Ok(())
}

/// Renders the wire frame for request `k` of a corpus entry. The nonce
/// comment defeats the cache key without changing the compiled program.
fn proto_line(e: &Entry, k: usize, id_prefix: &str) -> String {
    mcc_serve::proto::compile_line(&format!("{id_prefix}-{k}"), e.machine, "yalll", &nonce_src(e, k))
}

/// The nonced source for request `k` — shared by the wire frame and the
/// analytic ring placement, which must hash byte-identical text.
fn nonce_src(e: &Entry, k: usize) -> String {
    format!("{}; nonce {k}\n", e.src)
}

/// The routed modes: `--backends N` scaling bursts over an in-process
/// fleet, and `--kill-at K` chaos bursts over spawned `mcc serve`
/// children with one shard SIGKILLed mid-run.
///
/// The determinism split is the same as the single-server mode, with
/// one addition: the *placement* stdout table is computed analytically
/// from the ring (a pure function of seed, corpus, and backend names),
/// never from which shard actually answered — hedging and failover make
/// the served counts timing-dependent, so those go to stderr and JSON.
mod routed {
    use super::*;
    use mcc_route::{Backend, InProcBackend, Router, RouteConfig, TcpBackend};
    use std::io::BufRead as _;
    use std::sync::Mutex;

    /// One request's outcome under the router.
    struct RSample {
        k: usize,
        entry: usize,
        code: u64,
        tier: u64,
        checksum: String,
        backend: String,
        micros: u64,
    }

    /// Fleet sizes for the scaling table: 1, 2, 4, … doubling up to and
    /// including `n`.
    fn fleet_sizes(n: usize) -> Vec<usize> {
        let mut v = Vec::new();
        let mut s = 1;
        while s < n {
            v.push(s);
            s *= 2;
        }
        v.push(n);
        v
    }

    /// Shard names for a fleet of `n` (ring placement hashes these, so
    /// they are part of the deterministic contract).
    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("b{i}")).collect()
    }

    /// The analytic primary-placement counts for the burst: which shard
    /// the ring gives each scheduled request, ignoring runtime health.
    pub(super) fn placement_counts(cfg: &LoadConfig, entries: &[Entry], n: usize, total: usize, nonce_base: usize) -> Vec<u64> {
        let ring = mcc_route::Ring::new(&names(n), RouteConfig::default().vnodes);
        let mut counts = vec![0u64; n];
        for k in 0..total {
            let e = &entries[pick(cfg.seed, k, entries.len())];
            let point = mcc_route::point_for(e.machine, "yalll", &nonce_src(e, nonce_base + k));
            counts[ring.primary(point)] += 1;
        }
        counts
    }

    /// The paced burst, fired at a router. Same schedule as the
    /// single-server mode; `kill` (request index, action) runs *before*
    /// that request is sent, in the client thread that drew it.
    fn burst(
        router: &Arc<Router>,
        entries: &Arc<Vec<Entry>>,
        cfg: &LoadConfig,
        total: usize,
        nonce_base: usize,
        kill: Option<(usize, Arc<dyn Fn() + Send + Sync>)>,
    ) -> Vec<RSample> {
        let next = Arc::new(AtomicUsize::new(0));
        let start = Instant::now();
        let mut clients = Vec::new();
        for c in 0..cfg.clients.max(1) {
            let router = Arc::clone(router);
            let next = Arc::clone(&next);
            let entries = Arc::clone(entries);
            let (seed, rps) = (cfg.seed, cfg.rps);
            let kill = kill.clone();
            clients.push(std::thread::spawn(move || {
                let mut samples = Vec::new();
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= total {
                        break;
                    }
                    let due = Duration::from_micros(k as u64 * 1_000_000 / rps.max(1));
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    if let Some((at, ref action)) = kill {
                        if k == at {
                            action();
                        }
                    }
                    let entry = pick(seed, k, entries.len());
                    let line = proto_line(&entries[entry], nonce_base + k, &format!("client{c}"));
                    let sent = Instant::now();
                    let resp = router.handle_line(&line, &format!("client{c}"));
                    samples.push(RSample {
                        k,
                        entry,
                        code: Response::field_num(&resp, "code").unwrap_or(0),
                        tier: Response::field_num(&resp, "tier").unwrap_or(0),
                        checksum: Response::field_str(&resp, "checksum").unwrap_or_default(),
                        backend: Response::field_str(&resp, "backend").unwrap_or_default(),
                        micros: sent.elapsed().as_micros() as u64,
                    });
                }
                samples
            }));
        }
        let mut samples = Vec::with_capacity(total);
        for c in clients {
            samples.extend(c.join().expect("client thread"));
        }
        samples
    }

    /// Warm-up through the router: pins the canonical tier-0 checksum
    /// per corpus entry (and warms every shard's connection).
    fn warm(router: &Router, entries: &[Entry], nonce_base: usize) -> Result<Vec<String>, String> {
        let mut canonical = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let line = proto_line(e, nonce_base + i, "warm");
            let resp = router.handle_line(&line, "warmup");
            if Response::field_num(&resp, "code") != Some(200) {
                return Err(format!(
                    "warm-up compile failed for {}/{}: {}",
                    e.kernel,
                    e.machine,
                    resp.trim_end()
                ));
            }
            canonical.push(Response::field_str(&resp, "checksum").unwrap_or_default());
        }
        Ok(canonical)
    }

    /// Checks checksum conformance: tier-0 responses must match the
    /// warm-up canon; within a `(entry, tier)` pair all must agree.
    fn conformance(samples: &[RSample], canonical: &[String]) -> bool {
        let mut ok = true;
        let mut tiered: std::collections::HashMap<(usize, u64), &str> =
            std::collections::HashMap::new();
        for s in samples.iter().filter(|s| s.code == 200) {
            let expect = if s.tier == 0 {
                canonical[s.entry].as_str()
            } else {
                tiered.entry((s.entry, s.tier)).or_insert(s.checksum.as_str())
            };
            if s.checksum != expect {
                ok = false;
            }
        }
        ok
    }

    /// Latency percentile helper.
    fn percentiles(samples: &[RSample]) -> (u64, u64, u64) {
        let mut lat: Vec<u64> = samples.iter().map(|s| s.micros).collect();
        lat.sort_unstable();
        let pct = |p: usize| lat.get(lat.len().saturating_sub(1) * p / 100).copied().unwrap_or(0);
        (pct(50), pct(95), pct(99))
    }

    /// `--backends N` without `--kill-at`: one routed burst per fleet
    /// size (1, 2, 4, … N) over in-process shards, with the analytic
    /// placement table on stdout and the scaling numbers in the JSON.
    pub(super) fn run_scaling(cfg: &LoadConfig) -> Result<(), String> {
        let entries = Arc::new(corpus());
        let total = usize::try_from(cfg.rps * cfg.duration_ms / 1000).unwrap_or(usize::MAX).max(1);
        // Distinct nonce ranges per fleet run: the cache is process-wide
        // and every request must stay a genuine cold compile.
        let stride = total + entries.len() + 1;

        println!(
            "bench-serve scaling seed={} rps={} duration_ms={} requests={} corpus={} fleets={:?}",
            cfg.seed,
            cfg.rps,
            cfg.duration_ms,
            total,
            entries.len(),
            fleet_sizes(cfg.backends)
        );

        let mut scaling_rows = Vec::new();
        for (run_idx, n) in fleet_sizes(cfg.backends).into_iter().enumerate() {
            let nonce_base = run_idx * stride;
            let shards: Vec<Arc<dyn Backend>> = names(n)
                .iter()
                .map(|name| {
                    Arc::new(InProcBackend::new(
                        name,
                        Arc::new(Server::start(ServeConfig {
                            workers: cfg.workers,
                            queue_bound: cfg.queue_bound,
                            ..ServeConfig::default()
                        })),
                    )) as Arc<dyn Backend>
                })
                .collect();
            let router = Arc::new(Router::new(
                shards,
                RouteConfig {
                    seed: cfg.seed,
                    ..RouteConfig::default()
                },
            ));

            let canonical = warm(&router, &entries, nonce_base + total)?;
            let start = Instant::now();
            let samples = burst(&router, &entries, cfg, total, nonce_base, None);
            let elapsed_ms = start.elapsed().as_millis() as u64;
            router.drain();

            let dropped = total - samples.len();
            let conforms = conformance(&samples, &canonical);
            let placement = placement_counts(cfg, &entries, n, total, nonce_base);
            let placed: Vec<String> = placement
                .iter()
                .enumerate()
                .map(|(i, c)| format!("b{i}:{c}"))
                .collect();
            println!(
                "scaling backends={n} requests={total} placement=[{}] dropped={dropped} conformance={}",
                placed.join(" "),
                if conforms { "ok" } else { "VIOLATED" }
            );

            let ok = samples.iter().filter(|s| s.code == 200).count() as u64;
            let shed = samples.iter().filter(|s| s.code == 503).count() as u64;
            let (p50, p95, p99) = percentiles(&samples);
            let throughput = (samples.len() as u64 * 1000).checked_div(elapsed_ms).unwrap_or(0);
            let c = router.counters();
            let (failovers, hedges) = (
                c.failovers.load(Ordering::Relaxed),
                c.hedges.load(Ordering::Relaxed),
            );
            eprintln!(
                "scaling backends={n} elapsed_ms={elapsed_ms} ok={ok} shed503={shed} \
                 p50us={p50} p95us={p95} p99us={p99} throughput_rps={throughput} \
                 failovers={failovers} hedges={hedges}"
            );
            scaling_rows.push(format!(
                "{{\"backends\":{n},\"requests\":{total},\"ok\":{ok},\"shed\":{shed},\
                 \"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99},\
                 \"throughput_rps\":{throughput},\"failovers\":{failovers},\
                 \"hedges\":{hedges}}}"
            ));

            if dropped != 0 {
                return Err(format!("scaling backends={n}: {dropped} requests got no response"));
            }
            if !conforms {
                return Err(format!("scaling backends={n}: checksum conformance violated"));
            }
        }

        if !cfg.json_path.is_empty() {
            let json = format!(
                "{{\"bench\":\"serve\",\"mode\":\"scaling\",\"seed\":{},\"rps\":{},\
                 \"duration_ms\":{},\"clients\":{},\"workers\":{},\"queue_bound\":{},\
                 \"backends\":{},\"scaling\":[{}]}}\n",
                cfg.seed,
                cfg.rps,
                cfg.duration_ms,
                cfg.clients,
                cfg.workers,
                cfg.queue_bound,
                cfg.backends,
                scaling_rows.join(",")
            );
            std::fs::File::create(&cfg.json_path)
                .and_then(|mut f| f.write_all(json.as_bytes()))
                .map_err(|e| format!("writing {}: {e}", cfg.json_path))?;
        }
        Ok(())
    }

    /// Deterministic overload proof for the kill mode: after the burst,
    /// concentrate more in-flight cold compiles on one surviving shard
    /// than its admission bound admits. The shard must answer the
    /// overflow with structured `503`s — shedding, not queueing without
    /// bound — and the router must pass them through untouched. Keys are
    /// chosen analytically so every probe request is ring-owned by the
    /// target shard; the probe stops shortly after the first shed.
    fn overload_probe(
        router: &Arc<Router>,
        entries: &Arc<Vec<Entry>>,
        cfg: &LoadConfig,
        target: usize,
        n: usize,
        nonce_base: usize,
    ) -> u64 {
        let ring = mcc_route::Ring::new(&names(n), RouteConfig::default().vnodes);
        let threads = cfg.queue_bound * 2 + 4;
        let cap = threads * 50;
        // Scan nonces for keys the ring places on the target shard.
        let mut owned = Vec::with_capacity(cap);
        let mut j = 0usize;
        while owned.len() < cap && j < cap * n * 4 {
            let entry = pick(cfg.seed, j, entries.len());
            let e = &entries[entry];
            let point = mcc_route::point_for(e.machine, "yalll", &nonce_src(e, nonce_base + j));
            if ring.primary(point) == target {
                owned.push((j, entry));
            }
            j += 1;
        }
        let owned = Arc::new(owned);
        let shed = Arc::new(AtomicU64::new(0));
        let next = Arc::new(AtomicUsize::new(0));
        let mut probes = Vec::new();
        for _ in 0..threads {
            let (router, entries) = (Arc::clone(router), Arc::clone(entries));
            let (owned, shed, next) = (Arc::clone(&owned), Arc::clone(&shed), Arc::clone(&next));
            probes.push(std::thread::spawn(move || loop {
                if shed.load(Ordering::Relaxed) > 0 {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(j, entry)) = owned.get(i) else { break };
                let line = proto_line(&entries[entry], nonce_base + j, "overload");
                let resp = router.handle_line(&line, "overload");
                if Response::field_num(&resp, "code") == Some(503) {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for p in probes {
            let _ = p.join();
        }
        shed.load(Ordering::Relaxed)
    }

    /// One spawned `mcc serve` child and the address it bound.
    pub(super) struct Shard {
        pub(super) child: Arc<Mutex<std::process::Child>>,
        pub(super) addr: String,
    }

    /// Kills every child on drop — panics and early `?` returns must
    /// not leak daemon processes.
    pub(super) struct FleetGuard(pub(super) Vec<Shard>);

    impl Drop for FleetGuard {
        fn drop(&mut self) {
            for s in &self.0 {
                mcc_fleet::child::reap(&mut s.child.lock().unwrap());
            }
        }
    }

    /// Spawns one `mcc serve --port 0` child with its own cache dir and
    /// parses the bound address off its stderr banner.
    pub(super) fn spawn_shard(cfg: &LoadConfig, cache_dir: &std::path::Path) -> Result<Shard, String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut child = std::process::Command::new(exe)
            .args([
                "serve",
                "--port",
                "0",
                "--jobs",
                &cfg.workers.to_string(),
                "--queue-bound",
                &cfg.queue_bound.to_string(),
            ])
            .env("MCC_CACHE_DIR", cache_dir)
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawning mcc serve: {e}"))?;
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = std::io::BufReader::new(stderr);
        let mut addr = None;
        let mut line = String::new();
        while reader.read_line(&mut line).map_err(|e| e.to_string())? > 0 {
            if let Some(rest) = line.split("listening on ").nth(1) {
                addr = rest.split_whitespace().next().map(str::to_string);
                break;
            }
            line.clear();
        }
        // Keep draining the child's stderr so it never blocks on a full
        // pipe; the output itself is discarded.
        std::thread::spawn(move || {
            let mut sink = String::new();
            loop {
                sink.clear();
                match reader.read_line(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        });
        let addr = addr.ok_or("mcc serve child never reported its address")?;
        Ok(Shard {
            child: Arc::new(Mutex::new(child)),
            addr,
        })
    }

    /// `--backends N --kill-at K`: a routed burst over real `mcc serve`
    /// children with the seed-chosen victim SIGKILLed when request `K`
    /// is drawn. Proves zero dropped requests, checksum conformance,
    /// failover to the ring successor, and victim quiescence.
    pub(super) fn run_kill(cfg: &LoadConfig, kill_at: usize) -> Result<(), String> {
        if cfg.backends < 2 {
            return Err("--kill-at needs --backends >= 2 (someone must survive)".to_string());
        }
        let entries = Arc::new(corpus());
        let total = usize::try_from(cfg.rps * cfg.duration_ms / 1000).unwrap_or(usize::MAX).max(1);
        if kill_at >= total {
            return Err(format!("--kill-at {kill_at} is past the last request ({total})"));
        }

        let n = cfg.backends;
        let victim = (splitmix64(cfg.seed ^ 0xdead) % n as u64) as usize;
        let victim_name = format!("b{victim}");

        let base = std::env::temp_dir().join(format!("mcc-bench-fleet-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let mut fleet = FleetGuard(Vec::new());
        for i in 0..n {
            fleet.0.push(spawn_shard(cfg, &base.join(format!("shard{i}")))?);
        }

        let backends: Vec<Arc<dyn Backend>> = fleet
            .0
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Arc::new(TcpBackend::new(&format!("b{i}"), &s.addr, cfg.seed, 2)) as Arc<dyn Backend>
            })
            .collect();
        let router = Arc::new(Router::new(
            backends,
            RouteConfig {
                seed: cfg.seed,
                probe_interval: Duration::from_millis(25),
                hedge_after: Some(Duration::from_millis(100)),
                ..RouteConfig::default()
            },
        ));
        Router::start_probes(&router);

        let canonical = warm(&router, &entries, total)?;
        let kill_child = Arc::clone(&fleet.0[victim].child);
        let action: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
            // Kill *and wait*: a SIGKILL without the `waitpid` leaves a
            // zombie holding a process-table slot for the rest of the
            // run. The fleet crate's reaper does both.
            mcc_fleet::child::reap(&mut kill_child.lock().unwrap());
        });
        let start = Instant::now();
        let samples = burst(&router, &entries, cfg, total, 0, Some((kill_at, action)));
        let elapsed_ms = start.elapsed().as_millis() as u64;
        // Overload proof, while the survivors are still up: more
        // concurrent cold compiles than one shard's admission bound must
        // shed structured 503s, never queue without bound.
        let probe_target = (0..n).find(|&i| i != victim).expect("backends >= 2");
        let overload_shed =
            overload_probe(&router, &entries, cfg, probe_target, n, total + entries.len());
        router.drain();

        // ---- invariants ----
        let dropped = total - samples.len();
        let conforms = conformance(&samples, &canonical);
        let c = router.counters();
        let failovers = c.failovers.load(Ordering::Relaxed);
        // Victim quiescence: past the kill index plus a scheduling
        // margin, the dead shard must serve nothing. The margin covers
        // requests drawn before the kill but sent around it.
        let margin = cfg.clients * 2 + (cfg.rps / 10) as usize;
        let late_victim = samples
            .iter()
            .filter(|s| s.k >= kill_at + margin && s.backend == victim_name)
            .count();
        // Successor takeover: at least one post-kill request whose ring
        // primary was the victim answered 200 from a surviving shard.
        let ring = mcc_route::Ring::new(&names(n), RouteConfig::default().vnodes);
        let takeover = samples.iter().any(|s| {
            let e = &entries[s.entry];
            s.k > kill_at
                && s.code == 200
                && ring.primary(mcc_route::point_for(e.machine, "yalll", &nonce_src(e, s.k)))
                    == victim
                && !s.backend.is_empty()
                && s.backend != victim_name
        });

        println!(
            "bench-serve kill seed={} rps={} duration_ms={} requests={} backends={n} \
             kill_at={kill_at} victim={victim_name}",
            cfg.seed, cfg.rps, cfg.duration_ms, total
        );
        println!(
            "dropped={dropped} conformance={} victim_quiesced={} successor_takeover={} \
             overload_shed={}",
            if conforms { "ok" } else { "VIOLATED" },
            if late_victim == 0 { "ok" } else { "VIOLATED" },
            if takeover { "ok" } else { "VIOLATED" },
            if overload_shed > 0 { "ok" } else { "VIOLATED" }
        );

        let ok = samples.iter().filter(|s| s.code == 200).count() as u64;
        let shed = samples.iter().filter(|s| s.code == 503).count() as u64;
        let (p50, p95, p99) = percentiles(&samples);
        let throughput = (samples.len() as u64 * 1000).checked_div(elapsed_ms).unwrap_or(0);
        let mut served: Vec<String> = Vec::new();
        for name in router.backend_names() {
            served.push(format!("{name}:{}", router.served_of(&name).unwrap_or(0)));
        }
        eprintln!(
            "kill timing: clients={} elapsed_ms={elapsed_ms} ok={ok} shed503={shed} \
             overload_shed={overload_shed} p50us={p50} p95us={p95} p99us={p99} \
             throughput_rps={throughput} failovers={failovers} hedges={} served=[{}]",
            cfg.clients,
            c.hedges.load(Ordering::Relaxed),
            served.join(" ")
        );

        if !cfg.json_path.is_empty() {
            let json = format!(
                "{{\"bench\":\"serve\",\"mode\":\"kill\",\"seed\":{},\"rps\":{},\
                 \"duration_ms\":{},\"clients\":{},\"backends\":{n},\"kill_at\":{kill_at},\
                 \"victim\":\"{victim_name}\",\"requests\":{total},\"responses\":{},\
                 \"dropped\":{dropped},\"ok\":{ok},\"shed\":{},\
                 \"overload_shed\":{overload_shed},\"failovers\":{failovers},\
                 \"hedges\":{},\"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99},\
                 \"throughput_rps\":{throughput},\"elapsed_ms\":{elapsed_ms},\
                 \"conformance\":\"{}\"}}\n",
                cfg.seed,
                cfg.rps,
                cfg.duration_ms,
                cfg.clients,
                samples.len(),
                shed + overload_shed,
                c.hedges.load(Ordering::Relaxed),
                if conforms { "ok" } else { "violated" }
            );
            std::fs::File::create(&cfg.json_path)
                .and_then(|mut f| f.write_all(json.as_bytes()))
                .map_err(|e| format!("writing {}: {e}", cfg.json_path))?;
        }

        drop(fleet);
        let _ = std::fs::remove_dir_all(&base);

        if dropped != 0 {
            return Err(format!("{dropped} requests got no response"));
        }
        if !conforms {
            return Err("checksum conformance violated".to_string());
        }
        if failovers == 0 {
            return Err("killing a shard mid-burst produced no failovers".to_string());
        }
        if late_victim != 0 {
            return Err(format!(
                "{late_victim} responses attributed to {victim_name} after the kill margin"
            ));
        }
        if !takeover {
            return Err("no victim-owned key was served by a surviving shard".to_string());
        }
        if overload_shed == 0 {
            return Err("overload probe produced no 503 shed on the surviving shard".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_all_yalll_machines() {
        let c = corpus();
        assert!(c.len() >= 8, "4 yalll kernels x 4 machines expected, got {}", c.len());
        let machines: std::collections::HashSet<_> = c.iter().map(|e| e.machine).collect();
        assert_eq!(machines.len(), 4);
    }

    #[test]
    fn pick_is_deterministic_and_in_range() {
        for k in 0..1000 {
            assert_eq!(pick(7, k, 16), pick(7, k, 16));
            assert!(pick(7, k, 16) < 16);
        }
        assert_ne!(
            (0..64).map(|k| pick(1, k, 16)).collect::<Vec<_>>(),
            (0..64).map(|k| pick(2, k, 16)).collect::<Vec<_>>(),
            "different seeds give different schedules"
        );
    }

    #[test]
    fn nonce_comment_compiles_to_the_same_artifact() {
        let m = machines::by_name("hm1").unwrap();
        let k = kernels::suite().into_iter().find(|k| k.lang == Lang::Yalll).unwrap();
        let src = (k.source)(&m);
        let c = mcc_core::Compiler::new(m);
        let a = c.compile_contained(mcc_core::SourceLang::Yalll, &src).unwrap();
        let b = c
            .compile_contained(mcc_core::SourceLang::Yalll, &format!("{src}; nonce 99\n"))
            .unwrap();
        assert_eq!(
            mcc_cache::serialize_artifact(&a),
            mcc_cache::serialize_artifact(&b),
            "a nonce comment must be invisible to the artifact"
        );
    }

    #[test]
    fn tiny_run_is_clean_and_deterministic_on_stdout_invariants() {
        let cfg = LoadConfig {
            clients: 3,
            rps: 400,
            duration_ms: 250,
            seed: 7,
            workers: 2,
            queue_bound: 4,
            json_path: String::new(),
            ..LoadConfig::default()
        };
        run(&cfg).expect("tiny bench run upholds its invariants");
    }

    #[test]
    fn tiny_scaling_run_is_clean_over_two_fleet_sizes() {
        let cfg = LoadConfig {
            clients: 2,
            rps: 400,
            duration_ms: 150,
            seed: 11,
            workers: 2,
            queue_bound: 8,
            json_path: String::new(),
            backends: 2,
            ..LoadConfig::default()
        };
        run(&cfg).expect("tiny scaling run upholds its invariants");
    }

    #[test]
    fn soak_mode_rejects_bad_configurations() {
        let lone = LoadConfig {
            backends: 1,
            chaos_soak: true,
            json_path: String::new(),
            ..LoadConfig::default()
        };
        assert!(run(&lone).unwrap_err().contains("--backends >= 2"));
        let short = LoadConfig {
            backends: 2,
            chaos_soak: true,
            bursts: 2,
            json_path: String::new(),
            ..LoadConfig::default()
        };
        assert!(run(&short).unwrap_err().contains("--bursts >= 4"));
    }

    #[test]
    fn kill_mode_rejects_bad_configurations() {
        let lone = LoadConfig {
            backends: 1,
            kill_at: Some(5),
            json_path: String::new(),
            ..LoadConfig::default()
        };
        assert!(run(&lone).unwrap_err().contains("--backends >= 2"));
        let late = LoadConfig {
            backends: 2,
            kill_at: Some(usize::MAX),
            json_path: String::new(),
            ..LoadConfig::default()
        };
        assert!(run(&late).unwrap_err().contains("past the last request"));
    }
}
