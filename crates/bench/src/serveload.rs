//! The `mcc bench-serve` closed-loop load generator.
//!
//! Drives an in-process [`mcc_serve::Server`] with a seeded, paced burst
//! and separates its output by determinism:
//!
//! * **stdout** carries only what is a pure function of `(seed, rps,
//!   duration)` — the scheduled request mix per corpus entry, the
//!   canonical tier-0 checksums, and the accounting invariants
//!   (`responses == requests`, `dropped == 0`, checksum conformance).
//!   It is byte-identical across `--clients` and worker counts, which is
//!   what CI diffs.
//! * **stderr and `BENCH_serve.json`** carry the timing-dependent
//!   numbers: the code histogram, shed/degrade counts, latency
//!   percentiles, and throughput.
//!
//! Every request appends a distinct YALLL comment line (`; nonce k`), so
//! the content-addressed cache sees a fresh key and every request costs a
//! real compile — that is what fills the queue and exercises the shedding
//! tiers — while the *artifact* (and therefore the checksum) stays
//! identical per `(kernel, machine, tier)`, because comments never reach
//! the parser.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcc_machine::machines;
use mcc_serve::{proto::Response, ServeConfig, Server};

use crate::kernels::{self, Lang};

/// Load-generator tuning (the `bench-serve` CLI flags).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Paced request rate, requests/second (global, not per client).
    pub rps: u64,
    /// Length of the schedule; total requests = `rps × duration / 1000`.
    pub duration_ms: u64,
    /// Seed for the request mix.
    pub seed: u64,
    /// Server worker threads.
    pub workers: usize,
    /// Server admission bound.
    pub queue_bound: usize,
    /// Where to write the JSON report (empty = skip).
    pub json_path: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            rps: 200,
            duration_ms: 2_000,
            seed: 42,
            workers: 2,
            queue_bound: 8,
            json_path: "BENCH_serve.json".to_string(),
        }
    }
}

/// One corpus entry: a YALLL kernel rendered for one reference machine.
struct Entry {
    kernel: &'static str,
    machine: &'static str,
    src: String,
}

/// The bench corpus: every YALLL kernel of the shared suite on every
/// reference machine. (YALLL only, because its `;` comments carry the
/// cache-defeating nonce without touching the parsed program.)
fn corpus() -> Vec<Entry> {
    let mut out = Vec::new();
    for m in machines::all() {
        for k in kernels::suite() {
            if k.lang == Lang::Yalll {
                out.push(Entry {
                    kernel: k.name,
                    machine: leak_name(&m.name),
                    src: (k.source)(&m),
                });
            }
        }
    }
    out
}

/// Machine names in the suite are `String`s on the descriptor; the bench
/// table wants `&'static str`. The corpus is built once per process.
fn leak_name(name: &str) -> &'static str {
    Box::leak(name.to_string().into_boxed_str())
}

/// SplitMix64: the toolkit's standard seedable mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which corpus entry request `k` compiles — a pure function of the seed.
fn pick(seed: u64, k: usize, n: usize) -> usize {
    (splitmix64(seed ^ (k as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)) % n as u64) as usize
}

/// One client's observation of one request.
struct Sample {
    entry: usize,
    code: u16,
    tier: u64,
    checksum: String,
    micros: u64,
}

/// Runs the load, prints the deterministic table to stdout and the
/// timing table to stderr, writes the JSON report. Returns `Err` with a
/// diagnostic when an invariant breaks (a dropped response or a checksum
/// nonconformance) — the caller turns that into a nonzero exit.
///
/// # Errors
///
/// Invariant violations and JSON-report I/O errors.
pub fn run(cfg: &LoadConfig) -> Result<(), String> {
    let entries = corpus();
    let total = usize::try_from(cfg.rps * cfg.duration_ms / 1000).unwrap_or(usize::MAX).max(1);

    let server = Arc::new(Server::start(ServeConfig {
        workers: cfg.workers,
        queue_bound: cfg.queue_bound,
        ..ServeConfig::default()
    }));

    // Warm-up: one unloaded tier-0 compile per corpus entry pins the
    // canonical checksum every burst response is checked against.
    // Nonces beyond the burst range keep these cache keys distinct too.
    let mut canonical: Vec<String> = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let line = proto_line(e, total + i, "warm");
        let r = server.handle_line(&line, "warmup");
        if r.code != 200 {
            return Err(format!(
                "warm-up compile failed for {}/{}: {}",
                e.kernel,
                e.machine,
                r.to_line().trim_end()
            ));
        }
        let rendered = r.to_line();
        canonical.push(Response::field_str(&rendered, "checksum").unwrap_or_default());
    }

    // The paced burst: `clients` closed-loop threads share one global
    // request index; request k launches no earlier than k/rps seconds in.
    let next = Arc::new(AtomicUsize::new(0));
    let entries = Arc::new(entries);
    let start = Instant::now();
    let mut clients = Vec::new();
    for c in 0..cfg.clients.max(1) {
        let server = Arc::clone(&server);
        let next = Arc::clone(&next);
        let entries = Arc::clone(&entries);
        let (seed, rps) = (cfg.seed, cfg.rps);
        clients.push(std::thread::spawn(move || {
            let mut samples = Vec::new();
            loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= total {
                    break;
                }
                let due = Duration::from_micros(k as u64 * 1_000_000 / rps.max(1));
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                let entry = pick(seed, k, entries.len());
                let line = proto_line(&entries[entry], k, &format!("client{c}"));
                let sent = Instant::now();
                let r = server.handle_line(&line, &format!("client{c}"));
                let rendered = r.to_line();
                samples.push(Sample {
                    entry,
                    code: r.code,
                    tier: Response::field_num(&rendered, "tier").unwrap_or(0),
                    checksum: Response::field_str(&rendered, "checksum").unwrap_or_default(),
                    micros: sent.elapsed().as_micros() as u64,
                });
            }
            samples
        }));
    }
    let mut samples: Vec<Sample> = Vec::with_capacity(total);
    for c in clients {
        samples.extend(c.join().expect("client thread"));
    }
    let elapsed = start.elapsed();
    server.drain();

    // ---- invariants (deterministic; stdout) ----
    let responses = samples.len();
    let dropped = total - responses;
    // Conformance: per (entry, tier) every 200's checksum must agree,
    // and at tier 0 it must equal the warm-up canon — the cache and the
    // shedding tiers must be invisible to correctness.
    let mut conforms = true;
    let mut tiered: std::collections::HashMap<(usize, u64), &str> =
        std::collections::HashMap::new();
    for s in samples.iter().filter(|s| s.code == 200) {
        let expect = if s.tier == 0 {
            canonical[s.entry].as_str()
        } else {
            tiered.entry((s.entry, s.tier)).or_insert(s.checksum.as_str())
        };
        if s.checksum != expect {
            conforms = false;
        }
    }

    let mut scheduled = vec![0u64; entries.len()];
    for k in 0..total {
        scheduled[pick(cfg.seed, k, entries.len())] += 1;
    }
    println!(
        "bench-serve seed={} rps={} duration_ms={} requests={} corpus={}",
        cfg.seed,
        cfg.rps,
        cfg.duration_ms,
        total,
        entries.len()
    );
    let rows: Vec<Vec<String>> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            vec![
                e.kernel.to_string(),
                e.machine.to_string(),
                scheduled[i].to_string(),
                canonical[i].clone(),
            ]
        })
        .collect();
    crate::print_table(&["kernel", "machine", "scheduled", "checksum"], &rows);
    println!(
        "responses={responses} dropped={dropped} conformance={}",
        if conforms { "ok" } else { "VIOLATED" }
    );

    // ---- timing-dependent numbers (stderr + JSON) ----
    let count = |code: u16| samples.iter().filter(|s| s.code == code).count() as u64;
    let (n200, n429, n500, n503, n504) =
        (count(200), count(429), count(500), count(503), count(504));
    let n400 = count(400);
    let degraded = samples.iter().filter(|s| s.code == 200 && s.tier > 0).count() as u64;
    let mut lat: Vec<u64> = samples.iter().map(|s| s.micros).collect();
    lat.sort_unstable();
    let pct = |p: usize| lat.get(lat.len().saturating_sub(1) * p / 100).copied().unwrap_or(0);
    let (p50, p95, p99, pmax) = (pct(50), pct(95), pct(99), lat.last().copied().unwrap_or(0));
    let elapsed_ms = elapsed.as_millis() as u64;
    let throughput = (responses as u64 * 1000).checked_div(elapsed_ms).unwrap_or(0);
    let shed_permille = n503 * 1000 / total.max(1) as u64;
    eprintln!(
        "bench-serve timing: clients={} workers={} bound={} elapsed_ms={elapsed_ms} \
         ok={n200} err400={n400} rate429={n429} panic500={n500} shed503={n503} deadline504={n504} \
         degraded={degraded} p50us={p50} p95us={p95} p99us={p99} maxus={pmax} \
         throughput_rps={throughput} shed_permille={shed_permille}",
        cfg.clients, cfg.workers, cfg.queue_bound
    );

    if !cfg.json_path.is_empty() {
        let json = format!(
            "{{\"bench\":\"serve\",\"seed\":{},\"rps\":{},\"duration_ms\":{},\"clients\":{},\
             \"workers\":{},\"queue_bound\":{},\"requests\":{},\"responses\":{},\"dropped\":{},\
             \"ok\":{n200},\"compile_errors\":{n400},\"rate_limited\":{n429},\"panics\":{n500},\
             \"shed\":{n503},\"deadline_expired\":{n504},\"degraded\":{degraded},\
             \"p50_us\":{p50},\"p95_us\":{p95},\"p99_us\":{p99},\"max_us\":{pmax},\
             \"elapsed_ms\":{elapsed_ms},\"throughput_rps\":{throughput},\
             \"shed_permille\":{shed_permille},\"conformance\":\"{}\"}}\n",
            cfg.seed,
            cfg.rps,
            cfg.duration_ms,
            cfg.clients,
            cfg.workers,
            cfg.queue_bound,
            total,
            responses,
            dropped,
            if conforms { "ok" } else { "violated" }
        );
        // The report must parse back under the toolkit's own reader.
        debug_assert!(mcc_harness::json::parse_object(json.trim_end()).is_some());
        std::fs::File::create(&cfg.json_path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .map_err(|e| format!("writing {}: {e}", cfg.json_path))?;
    }

    if dropped != 0 {
        return Err(format!("{dropped} requests got no response"));
    }
    if !conforms {
        return Err("checksum conformance violated".to_string());
    }
    Ok(())
}

/// Renders the wire frame for request `k` of a corpus entry. The nonce
/// comment defeats the cache key without changing the compiled program.
fn proto_line(e: &Entry, k: usize, id_prefix: &str) -> String {
    let src = format!("{}; nonce {k}\n", e.src);
    mcc_serve::proto::compile_line(&format!("{id_prefix}-{k}"), e.machine, "yalll", &src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_all_yalll_machines() {
        let c = corpus();
        assert!(c.len() >= 8, "4 yalll kernels x 4 machines expected, got {}", c.len());
        let machines: std::collections::HashSet<_> = c.iter().map(|e| e.machine).collect();
        assert_eq!(machines.len(), 4);
    }

    #[test]
    fn pick_is_deterministic_and_in_range() {
        for k in 0..1000 {
            assert_eq!(pick(7, k, 16), pick(7, k, 16));
            assert!(pick(7, k, 16) < 16);
        }
        assert_ne!(
            (0..64).map(|k| pick(1, k, 16)).collect::<Vec<_>>(),
            (0..64).map(|k| pick(2, k, 16)).collect::<Vec<_>>(),
            "different seeds give different schedules"
        );
    }

    #[test]
    fn nonce_comment_compiles_to_the_same_artifact() {
        let m = machines::by_name("hm1").unwrap();
        let k = kernels::suite().into_iter().find(|k| k.lang == Lang::Yalll).unwrap();
        let src = (k.source)(&m);
        let c = mcc_core::Compiler::new(m);
        let a = c.compile_contained(mcc_core::SourceLang::Yalll, &src).unwrap();
        let b = c
            .compile_contained(mcc_core::SourceLang::Yalll, &format!("{src}; nonce 99\n"))
            .unwrap();
        assert_eq!(
            mcc_cache::serialize_artifact(&a),
            mcc_cache::serialize_artifact(&b),
            "a nonce comment must be invisible to the artifact"
        );
    }

    #[test]
    fn tiny_run_is_clean_and_deterministic_on_stdout_invariants() {
        let cfg = LoadConfig {
            clients: 3,
            rps: 400,
            duration_ms: 250,
            seed: 7,
            workers: 2,
            queue_bound: 4,
            json_path: String::new(),
        };
        run(&cfg).expect("tiny bench run upholds its invariants");
    }
}
