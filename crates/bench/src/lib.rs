//! # `mcc-bench` — the experiment harnesses
//!
//! One module per experiment of EXPERIMENTS.md (E1–E8), a shared kernel
//! suite, genuinely hand-written microcode baselines, and the MAC-1
//! interpreter microprogram. Each `exp_*` binary regenerates one table.

pub mod campaign;
pub mod experiments;
pub mod handwritten;
pub mod kernels;
pub mod macrointerp;

/// Prints a row-aligned table: header plus rows of equal arity.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for r in rows {
        line(r.clone());
    }
}
