//! # `mcc-bench` — the experiment harnesses
//!
//! One module per experiment of EXPERIMENTS.md (E1–E8), a shared kernel
//! suite, genuinely hand-written microcode baselines, and the MAC-1
//! interpreter microprogram. Each `exp_*` binary regenerates one table.

pub mod campaign;
pub mod experiments;
pub mod handwritten;
pub mod kernels;
pub mod macrointerp;
pub mod serveload;

/// Attaches the shared on-disk compilation cache for an `exp_*` binary.
/// Failure to open the store is a warning, never an error — the
/// in-memory tier still memoizes repeated kernels within the run.
pub fn attach_cache(tool: &str) {
    if mcc_cache::enabled() {
        if let Err(e) = mcc_cache::attach_default_disk() {
            eprintln!("{tool}: disk cache unavailable ({e}); continuing in-memory");
        }
    }
}

/// Renders a row-aligned table (header plus rows of equal arity) to a
/// string — the single formatter behind [`print_table`], the golden
/// conformance suite, and the batch `exp_all` driver.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write;
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out, "{}", s.trim_end());
    };
    let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    line(&mut out, &header);
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for r in rows {
        line(&mut out, r);
    }
    out
}

/// Prints a row-aligned table: header plus rows of equal arity.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(header, rows));
}
