//! Genuinely hand-written microcode for HM-1 — the "expert
//! microprogrammer" baseline of experiments E1 and E5.
//!
//! These programs use the tricks a human expert uses and a straightforward
//! compiler does not:
//!
//! * **flag reuse** — the loop's final ALU operation doubles as the branch
//!   test, eliminating the compiler's explicit `pass`;
//! * **read-phase exchange** — `mov R0←R1 ∥ pass R1←R0` swaps two
//!   registers in one microinstruction because all reads precede writes;
//! * **branch/flag overlap** — a branch may share a microinstruction with
//!   a flag-*writing* operation, because it reads the pre-cycle flags
//!   (set by the previous instruction);
//! * **memory overlap** — address bumps ride the ALU while the memory
//!   interface is busy.
//!
//! Every program is validated microinstruction-by-microinstruction under
//! the fine (phase-accurate) conflict model and checked against the same
//! reference functions as the compiled kernels.

use mcc_machine::op::MicroBlock;
use mcc_machine::{
    BoundOp, CondKind, ConflictModel, MachineDesc, MicroInstr, MicroProgram, RegRef,
};

/// A tiny micro-assembler over a machine's template names.
pub struct Asm<'m> {
    m: &'m MachineDesc,
    /// The program under construction.
    pub prog: MicroProgram,
    cur: Vec<MicroInstr>,
}

impl<'m> Asm<'m> {
    /// Starts assembling for `m`.
    pub fn new(m: &'m MachineDesc) -> Self {
        Asm {
            m,
            prog: MicroProgram::new(),
            cur: Vec::new(),
        }
    }

    /// Register by name (`"R3"`, `"ACC"`, …).
    pub fn r(&self, name: &str) -> RegRef {
        self.m
            .resolve_reg_name(name)
            .unwrap_or_else(|| panic!("no register {name}"))
    }

    fn t(&self, name: &str) -> mcc_machine::TemplateId {
        self.m
            .find_template(name)
            .unwrap_or_else(|| panic!("no template {name}"))
    }

    /// `op dst, a, b`.
    pub fn rrr(&self, name: &str, d: &str, a: &str, b: &str) -> BoundOp {
        BoundOp::new(self.t(name))
            .with_dst(self.r(d))
            .with_src(self.r(a))
            .with_src(self.r(b))
    }

    /// `op dst, a, #imm`.
    pub fn rri(&self, name: &str, d: &str, a: &str, imm: u64) -> BoundOp {
        BoundOp::new(self.t(name))
            .with_dst(self.r(d))
            .with_src(self.r(a))
            .with_imm(imm)
    }

    /// `op dst, a` (unary ALU / mov).
    pub fn rr(&self, name: &str, d: &str, a: &str) -> BoundOp {
        BoundOp::new(self.t(name))
            .with_dst(self.r(d))
            .with_src(self.r(a))
    }

    /// `ldi dst, #imm`.
    pub fn ldi(&self, d: &str, imm: u64) -> BoundOp {
        BoundOp::new(self.t("ldi")).with_dst(self.r(d)).with_imm(imm)
    }

    /// Bare template (read/write/halt/ret…).
    pub fn bare(&self, name: &str) -> BoundOp {
        BoundOp::new(self.t(name))
    }

    /// `br cond, block`.
    pub fn br(&self, cond: CondKind, block: u32) -> BoundOp {
        BoundOp::new(self.t("br")).with_cond(cond).with_target(block)
    }

    /// `jmp block`.
    pub fn jmp(&self, block: u32) -> BoundOp {
        BoundOp::new(self.t("jmp")).with_target(block)
    }

    /// Emits one microinstruction packing `ops`, validating it.
    pub fn mi(&mut self, ops: Vec<BoundOp>) {
        let mi = MicroInstr::of(ops);
        self.m
            .validate_instr(&mi, ConflictModel::Fine)
            .unwrap_or_else(|e| panic!("hand-written microinstruction invalid: {e}"));
        self.cur.push(mi);
    }

    /// Closes the current block and starts the next.
    pub fn end_block(&mut self) {
        self.prog.blocks.push(MicroBlock {
            instrs: std::mem::take(&mut self.cur),
        });
    }

    /// Finishes the program.
    pub fn finish(mut self) -> MicroProgram {
        if !self.cur.is_empty() {
            self.end_block();
        }
        self.prog
    }
}

/// Hand-written popcount: x in R0 → count in R1 (clobbers R2).
///
/// 3 entry + 4 loop + 1 exit microinstructions; the shifter's Z flag is
/// the loop test.
pub fn popcount(m: &MachineDesc) -> MicroProgram {
    let mut a = Asm::new(m);
    // b0: entry
    a.mi(vec![a.ldi("R1", 0)]);
    a.mi(vec![a.rr("pass", "R2", "R0")]); // flags := Z(x); R2 scratch
    a.mi(vec![a.br(CondKind::Zero, 2)]);
    a.end_block();
    // b1: loop
    a.mi(vec![a.rri("andi", "R2", "R0", 1)]);
    a.mi(vec![a.rrr("add", "R1", "R1", "R2")]);
    a.mi(vec![a.rri("shr", "R0", "R0", 1)]); // Z flag of the shifted x
    a.mi(vec![a.br(CondKind::NotZero, 1)]);
    a.end_block();
    // b2: done
    a.mi(vec![a.bare("halt")]);
    a.finish()
}

/// Hand-written gcd: a in R0, b in R1 → gcd in R0 (clobbers R2).
///
/// The subtraction result is reused both as the comparison and as the new
/// `a`; the swap is a single-cycle read-phase exchange.
pub fn gcd(m: &MachineDesc) -> MicroProgram {
    let mut a = Asm::new(m);
    // b0: head — test b.
    a.mi(vec![a.rr("pass", "R2", "R1")]);
    a.mi(vec![a.br(CondKind::Zero, 3)]);
    a.end_block();
    // b1: t := a - b; if negative swap, else commit.
    a.mi(vec![a.rrr("sub", "R2", "R0", "R1")]);
    a.mi(vec![a.br(CondKind::Neg, 2)]);
    a.mi(vec![a.rr("mov", "R0", "R2"), a.jmp(0)]); // a := a-b ∥ loop
    a.end_block();
    // b2: one-cycle swap: R0←R1 over the bus ∥ R1←R0 through the ALU.
    a.mi(vec![a.rr("mov", "R0", "R1"), a.rr("pass", "R1", "R0"), a.jmp(0)]);
    a.end_block();
    // b3: done
    a.mi(vec![a.bare("halt")]);
    a.finish()
}

/// Hand-written 16-word copy: src R0, dst R1, n R2, scratchless.
///
/// Four microinstructions per word: address bumps overlap the memory
/// interface, the count's flags survive into the branch cycle.
pub fn memcpy16(m: &MachineDesc) -> MicroProgram {
    let mut a = Asm::new(m);
    // b0: entry
    a.mi(vec![a.ldi("R0", 0x100)]);
    a.mi(vec![a.ldi("R1", 0x80)]);
    a.mi(vec![a.ldi("R2", 16)]);
    a.mi(vec![a.rr("pass", "R3", "R2")]);
    a.mi(vec![a.br(CondKind::Zero, 2)]);
    a.end_block();
    // b1: loop — 4 MIs per word.
    a.mi(vec![a.rr("mov", "MAR", "R0")]);
    a.mi(vec![a.bare("read"), a.rri("addi", "R0", "R0", 1)]);
    a.mi(vec![a.rr("mov", "MAR", "R1"), a.rr("dec", "R2", "R2")]);
    // write (mem) ∥ dst bump (ALU, writes flags) ∥ branch reading the
    // PRE-cycle flags — i.e. the dec from the previous instruction.
    a.mi(vec![
        a.bare("write"),
        a.rri("addi", "R1", "R1", 1),
        a.br(CondKind::NotZero, 1),
    ]);
    a.end_block();
    // b2: done
    a.mi(vec![a.bare("halt")]);
    a.finish()
}

/// Hand-written sum of `n` words starting at `base`: ptr R0, n R1,
/// acc R2, scratch R3. Four microinstructions per element.
pub fn sum_words(m: &MachineDesc, base: u64, n: u64) -> MicroProgram {
    let mut a = Asm::new(m);
    // b0: entry
    a.mi(vec![a.ldi("R0", base)]);
    a.mi(vec![a.ldi("R1", n)]);
    a.mi(vec![a.ldi("R2", 0)]);
    a.mi(vec![a.rr("pass", "R3", "R1")]);
    a.mi(vec![a.br(CondKind::Zero, 2)]);
    a.end_block();
    // b1: loop
    a.mi(vec![a.rr("mov", "MAR", "R0")]);
    a.mi(vec![a.bare("read"), a.rri("addi", "R0", "R0", 1)]);
    a.mi(vec![a.rr("mov", "R3", "MBR"), a.rr("dec", "R1", "R1")]);
    a.mi(vec![a.rrr("add", "R2", "R2", "R3"), a.br(CondKind::NotZero, 1)]);
    a.end_block();
    // b2: done
    a.mi(vec![a.bare("halt")]);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_sim::{SimOptions, Simulator};

    fn run(m: &MachineDesc, p: &MicroProgram, setup: impl FnOnce(&mut Simulator)) -> Simulator {
        let mut s = Simulator::new(m.clone(), p);
        setup(&mut s);
        s.run(&SimOptions::default()).unwrap();
        s
    }

    #[test]
    fn hand_popcount_is_correct_and_small() {
        let m = hm1();
        let p = popcount(&m);
        let r0 = m.resolve_reg_name("R0").unwrap();
        let r1 = m.resolve_reg_name("R1").unwrap();
        for x in [0u64, 1, 0xB7, 0xFFFF, 0x8000] {
            let s = run(&m, &p, |s| s.set_reg(r0, x));
            assert_eq!(s.reg(r1), x.count_ones() as u64, "x={x:#x}");
        }
        assert_eq!(p.instr_count(), 8);
    }

    #[test]
    fn hand_gcd_is_correct() {
        let m = hm1();
        let p = gcd(&m);
        let r0 = m.resolve_reg_name("R0").unwrap();
        let r1 = m.resolve_reg_name("R1").unwrap();
        for (x, y, g) in [(252u64, 105u64, 21u64), (17, 5, 1), (12, 18, 6), (7, 0, 7)] {
            let s = run(&m, &p, |s| {
                s.set_reg(r0, x);
                s.set_reg(r1, y);
            });
            assert_eq!(s.reg(r0), g, "gcd({x},{y})");
        }
        assert!(p.instr_count() <= 7);
    }

    #[test]
    fn hand_memcpy_is_correct() {
        let m = hm1();
        let p = memcpy16(&m);
        let s = run(&m, &p, |s| {
            for i in 0..16u64 {
                s.set_mem(0x100 + i, (i * 7 + 3) & 0xFFFF);
            }
        });
        for i in 0..16u64 {
            assert_eq!(s.mem(0x80 + i), (i * 7 + 3) & 0xFFFF);
        }
        assert!(p.instr_count() <= 10);
    }

    #[test]
    fn hand_sum_is_correct() {
        let m = hm1();
        let p = sum_words(&m, 0x100, 8);
        let r2 = m.resolve_reg_name("R2").unwrap();
        let s = run(&m, &p, |s| {
            for i in 0..8u64 {
                s.set_mem(0x100 + i, i + 1);
            }
        });
        assert_eq!(s.reg(r2), 36);
    }

    #[test]
    fn hand_code_encodes() {
        let m = hm1();
        for p in [popcount(&m), gcd(&m), memcpy16(&m), sum_words(&m, 0, 4)] {
            mcc_machine::encode_program(&m, &p).unwrap();
        }
    }
}
