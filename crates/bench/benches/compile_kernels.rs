//! Criterion bench: end-to-end compilation throughput of the kernel
//! suite on each reference machine (source → control store).
//!
//! The paper's §2.2.4 observes that both 5000-line YALLL compilers
//! suggested "a full optimizing compiler … will be huge"; this bench
//! tracks what this one costs at runtime instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mcc_bench::kernels::suite;
use mcc_core::Compiler;
use mcc_machine::machines::{bx2, hm1, vm1, wm64};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    g.nresamples(1_000);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for m in [hm1(), vm1(), bx2(), wm64()] {
        let compiler = Compiler::new(m.clone());
        for k in suite() {
            g.bench_with_input(
                BenchmarkId::new(format!("{}/{}", m.name, k.name), ""),
                &k,
                |bench, k| bench.iter(|| k.compile(&compiler).unwrap().stats.micro_instrs),
            );
        }
    }
    g.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    g.nresamples(1_000);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    let compiler = Compiler::new(hm1());
    for k in suite() {
        let art = k.compile(&compiler).unwrap();
        g.bench_with_input(BenchmarkId::new("hm1", k.name), &art, |bench, art| {
            bench.iter(|| {
                let mut sim = art.simulator();
                (k.setup)(&mut sim);
                sim.run(&mcc_sim::SimOptions {
                    max_cycles: 5_000_000,
                    ..Default::default()
                })
                .unwrap()
                .cycles
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().plotting_backend(criterion::PlottingBackend::None);
    targets = bench_compile, bench_simulate
}
criterion_main!(benches);
