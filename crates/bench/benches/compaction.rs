//! Criterion bench: microinstruction-composition algorithm runtimes
//! (the compile-time half of experiment E2 — the paper worries that a
//! "full optimizing compiler … will be huge"; here is what the algorithms
//! cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};

use mcc_compact::{compact, Algorithm};
use mcc_machine::machines::hm1;
use mcc_machine::{AluOp, ConflictModel, RegRef, ShiftOp};
use mcc_mir::select::{select_op, SelectedOp};
use mcc_mir::{MirOp, Operand};

fn random_block(len: usize, seed: u64) -> Vec<SelectedOp> {
    let m = hm1();
    let file = m.find_file("R").unwrap();
    let rr = |i: u16| Operand::Reg(RegRef::new(file, i % 12));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let d = rng.gen_range(0..12u16);
            let a = rng.gen_range(0..12u16);
            let b = rng.gen_range(0..12u16);
            let op = match rng.gen_range(0..5) {
                0 => MirOp::mov(rr(d), rr(a)),
                1 => MirOp::alu(AluOp::Add, rr(d), rr(a), rr(b)),
                2 => MirOp::alu(AluOp::Xor, rr(d), rr(a), rr(b)),
                3 => MirOp::shift(ShiftOp::Shr, rr(d), rr(a), 1),
                _ => MirOp::ldi(rr(d), rng.gen_range(0..0xFFFF)),
            };
            select_op(&m, &op).unwrap()
        })
        .collect()
}

fn bench_compaction(c: &mut Criterion) {
    let m = hm1();
    let mut g = c.benchmark_group("compaction");
    g.sample_size(10);
    g.nresamples(1_000);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for len in [6usize, 10, 14] {
        let block = random_block(len, 42);
        for algo in Algorithm::ALL {
            g.bench_with_input(
                BenchmarkId::new(algo.name(), len),
                &block,
                |bench, block| {
                    bench.iter(|| compact(&m, block, algo, ConflictModel::Fine).len())
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().plotting_backend(criterion::PlottingBackend::None);
    targets = bench_compaction
}
criterion_main!(benches);
