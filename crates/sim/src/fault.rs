//! Fault models for dependability campaigns.
//!
//! A [`FaultPlan`] is a cycle-stamped list of single-event upsets and
//! stuck-at defects that [`Simulator::run`](crate::Simulator::run) injects
//! while executing. The plan is plain data: campaign *generation* (seeded
//! sampling of fault sites) and outcome *classification* live in the
//! `mcc-faults` crate; the simulator only applies faults and exercises its
//! detection and recovery machinery against them.

use mcc_machine::RegRef;

/// One kind of injected hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of the control word stored at `addr`. The parity
    /// check byte is left untouched, as a real upset would.
    ControlBitFlip {
        /// Control store address.
        addr: u32,
        /// Bit position within the 128-bit word.
        bit: u8,
    },
    /// Flip one bit of an architectural register (a register-file SEU;
    /// registers carry no parity, so this is never detected directly).
    RegisterUpset {
        /// The register hit.
        reg: RegRef,
        /// Bit position within the register.
        bit: u8,
    },
    /// Flip one bit of a main-memory word (likewise unprotected).
    MemoryUpset {
        /// Word address.
        addr: u64,
        /// Bit position within the 16-bit word.
        bit: u8,
    },
    /// From the injection cycle onward, a run of control-word bits at
    /// `addr` reads as all-zeros or all-ones: a persistent defect that
    /// scrubbing cannot repair, so bounded retry escalates to a machine
    /// check.
    StuckField {
        /// Control store address.
        addr: u32,
        /// Lowest stuck bit.
        lo: u8,
        /// Number of stuck bits.
        width: u8,
        /// Stuck at one (`true`) or zero (`false`).
        stuck_one: bool,
    },
    /// Unmap a memory page so the next touch takes the §2.1.5 microtrap
    /// (restart from address 0 with registers preserved).
    UnmapPage {
        /// Page number (address / [`crate::PAGE_WORDS`]).
        page: u64,
    },
}

/// A fault scheduled for a particular cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Injected before the first instruction whose start cycle is ≥ this.
    pub at_cycle: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A cycle-ordered list of faults to inject during one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults (any order; the simulator sorts on load).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no injection).
    pub fn new() -> Self {
        Self::default()
    }

    /// A plan with one fault.
    pub fn single(at_cycle: u64, kind: FaultKind) -> Self {
        FaultPlan {
            faults: vec![Fault { at_cycle, kind }],
        }
    }

    /// Adds a fault.
    pub fn push(&mut self, at_cycle: u64, kind: FaultKind) {
        self.faults.push(Fault { at_cycle, kind });
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether any fault targets the control store (requiring the
    /// simulator to build its encoded, parity-tagged store image).
    pub fn touches_control_store(&self) -> bool {
        self.faults.iter().any(|f| {
            matches!(
                f.kind,
                FaultKind::ControlBitFlip { .. } | FaultKind::StuckField { .. }
            )
        })
    }
}
