//! # `mcc-sim` — a phase-accurate horizontal microcode simulator
//!
//! Executes [`MicroProgram`]s against a [`MachineDesc`]: one control word
//! per microcycle, all packed micro-operations reading their sources
//! before any of them writes (the read/compute/write phase discipline of a
//! horizontal machine). The simulator supplies the two facilities §2.1.5
//! of Sint's survey says every real microprogramming environment has and
//! every surveyed language ignored:
//!
//! * **interrupts** — scripted arrival times; a `poll` micro-operation
//!   services whatever is pending (costing
//!   [`MachineDesc::interrupt_service_cycles`]), and the simulator records
//!   service latencies (experiment E7);
//! * **microtraps** — paged main memory; touching an unmapped page aborts
//!   the cycle, services the fault, and **restarts the microprogram from
//!   address 0 with all registers preserved** — precisely the semantics
//!   that make the paper's `incread` example increment its register twice.
//!
//! The crate also defines [`macroisa`], a small accumulator
//! macroarchitecture used by experiment E5: its interpreter is itself a
//! microprogram, so "macrocode vs microcode" speedups can be measured.

pub mod macroisa;

use mcc_machine::{
    AluOp, BoundOp, CondKind, MachineDesc, MicroProgram, RegRef, Semantic, ShiftOp,
};

/// Words per memory page (addresses are word-granular).
pub const PAGE_WORDS: u64 = 256;

/// Total simulated memory words.
pub const MEM_WORDS: u64 = 1 << 16;

/// Condition flags of the simulated machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero.
    pub z: bool,
    /// Negative (sign bit).
    pub n: bool,
    /// Carry / borrow / shifted-out bit.
    pub c: bool,
    /// Two's-complement overflow.
    pub v: bool,
    /// Last bit shifted out of the shifter (the SIMPL `UF` bit).
    pub uf: bool,
}

/// Execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Microcycles executed (including service charges).
    pub cycles: u64,
    /// Microinstructions executed.
    pub instrs: u64,
    /// Micro-operations executed.
    pub uops: u64,
    /// Interrupts serviced.
    pub interrupts: u64,
    /// Sum of interrupt service latencies (arrival → service), in cycles.
    pub interrupt_latency_total: u64,
    /// Worst single interrupt latency.
    pub interrupt_latency_max: u64,
    /// Page-fault microtraps taken.
    pub traps: u64,
    /// Microprogram restarts caused by traps.
    pub restarts: u64,
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget ran out before `halt`.
    CycleLimit(u64),
    /// Execution fell off the end of the control store.
    OffEnd(u32),
    /// `ret` with an empty micro call stack.
    StackUnderflow,
    /// A malformed instruction (should have been caught by validation).
    BadInstr(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit(n) => write!(f, "no halt within {n} cycles"),
            SimError::OffEnd(a) => write!(f, "fell off control store at {a}"),
            SimError::StackUnderflow => write!(f, "micro return stack underflow"),
            SimError::BadInstr(s) => write!(f, "bad microinstruction: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Options for one run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Abort after this many cycles.
    pub max_cycles: u64,
    /// Interrupt arrival times (cycle numbers, ascending).
    pub interrupts: Vec<u64>,
    /// Pages (page number = address / [`PAGE_WORDS`]) initially unmapped;
    /// first touch takes a microtrap, maps the page and restarts.
    pub unmapped_pages: Vec<u64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_cycles: 1_000_000,
            interrupts: Vec::new(),
            unmapped_pages: Vec::new(),
        }
    }
}

/// The simulator: machine state plus a loaded control store.
#[derive(Debug, Clone)]
pub struct Simulator {
    m: MachineDesc,
    store: Vec<mcc_machine::MicroInstr>,
    regs: Vec<Vec<u64>>,
    mem: Vec<u64>,
    mapped: Vec<bool>,
    flags: Flags,
    upc: u32,
    stack: Vec<u32>,
    halted: bool,
    stats: SimStats,
    pending: Vec<u64>, // unserviced interrupt arrival times
}

/// One register write buffered during the write phase.
struct Write {
    reg: RegRef,
    value: u64,
}

/// Sequencer outcome of one instruction.
enum Seq {
    Next,
    Goto(u32),
    CallTo(u32),
    Return,
    Halt,
}

impl Simulator {
    /// Loads `program` onto machine `m`. Block-relative targets are
    /// resolved by flattening.
    pub fn new(m: MachineDesc, program: &MicroProgram) -> Self {
        let store = program.flatten();
        let regs = m
            .files
            .iter()
            .map(|f| vec![0u64; f.count as usize])
            .collect();
        Simulator {
            m,
            store,
            regs,
            mem: vec![0; MEM_WORDS as usize],
            mapped: vec![true; (MEM_WORDS / PAGE_WORDS) as usize],
            flags: Flags::default(),
            upc: 0,
            stack: Vec::new(),
            halted: false,
            stats: SimStats::default(),
            pending: Vec::new(),
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: RegRef) -> u64 {
        self.regs[r.file.index()][r.index as usize]
    }

    /// Writes a register (test/workload setup).
    pub fn set_reg(&mut self, r: RegRef, v: u64) {
        let w = self.m.reg_width(r);
        self.regs[r.file.index()][r.index as usize] = v & mcc_machine::semantic::width_mask(w);
    }

    /// Reads a memory word.
    pub fn mem(&self, addr: u64) -> u64 {
        self.mem[(addr % MEM_WORDS) as usize]
    }

    /// Writes a memory word (test/workload setup; does not fault).
    pub fn set_mem(&mut self, addr: u64, v: u64) {
        self.mem[(addr % MEM_WORDS) as usize] = v & 0xFFFF;
    }

    /// Current flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn src(&self, op: &BoundOp, i: usize) -> u64 {
        self.reg(op.srcs[i])
    }

    /// Runs to halt (or error) under `opts`. Returns final statistics.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, opts: &SimOptions) -> Result<SimStats, SimError> {
        self.pending = opts.interrupts.clone();
        self.pending.sort_unstable();
        for &p in &opts.unmapped_pages {
            if let Some(m) = self.mapped.get_mut(p as usize) {
                *m = false;
            }
        }
        while !self.halted {
            if self.stats.cycles >= opts.max_cycles {
                return Err(SimError::CycleLimit(opts.max_cycles));
            }
            self.step()?;
        }
        // Any interrupts still pending are serviced at halt (their latency
        // is what a non-polling microprogram inflicts — §2.1.5).
        let now = self.stats.cycles;
        let pend: Vec<u64> = self.pending.drain(..).filter(|&a| a <= now).collect();
        for a in pend {
            self.service_interrupt(now, a);
        }
        Ok(self.stats.clone())
    }

    fn service_interrupt(&mut self, now: u64, arrival: u64) {
        let lat = now.saturating_sub(arrival);
        self.stats.interrupts += 1;
        self.stats.interrupt_latency_total += lat;
        self.stats.interrupt_latency_max = self.stats.interrupt_latency_max.max(lat);
        self.stats.cycles += self.m.interrupt_service_cycles;
    }

    /// Executes one microinstruction.
    pub fn step(&mut self) -> Result<(), SimError> {
        let mi = self
            .store
            .get(self.upc as usize)
            .cloned()
            .ok_or(SimError::OffEnd(self.upc))?;
        let now = self.stats.cycles;
        self.stats.cycles += 1;
        self.stats.instrs += 1;

        let mut writes: Vec<Write> = Vec::new();
        let mut flag_write: Option<Flags> = None;
        let mut seq = Seq::Next;
        let mut mem_write: Option<(u64, u64)> = None;

        for op in &mi.ops {
            self.stats.uops += 1;
            let t = self.m.template(op.template);
            let width = op
                .dst
                .map(|d| self.m.reg_width(d))
                .unwrap_or(self.m.word_bits);
            match t.semantic {
                Semantic::Alu(a) => {
                    let l = self.src(op, 0);
                    let r = if a.is_unary() {
                        0
                    } else if op.srcs.len() > 1 {
                        self.src(op, 1)
                    } else {
                        op.imm.unwrap_or(0)
                    };
                    let (res, c, v) = a.apply(l, r, self.flags.c, width);
                    writes.push(Write {
                        reg: op.dst.expect("alu dst"),
                        value: res,
                    });
                    if t.writes_flags {
                        flag_write = Some(Flags {
                            z: res == 0,
                            n: res >> (width - 1) & 1 == 1,
                            c,
                            v,
                            uf: self.flags.uf,
                        });
                    }
                }
                Semantic::Shift(s) => {
                    let val = self.src(op, 0);
                    let amount = op.imm.unwrap_or(0) as u32;
                    let (res, uf) = s.apply(val, amount, width);
                    writes.push(Write {
                        reg: op.dst.expect("shift dst"),
                        value: res,
                    });
                    if t.writes_flags {
                        // The shifted-out bit lands in both UF and carry
                        // (documented machine family behaviour; this is
                        // what lets legalize map UF → carry on BX-2).
                        flag_write = Some(Flags {
                            z: res == 0,
                            n: res >> (width - 1) & 1 == 1,
                            c: uf,
                            v: self.flags.v,
                            uf,
                        });
                    }
                }
                Semantic::Move => {
                    writes.push(Write {
                        reg: op.dst.expect("mov dst"),
                        value: self.src(op, 0),
                    });
                }
                Semantic::LoadImm => {
                    writes.push(Write {
                        reg: op.dst.expect("ldi dst"),
                        value: op.imm.unwrap_or(0),
                    });
                }
                Semantic::MemRead => {
                    let mar = self.m.special.mar.ok_or_else(|| {
                        SimError::BadInstr("memread without MAR".into())
                    })?;
                    let mbr = self
                        .m
                        .special
                        .mbr
                        .ok_or_else(|| SimError::BadInstr("memread without MBR".into()))?;
                    let addr = self.reg(mar) % MEM_WORDS;
                    if !self.mapped[(addr / PAGE_WORDS) as usize] {
                        self.take_trap(addr);
                        return Ok(());
                    }
                    writes.push(Write {
                        reg: mbr,
                        value: self.mem[addr as usize],
                    });
                }
                Semantic::MemWrite => {
                    let mar = self.m.special.mar.ok_or_else(|| {
                        SimError::BadInstr("memwrite without MAR".into())
                    })?;
                    let mbr = self
                        .m
                        .special
                        .mbr
                        .ok_or_else(|| SimError::BadInstr("memwrite without MBR".into()))?;
                    let addr = self.reg(mar) % MEM_WORDS;
                    if !self.mapped[(addr / PAGE_WORDS) as usize] {
                        self.take_trap(addr);
                        return Ok(());
                    }
                    mem_write = Some((addr, self.reg(mbr)));
                }
                Semantic::Jump => seq = Seq::Goto(op.target.expect("jmp target")),
                Semantic::Branch => {
                    let c = op.cond.expect("branch cond");
                    if self.eval_cond(c) {
                        seq = Seq::Goto(op.target.expect("branch target"));
                    }
                }
                Semantic::Dispatch => {
                    let idx = self.src(op, 0) & op.imm.unwrap_or(u64::MAX);
                    seq = Seq::Goto(op.target.expect("dispatch base") + idx as u32);
                }
                Semantic::Call => seq = Seq::CallTo(op.target.expect("call target")),
                Semantic::Return => seq = Seq::Return,
                Semantic::Poll => {
                    let due: Vec<u64> = {
                        let now = now;
                        let (due, rest): (Vec<u64>, Vec<u64>) =
                            self.pending.iter().partition(|&&a| a <= now);
                        self.pending = rest;
                        due
                    };
                    for a in due {
                        self.service_interrupt(now, a);
                    }
                }
                Semantic::Halt => seq = Seq::Halt,
                Semantic::Nop => {}
            }
        }

        // Write phase.
        for w in writes {
            let width = self.m.reg_width(w.reg);
            self.regs[w.reg.file.index()][w.reg.index as usize] =
                w.value & mcc_machine::semantic::width_mask(width);
        }
        if let Some(fl) = flag_write {
            self.flags = fl;
        }
        if let Some((addr, v)) = mem_write {
            self.mem[addr as usize] = v & 0xFFFF;
        }

        // Sequencing.
        match seq {
            Seq::Next => self.upc += 1,
            Seq::Goto(t) => self.upc = t,
            Seq::CallTo(t) => {
                self.stack.push(self.upc + 1);
                self.upc = t;
            }
            Seq::Return => {
                self.upc = self.stack.pop().ok_or(SimError::StackUnderflow)?;
            }
            Seq::Halt => self.halted = true,
        }
        Ok(())
    }

    /// Page-fault microtrap: map the page, charge the service time, and
    /// restart the microprogram from address 0 with registers preserved.
    fn take_trap(&mut self, addr: u64) {
        self.stats.traps += 1;
        self.stats.restarts += 1;
        self.stats.cycles += self.m.trap_service_cycles;
        self.mapped[(addr / PAGE_WORDS) as usize] = true;
        self.stack.clear();
        self.upc = 0;
    }

    fn eval_cond(&self, c: CondKind) -> bool {
        c.eval(self.flags.z, self.flags.n, self.flags.c, self.flags.v, self.flags.uf)
    }
}

/// Convenience: the effect of an ALU op on flags matches
/// [`AluOp::apply`]; re-exported op kinds for workload builders.
pub use mcc_machine::semantic::width_mask;

#[allow(unused_imports)]
use AluOp as _AluOpForDocs;
#[allow(unused_imports)]
use ShiftOp as _ShiftOpForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_machine::op::{MicroBlock, MicroInstr};

    fn machine() -> MachineDesc {
        hm1()
    }

    /// Builds a one-block program from bound ops, one per instruction,
    /// ending in halt.
    fn program(m: &MachineDesc, ops: Vec<BoundOp>) -> MicroProgram {
        let mut p = MicroProgram::new();
        let mut instrs: Vec<MicroInstr> = ops.into_iter().map(MicroInstr::single).collect();
        instrs.push(MicroInstr::single(BoundOp::new(
            m.find_template("halt").unwrap(),
        )));
        p.blocks.push(MicroBlock { instrs });
        p
    }

    fn r(m: &MachineDesc, i: u16) -> RegRef {
        RegRef::new(m.find_file("R").unwrap(), i)
    }

    #[test]
    fn ldi_add_and_flags() {
        let m = machine();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 0))
                    .with_imm(7),
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 1))
                    .with_imm(8),
                BoundOp::new(m.find_template("add").unwrap())
                    .with_dst(r(&m, 2))
                    .with_src(r(&m, 0))
                    .with_src(r(&m, 1)),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        let st = s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 2)), 15);
        assert!(!s.flags().z);
        assert_eq!(st.instrs, 4);
        assert!(s.halted());
    }

    #[test]
    fn parallel_ops_read_before_write() {
        // Swap via one microinstruction: mov R0←R1 ∥ ALU pass R1←R0 would
        // need two units; use mov + pass which are bus/ALU. Both read old
        // values: a genuine exchange.
        let m = machine();
        let mov = BoundOp::new(m.find_template("mov").unwrap())
            .with_dst(r(&m, 0))
            .with_src(r(&m, 1));
        let pass = BoundOp::new(m.find_template("pass").unwrap())
            .with_dst(r(&m, 1))
            .with_src(r(&m, 0));
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::of(vec![mov, pass]),
                MicroInstr::single(BoundOp::new(m.find_template("halt").unwrap())),
            ],
        });
        let mut s = Simulator::new(m.clone(), &p);
        s.set_reg(r(&m, 0), 111);
        s.set_reg(r(&m, 1), 222);
        s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 0)), 222);
        assert_eq!(s.reg(r(&m, 1)), 111, "read phase precedes write phase");
    }

    #[test]
    fn memory_roundtrip() {
        let m = machine();
        let mar = m.special.mar.unwrap();
        let mbr = m.special.mbr.unwrap();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(mar)
                    .with_imm(100),
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(mbr)
                    .with_imm(42),
                BoundOp::new(m.find_template("write").unwrap()),
                BoundOp::new(m.find_template("read").unwrap()),
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(r(&m, 5))
                    .with_src(mbr),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.mem(100), 42);
        assert_eq!(s.reg(r(&m, 5)), 42);
    }

    #[test]
    fn branch_loop_counts_down() {
        // R0 = 5; loop: dec R0; jnz loop; halt.
        let m = machine();
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 0))
                    .with_imm(5),
            )],
        });
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::single(
                    BoundOp::new(m.find_template("dec").unwrap())
                        .with_dst(r(&m, 0))
                        .with_src(r(&m, 0)),
                ),
                MicroInstr::single(
                    BoundOp::new(m.find_template("br").unwrap())
                        .with_cond(CondKind::NotZero)
                        .with_target(1),
                ),
            ],
        });
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(BoundOp::new(
                m.find_template("halt").unwrap(),
            ))],
        });
        let mut s = Simulator::new(m.clone(), &p);
        let st = s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 0)), 0);
        // 1 ldi + 5×(dec+br) + halt = 12 instructions.
        assert_eq!(st.instrs, 12);
    }

    #[test]
    fn dispatch_indexes_table() {
        let m = machine();
        let mut p = MicroProgram::new();
        // b0: ldi R0,1 ; dispatch R0 mask 3 -> b1
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::single(
                    BoundOp::new(m.find_template("ldi").unwrap())
                        .with_dst(r(&m, 0))
                        .with_imm(1),
                ),
                MicroInstr::single(
                    BoundOp::new(m.find_template("dispatch").unwrap())
                        .with_src(r(&m, 0))
                        .with_imm(3)
                        .with_target(1),
                ),
            ],
        });
        // b1..b3: table: jmp to b4 after setting R1 to the case id... the
        // table entries are single jumps; cases set R1.
        for k in 0..3u32 {
            p.blocks.push(MicroBlock {
                instrs: vec![MicroInstr::single(
                    BoundOp::new(m.find_template("jmp").unwrap()).with_target(4 + k),
                )],
            });
        }
        for k in 0..3u64 {
            p.blocks.push(MicroBlock {
                instrs: vec![
                    MicroInstr::single(
                        BoundOp::new(m.find_template("ldi").unwrap())
                            .with_dst(r(&m, 1))
                            .with_imm(10 + k),
                    ),
                    MicroInstr::single(BoundOp::new(m.find_template("halt").unwrap())),
                ],
            });
        }
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 1)), 11, "case 1 taken");
    }

    #[test]
    fn call_and_return() {
        let m = machine();
        let mut p = MicroProgram::new();
        // b0: call b2; (returns here) ldi R1, 9; halt in b1
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("call").unwrap()).with_target(1),
            )],
        });
        // b1 (fall-through after return): ldi + halt
        p.blocks.push(MicroBlock {
            instrs: vec![], // placeholder so targets line up; see below
        });
        // Rebuild properly: subroutine at block 2.
        p.blocks[1] = MicroBlock {
            instrs: vec![
                MicroInstr::single(
                    BoundOp::new(m.find_template("ldi").unwrap())
                        .with_dst(r(&m, 1))
                        .with_imm(9),
                ),
                MicroInstr::single(BoundOp::new(m.find_template("halt").unwrap())),
            ],
        };
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::single(
                    BoundOp::new(m.find_template("ldi").unwrap())
                        .with_dst(r(&m, 0))
                        .with_imm(5),
                ),
                MicroInstr::single(BoundOp::new(m.find_template("ret").unwrap())),
            ],
        });
        // call targets block 1? We want call → subroutine (block 2), so
        // retarget: the call above targets 1; swap to 2.
        p.blocks[0].instrs[0].ops[0].target = Some(2);
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 0)), 5, "subroutine ran");
        assert_eq!(s.reg(r(&m, 1)), 9, "returned to continuation");
    }

    #[test]
    fn ret_underflow_is_an_error() {
        let m = machine();
        let p = program(&m, vec![BoundOp::new(m.find_template("ret").unwrap())]);
        let mut s = Simulator::new(m.clone(), &p);
        assert_eq!(
            s.run(&SimOptions::default()),
            Err(SimError::StackUnderflow)
        );
    }

    #[test]
    fn cycle_limit_enforced() {
        let m = machine();
        // Infinite loop: jmp 0.
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("jmp").unwrap()).with_target(0),
            )],
        });
        let mut s = Simulator::new(m, &p);
        let opts = SimOptions {
            max_cycles: 100,
            ..Default::default()
        };
        assert_eq!(s.run(&opts), Err(SimError::CycleLimit(100)));
    }

    #[test]
    fn poll_services_pending_interrupts() {
        let m = machine();
        let mut ops = Vec::new();
        // Ten movs, then a poll, then more movs.
        for _ in 0..10 {
            ops.push(
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(r(&m, 1))
                    .with_src(r(&m, 2)),
            );
        }
        ops.push(BoundOp::new(m.find_template("poll").unwrap()));
        let p = program(&m, ops);
        let mut s = Simulator::new(m.clone(), &p);
        let opts = SimOptions {
            interrupts: vec![3],
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(st.interrupts, 1);
        // Poll executes at cycle 10 → latency 10 - 3 = 7.
        assert_eq!(st.interrupt_latency_max, 7);
        assert!(st.cycles >= 11 + m.interrupt_service_cycles);
    }

    #[test]
    fn unpolled_interrupts_serviced_at_halt() {
        let m = machine();
        let p = program(
            &m,
            vec![BoundOp::new(m.find_template("mov").unwrap())
                .with_dst(r(&m, 1))
                .with_src(r(&m, 2))],
        );
        let mut s = Simulator::new(m, &p);
        let opts = SimOptions {
            interrupts: vec![0],
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(st.interrupts, 1);
        assert!(st.interrupt_latency_max >= 1);
    }

    #[test]
    fn page_fault_restarts_program_with_registers_preserved() {
        // The paper's `incread` bug: inc R0; MAR:=R0; read — the read
        // faults, the program restarts, R0 is incremented AGAIN.
        let m = machine();
        let mar = m.special.mar.unwrap();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("inc").unwrap())
                    .with_dst(r(&m, 0))
                    .with_src(r(&m, 0)),
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(mar)
                    .with_src(r(&m, 0)),
                BoundOp::new(m.find_template("read").unwrap()),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        s.set_reg(r(&m, 0), 0x1000 - 1); // increments to 0x1000, page 16
        let opts = SimOptions {
            unmapped_pages: vec![16],
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(st.traps, 1);
        assert_eq!(st.restarts, 1);
        // The double increment: 0x0FFF + 2, not + 1.
        assert_eq!(s.reg(r(&m, 0)), 0x1001, "incremented twice after restart");
    }

    #[test]
    fn trap_charges_service_cycles() {
        let m = machine();
        let mar = m.special.mar.unwrap();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(mar)
                    .with_imm(0x2000),
                BoundOp::new(m.find_template("read").unwrap()),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        let opts = SimOptions {
            unmapped_pages: vec![0x20],
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert!(st.cycles >= m.trap_service_cycles);
        assert_eq!(st.traps, 1);
    }

    #[test]
    fn shift_sets_uf_and_carry() {
        let m = machine();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 0))
                    .with_imm(0b101),
                BoundOp::new(m.find_template("shr").unwrap())
                    .with_dst(r(&m, 0))
                    .with_src(r(&m, 0))
                    .with_imm(1),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        assert!(s.flags().uf);
        assert!(s.flags().c, "shifted-out bit also lands in carry");
        assert_eq!(s.reg(r(&m, 0)), 0b10);
    }

    #[test]
    fn off_end_is_an_error() {
        let m = machine();
        let p = program(&m, vec![]); // just a halt
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        // Build a program with no halt.
        let mut p2 = MicroProgram::new();
        p2.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(r(&m, 0))
                    .with_src(r(&m, 1)),
            )],
        });
        let mut s2 = Simulator::new(m, &p2);
        assert_eq!(s2.run(&SimOptions::default()), Err(SimError::OffEnd(1)));
    }
}
