//! # `mcc-sim` — a phase-accurate horizontal microcode simulator
//!
//! Executes [`MicroProgram`]s against a [`MachineDesc`]: one control word
//! per microcycle, all packed micro-operations reading their sources
//! before any of them writes (the read/compute/write phase discipline of a
//! horizontal machine). The simulator supplies the two facilities §2.1.5
//! of Sint's survey says every real microprogramming environment has and
//! every surveyed language ignored:
//!
//! * **interrupts** — scripted arrival times; a `poll` micro-operation
//!   services whatever is pending (costing
//!   [`MachineDesc::interrupt_service_cycles`]), and the simulator records
//!   service latencies (experiment E7);
//! * **microtraps** — paged main memory; touching an unmapped page aborts
//!   the cycle, services the fault, and **restarts the microprogram from
//!   address 0 with all registers preserved** — precisely the semantics
//!   that make the paper's `incread` example increment its register twice.
//!
//! The crate also defines [`macroisa`], a small accumulator
//! macroarchitecture used by experiment E5: its interpreter is itself a
//! microprogram, so "macrocode vs microcode" speedups can be measured.

pub mod fault;
pub mod macroisa;

pub use fault::{Fault, FaultKind, FaultPlan};

use mcc_lang::Budget;
use mcc_machine::{
    AluOp, BoundOp, CondKind, MachineDesc, MicroProgram, RegRef, Semantic, ShiftOp,
};

/// Words per memory page (addresses are word-granular).
pub const PAGE_WORDS: u64 = 256;

/// Total simulated memory words.
pub const MEM_WORDS: u64 = 1 << 16;

/// Condition flags of the simulated machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero.
    pub z: bool,
    /// Negative (sign bit).
    pub n: bool,
    /// Carry / borrow / shifted-out bit.
    pub c: bool,
    /// Two's-complement overflow.
    pub v: bool,
    /// Last bit shifted out of the shifter (the SIMPL `UF` bit).
    pub uf: bool,
}

/// Execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Microcycles executed (including service charges).
    pub cycles: u64,
    /// Microinstructions executed.
    pub instrs: u64,
    /// Micro-operations executed.
    pub uops: u64,
    /// Interrupts serviced.
    pub interrupts: u64,
    /// Sum of interrupt service latencies (arrival → service), in cycles.
    pub interrupt_latency_total: u64,
    /// Worst single interrupt latency.
    pub interrupt_latency_max: u64,
    /// Page-fault microtraps taken.
    pub traps: u64,
    /// Microprogram restarts caused by traps.
    pub restarts: u64,
    /// Faults injected from the plan so far.
    pub faults_injected: u64,
    /// Control-store corruptions caught (parity mismatch or undecodable
    /// word) before execution.
    pub faults_detected: u64,
    /// Successful detect → scrub → restart-from-checkpoint recoveries.
    pub fault_recoveries: u64,
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget ran out before `halt`.
    CycleLimit(u64),
    /// Execution fell off the end of the control store.
    OffEnd(u32),
    /// `ret` with an empty micro call stack.
    StackUnderflow,
    /// A malformed instruction (should have been caught by validation).
    BadInstr(String),
    /// The watchdog tripped: too many cycles without a `poll`.
    WatchdogExpired(u64),
    /// A control-store fault persisted through the bounded retry budget;
    /// the machine halts rather than run corrupted microcode.
    MachineCheck(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleLimit(n) => write!(f, "no halt within {n} cycles"),
            SimError::OffEnd(a) => write!(f, "fell off control store at {a}"),
            SimError::StackUnderflow => write!(f, "micro return stack underflow"),
            SimError::BadInstr(s) => write!(f, "bad microinstruction: {s}"),
            SimError::WatchdogExpired(n) => {
                write!(f, "watchdog expired: {n} cycles without a poll")
            }
            SimError::MachineCheck(s) => write!(f, "machine check: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Options for one run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Abort after this many cycles ([`Budget::DEFAULT_SIM_CYCLES`] by
    /// default — the same ceiling the fuzz oracle calls a hang).
    pub max_cycles: u64,
    /// Interrupt arrival times (cycle numbers, ascending).
    pub interrupts: Vec<u64>,
    /// Pages (page number = address / [`PAGE_WORDS`]) initially unmapped;
    /// first touch takes a microtrap, maps the page and restarts.
    pub unmapped_pages: Vec<u64>,
    /// Faults to inject while running (empty = no injection).
    pub faults: FaultPlan,
    /// Watchdog budget: abort with [`SimError::WatchdogExpired`] after
    /// this many consecutive cycles without a `poll` (or trap service).
    /// `None` disables the watchdog.
    pub watchdog: Option<u64>,
    /// With parity protection on, how many detect → scrub → restart
    /// attempts are made before escalating to a machine check.
    pub max_fault_retries: u32,
    /// Run control words through the parity-tagged store: detected
    /// corruption triggers scrub-and-restart instead of executing. Off,
    /// corrupted words execute raw (the unprotected baseline a fault
    /// campaign compares against).
    pub protect_store: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_cycles: Budget::DEFAULT_SIM_CYCLES,
            interrupts: Vec::new(),
            unmapped_pages: Vec::new(),
            faults: FaultPlan::default(),
            watchdog: None,
            max_fault_retries: 3,
            protect_store: true,
        }
    }
}

/// The encoded control store: a golden (load-time) image and a live image
/// the fault plan corrupts, each word carrying its parity check byte.
#[derive(Debug, Clone)]
struct EccStore {
    golden: Vec<(u128, u8)>,
    live: Vec<(u128, u8)>,
}

/// Architectural state saved at run start; restored by fault recovery.
#[derive(Debug, Clone)]
struct Checkpoint {
    regs: Vec<Vec<u64>>,
    mem: Vec<u64>,
    flags: Flags,
}

/// The simulator: machine state plus a loaded control store.
#[derive(Debug, Clone)]
pub struct Simulator {
    m: MachineDesc,
    store: Vec<mcc_machine::MicroInstr>,
    regs: Vec<Vec<u64>>,
    mem: Vec<u64>,
    mapped: Vec<bool>,
    flags: Flags,
    upc: u32,
    stack: Vec<u32>,
    halted: bool,
    stats: SimStats,
    pending: Vec<u64>, // unserviced interrupt arrival times
    // Fault machinery (inert unless the run's options engage it).
    ecc: Option<EccStore>,
    protect_store: bool,
    pending_faults: Vec<Fault>, // sorted descending by cycle; popped from the back
    stuck: Vec<(u32, u8, u8, bool)>, // active stuck-at defects: (addr, lo, width, one)
    checkpoint: Option<Box<Checkpoint>>,
    retries: u32,
    max_retries: u32,
    // Cycles-without-a-poll budget (`None` disables the watchdog); a
    // `poll` or trap service resets it. The shared `Budget` type keeps
    // this count aligned with the fuzz oracle's and harness's notions of
    // a hang.
    watchdog: Option<Budget>,
}

/// One register write buffered during the write phase.
struct Write {
    reg: RegRef,
    value: u64,
}

/// Sequencer outcome of one instruction.
enum Seq {
    Next,
    Goto(u32),
    CallTo(u32),
    Return,
    Halt,
}

impl Simulator {
    /// Loads `program` onto machine `m`. Block-relative targets are
    /// resolved by flattening.
    pub fn new(m: MachineDesc, program: &MicroProgram) -> Self {
        let store = program.flatten();
        let regs = m
            .files
            .iter()
            .map(|f| vec![0u64; f.count as usize])
            .collect();
        Simulator {
            m,
            store,
            regs,
            mem: vec![0; MEM_WORDS as usize],
            mapped: vec![true; (MEM_WORDS / PAGE_WORDS) as usize],
            flags: Flags::default(),
            upc: 0,
            stack: Vec::new(),
            halted: false,
            stats: SimStats::default(),
            pending: Vec::new(),
            ecc: None,
            protect_store: true,
            pending_faults: Vec::new(),
            stuck: Vec::new(),
            checkpoint: None,
            retries: 0,
            max_retries: 3,
            watchdog: None,
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: RegRef) -> u64 {
        self.regs[r.file.index()][r.index as usize]
    }

    /// Writes a register (test/workload setup).
    pub fn set_reg(&mut self, r: RegRef, v: u64) {
        let w = self.m.reg_width(r);
        self.regs[r.file.index()][r.index as usize] = v & mcc_machine::semantic::width_mask(w);
    }

    /// Reads a memory word.
    pub fn mem(&self, addr: u64) -> u64 {
        self.mem[(addr % MEM_WORDS) as usize]
    }

    /// Writes a memory word (test/workload setup; does not fault).
    pub fn set_mem(&mut self, addr: u64, v: u64) {
        self.mem[(addr % MEM_WORDS) as usize] = v & 0xFFFF;
    }

    /// Current flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Resets the watchdog budget: a poll, trap service, or recovery
    /// restart proves the machine is making observable progress.
    fn pet_watchdog(&mut self) {
        if let Some(b) = &mut self.watchdog {
            b.reset();
        }
    }

    fn src(&self, op: &BoundOp, i: usize) -> Result<u64, SimError> {
        op.srcs
            .get(i)
            .map(|&r| self.reg(r))
            .ok_or_else(|| SimError::BadInstr(format!("missing source operand {i}")))
    }

    /// Runs to halt (or error) under `opts`. Returns final statistics.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, opts: &SimOptions) -> Result<SimStats, SimError> {
        self.pending = opts.interrupts.clone();
        self.pending.sort_unstable();
        for &p in &opts.unmapped_pages {
            if let Some(m) = self.mapped.get_mut(p as usize) {
                *m = false;
            }
        }
        self.watchdog = opts.watchdog.map(Budget::new);
        self.protect_store = opts.protect_store;
        self.max_retries = opts.max_fault_retries;
        self.retries = 0;
        if !opts.faults.is_empty() || opts.watchdog.is_some() {
            // Engage the fault machinery: a checkpoint of the seeded
            // architectural state, and (when the control store is a fault
            // target) the encoded, parity-tagged store image.
            self.checkpoint = Some(Box::new(Checkpoint {
                regs: self.regs.clone(),
                mem: self.mem.clone(),
                flags: self.flags,
            }));
            self.pending_faults = opts.faults.faults.clone();
            self.pending_faults.sort_by_key(|f| std::cmp::Reverse(f.at_cycle));
            if opts.faults.touches_control_store() && self.ecc.is_none() {
                let mut image = Vec::with_capacity(self.store.len());
                for (i, mi) in self.store.iter().enumerate() {
                    let w = mcc_machine::encode_instr(&self.m, mi).map_err(|e| {
                        SimError::BadInstr(format!("control word {i} not encodable: {e}"))
                    })?;
                    image.push((w, mcc_machine::ecc_of(w)));
                }
                self.ecc = Some(EccStore {
                    golden: image.clone(),
                    live: image,
                });
            }
        }
        while !self.halted {
            if self.stats.cycles >= opts.max_cycles {
                return Err(SimError::CycleLimit(opts.max_cycles));
            }
            self.step()?;
        }
        // Any interrupts still pending are serviced at halt (their latency
        // is what a non-polling microprogram inflicts — §2.1.5).
        let now = self.stats.cycles;
        let pend: Vec<u64> = self.pending.drain(..).filter(|&a| a <= now).collect();
        for a in pend {
            self.service_interrupt(now, a);
        }
        Ok(self.stats.clone())
    }

    fn service_interrupt(&mut self, now: u64, arrival: u64) {
        let lat = now.saturating_sub(arrival);
        self.stats.interrupts += 1;
        self.stats.interrupt_latency_total += lat;
        self.stats.interrupt_latency_max = self.stats.interrupt_latency_max.max(lat);
        self.stats.cycles += self.m.interrupt_service_cycles;
    }

    /// Applies every planned fault due at or before `now` to the live
    /// machine state.
    fn apply_due_faults(&mut self, now: u64) {
        while self
            .pending_faults
            .last()
            .is_some_and(|f| f.at_cycle <= now)
        {
            let f = self.pending_faults.pop().expect("checked nonempty");
            self.stats.faults_injected += 1;
            match f.kind {
                FaultKind::ControlBitFlip { addr, bit } => {
                    if let Some(ecc) = &mut self.ecc {
                        if let Some(slot) = ecc.live.get_mut(addr as usize) {
                            slot.0 ^= 1u128 << (bit as u32 % 128);
                        }
                    }
                }
                FaultKind::RegisterUpset { reg, bit } => {
                    if let Some(file) = self.regs.get_mut(reg.file.index()) {
                        if let Some(v) = file.get_mut(reg.index as usize) {
                            let w = self.m.reg_width(reg);
                            *v = (*v ^ (1u64 << (bit as u32 % w as u32)))
                                & mcc_machine::semantic::width_mask(w);
                        }
                    }
                }
                FaultKind::MemoryUpset { addr, bit } => {
                    let slot = &mut self.mem[(addr % MEM_WORDS) as usize];
                    *slot = (*slot ^ (1u64 << (bit as u32 % 16))) & 0xFFFF;
                }
                FaultKind::StuckField {
                    addr,
                    lo,
                    width,
                    stuck_one,
                } => self.stuck.push((addr, lo, width, stuck_one)),
                FaultKind::UnmapPage { page } => {
                    if let Some(m) = self.mapped.get_mut(page as usize) {
                        *m = false;
                    }
                }
            }
        }
    }

    /// Detected control-store corruption: scrub the live store from the
    /// golden image, restore the checkpoint, and restart from address 0 —
    /// or escalate to a machine check once the retry budget is spent
    /// (a persistent defect scrubbing cannot repair).
    fn recover(&mut self, why: &str) -> Result<(), SimError> {
        self.stats.faults_detected += 1;
        if self.retries >= self.max_retries {
            return Err(SimError::MachineCheck(format!(
                "control store fault persists after {} restarts: {why}",
                self.retries
            )));
        }
        self.retries += 1;
        self.stats.fault_recoveries += 1;
        self.stats.cycles += self.m.trap_service_cycles;
        if let Some(ecc) = &mut self.ecc {
            ecc.live.clone_from(&ecc.golden);
        }
        if let Some(cp) = &self.checkpoint {
            self.regs.clone_from(&cp.regs);
            self.mem.clone_from(&cp.mem);
            self.flags = cp.flags;
        }
        self.stack.clear();
        self.upc = 0;
        self.pet_watchdog();
        Ok(())
    }

    /// Fetches the instruction at the current µPC. Returns `None` when a
    /// detected control-store fault consumed the cycle with a recovery
    /// restart instead of an instruction.
    fn fetch(&mut self) -> Result<Option<mcc_machine::MicroInstr>, SimError> {
        let idx = self.upc as usize;
        let Some(ecc) = &self.ecc else {
            return match self.store.get(idx) {
                Some(mi) => Ok(Some(mi.clone())),
                None => Err(SimError::OffEnd(self.upc)),
            };
        };
        let Some(&(mut word, check)) = ecc.live.get(idx) else {
            return Err(SimError::OffEnd(self.upc));
        };
        for &(addr, lo, width, one) in &self.stuck {
            if addr as usize == idx {
                let lo = lo as u32 % 128;
                let w = (width as u32).clamp(1, 128 - lo);
                let mask = if w == 128 {
                    u128::MAX
                } else {
                    ((1u128 << w) - 1) << lo
                };
                if one {
                    word |= mask;
                } else {
                    word &= !mask;
                }
            }
        }
        let clean = (word, check) == ecc.golden[idx];
        if self.protect_store {
            if mcc_machine::ecc_syndrome(word, check) != 0 {
                return self.recover("parity mismatch").map(|()| None);
            }
            if clean {
                return Ok(Some(self.store[idx].clone()));
            }
            // Parity passed on a corrupted word (a multi-bit upset): the
            // decoder's strict-inverse check is the last line of defence.
            match mcc_machine::decode_instr(&self.m, word) {
                Ok(mi) => Ok(Some(mi)),
                Err(e) => self.recover(&e.to_string()).map(|()| None),
            }
        } else if clean {
            Ok(Some(self.store[idx].clone()))
        } else {
            // Unprotected store: corrupted words execute raw; only words
            // the decoder cannot make sense of at all halt the machine.
            mcc_machine::decode_instr(&self.m, word)
                .map(Some)
                .map_err(|e| {
                    SimError::BadInstr(format!("undecodable control word at {idx}: {e}"))
                })
        }
    }

    /// Executes one microinstruction.
    pub fn step(&mut self) -> Result<(), SimError> {
        let now = self.stats.cycles;
        self.apply_due_faults(now);
        if let Some(b) = &mut self.watchdog {
            if !b.tick() {
                return Err(SimError::WatchdogExpired(b.limit()));
            }
        }
        let Some(mi) = self.fetch()? else {
            return Ok(()); // the cycle went to a recovery restart
        };
        self.stats.cycles += 1;
        self.stats.instrs += 1;

        let mut writes: Vec<Write> = Vec::new();
        let mut flag_write: Option<Flags> = None;
        let mut seq = Seq::Next;
        let mut mem_write: Option<(u64, u64)> = None;

        for op in &mi.ops {
            self.stats.uops += 1;
            let t = self.m.template(op.template);
            let width = op
                .dst
                .map(|d| self.m.reg_width(d))
                .unwrap_or(self.m.word_bits);
            match t.semantic {
                Semantic::Alu(a) => {
                    let l = self.src(op, 0)?;
                    let r = if a.is_unary() {
                        0
                    } else if op.srcs.len() > 1 {
                        self.src(op, 1)?
                    } else {
                        op.imm.unwrap_or(0)
                    };
                    let (res, c, v) = a.apply(l, r, self.flags.c, width);
                    writes.push(Write {
                        reg: op
                            .dst
                            .ok_or_else(|| SimError::BadInstr("alu without dst".into()))?,
                        value: res,
                    });
                    if t.writes_flags {
                        flag_write = Some(Flags {
                            z: res == 0,
                            n: res >> (width - 1) & 1 == 1,
                            c,
                            v,
                            uf: self.flags.uf,
                        });
                    }
                }
                Semantic::Shift(s) => {
                    let val = self.src(op, 0)?;
                    let amount = op.imm.unwrap_or(0) as u32;
                    let (res, uf) = s.apply(val, amount, width);
                    writes.push(Write {
                        reg: op
                            .dst
                            .ok_or_else(|| SimError::BadInstr("shift without dst".into()))?,
                        value: res,
                    });
                    if t.writes_flags {
                        // The shifted-out bit lands in both UF and carry
                        // (documented machine family behaviour; this is
                        // what lets legalize map UF → carry on BX-2).
                        flag_write = Some(Flags {
                            z: res == 0,
                            n: res >> (width - 1) & 1 == 1,
                            c: uf,
                            v: self.flags.v,
                            uf,
                        });
                    }
                }
                Semantic::Move => {
                    writes.push(Write {
                        reg: op
                            .dst
                            .ok_or_else(|| SimError::BadInstr("mov without dst".into()))?,
                        value: self.src(op, 0)?,
                    });
                }
                Semantic::LoadImm => {
                    writes.push(Write {
                        reg: op
                            .dst
                            .ok_or_else(|| SimError::BadInstr("ldi without dst".into()))?,
                        value: op.imm.unwrap_or(0),
                    });
                }
                Semantic::MemRead => {
                    let mar = self.m.special.mar.ok_or_else(|| {
                        SimError::BadInstr("memread without MAR".into())
                    })?;
                    let mbr = self
                        .m
                        .special
                        .mbr
                        .ok_or_else(|| SimError::BadInstr("memread without MBR".into()))?;
                    let addr = self.reg(mar) % MEM_WORDS;
                    if !self.mapped[(addr / PAGE_WORDS) as usize] {
                        self.take_trap(addr);
                        return Ok(());
                    }
                    writes.push(Write {
                        reg: mbr,
                        value: self.mem[addr as usize],
                    });
                }
                Semantic::MemWrite => {
                    let mar = self.m.special.mar.ok_or_else(|| {
                        SimError::BadInstr("memwrite without MAR".into())
                    })?;
                    let mbr = self
                        .m
                        .special
                        .mbr
                        .ok_or_else(|| SimError::BadInstr("memwrite without MBR".into()))?;
                    let addr = self.reg(mar) % MEM_WORDS;
                    if !self.mapped[(addr / PAGE_WORDS) as usize] {
                        self.take_trap(addr);
                        return Ok(());
                    }
                    mem_write = Some((addr, self.reg(mbr)));
                }
                Semantic::Jump => {
                    seq = Seq::Goto(
                        op.target
                            .ok_or_else(|| SimError::BadInstr("jmp without target".into()))?,
                    )
                }
                Semantic::Branch => {
                    let c = op
                        .cond
                        .ok_or_else(|| SimError::BadInstr("branch without cond".into()))?;
                    if self.eval_cond(c) {
                        seq = Seq::Goto(op.target.ok_or_else(|| {
                            SimError::BadInstr("branch without target".into())
                        })?);
                    }
                }
                Semantic::Dispatch => {
                    let idx = self.src(op, 0)? & op.imm.unwrap_or(u64::MAX);
                    let base = op
                        .target
                        .ok_or_else(|| SimError::BadInstr("dispatch without base".into()))?;
                    seq = Seq::Goto(base.saturating_add(idx as u32));
                }
                Semantic::Call => {
                    seq = Seq::CallTo(
                        op.target
                            .ok_or_else(|| SimError::BadInstr("call without target".into()))?,
                    )
                }
                Semantic::Return => seq = Seq::Return,
                Semantic::Poll => {
                    self.pet_watchdog();
                    let (due, rest): (Vec<u64>, Vec<u64>) =
                        self.pending.iter().partition(|&&a| a <= now);
                    self.pending = rest;
                    for a in due {
                        self.service_interrupt(now, a);
                    }
                }
                Semantic::Halt => seq = Seq::Halt,
                Semantic::Nop => {}
            }
        }

        // Write phase.
        for w in writes {
            let width = self.m.reg_width(w.reg);
            self.regs[w.reg.file.index()][w.reg.index as usize] =
                w.value & mcc_machine::semantic::width_mask(width);
        }
        if let Some(fl) = flag_write {
            self.flags = fl;
        }
        if let Some((addr, v)) = mem_write {
            self.mem[addr as usize] = v & 0xFFFF;
        }

        // Sequencing.
        match seq {
            Seq::Next => self.upc += 1,
            Seq::Goto(t) => self.upc = t,
            Seq::CallTo(t) => {
                self.stack.push(self.upc + 1);
                self.upc = t;
            }
            Seq::Return => {
                self.upc = self.stack.pop().ok_or(SimError::StackUnderflow)?;
            }
            Seq::Halt => self.halted = true,
        }
        Ok(())
    }

    /// Page-fault microtrap: map the page, charge the service time, and
    /// restart the microprogram from address 0 with registers preserved.
    fn take_trap(&mut self, addr: u64) {
        self.stats.traps += 1;
        self.stats.restarts += 1;
        self.stats.cycles += self.m.trap_service_cycles;
        self.mapped[(addr / PAGE_WORDS) as usize] = true;
        self.stack.clear();
        self.upc = 0;
        // Trap service pets the watchdog: the machine is making progress
        // through the fault handler, not hanging.
        self.pet_watchdog();
    }

    fn eval_cond(&self, c: CondKind) -> bool {
        c.eval(self.flags.z, self.flags.n, self.flags.c, self.flags.v, self.flags.uf)
    }
}

/// Convenience: the effect of an ALU op on flags matches
/// [`AluOp::apply`]; re-exported op kinds for workload builders.
pub use mcc_machine::semantic::width_mask;

#[allow(unused_imports)]
use AluOp as _AluOpForDocs;
#[allow(unused_imports)]
use ShiftOp as _ShiftOpForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_machine::machines::hm1;
    use mcc_machine::op::{MicroBlock, MicroInstr};

    fn machine() -> MachineDesc {
        hm1()
    }

    /// Builds a one-block program from bound ops, one per instruction,
    /// ending in halt.
    fn program(m: &MachineDesc, ops: Vec<BoundOp>) -> MicroProgram {
        let mut p = MicroProgram::new();
        let mut instrs: Vec<MicroInstr> = ops.into_iter().map(MicroInstr::single).collect();
        instrs.push(MicroInstr::single(BoundOp::new(
            m.find_template("halt").unwrap(),
        )));
        p.blocks.push(MicroBlock { instrs });
        p
    }

    fn r(m: &MachineDesc, i: u16) -> RegRef {
        RegRef::new(m.find_file("R").unwrap(), i)
    }

    #[test]
    fn ldi_add_and_flags() {
        let m = machine();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 0))
                    .with_imm(7),
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 1))
                    .with_imm(8),
                BoundOp::new(m.find_template("add").unwrap())
                    .with_dst(r(&m, 2))
                    .with_src(r(&m, 0))
                    .with_src(r(&m, 1)),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        let st = s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 2)), 15);
        assert!(!s.flags().z);
        assert_eq!(st.instrs, 4);
        assert!(s.halted());
    }

    #[test]
    fn parallel_ops_read_before_write() {
        // Swap via one microinstruction: mov R0←R1 ∥ ALU pass R1←R0 would
        // need two units; use mov + pass which are bus/ALU. Both read old
        // values: a genuine exchange.
        let m = machine();
        let mov = BoundOp::new(m.find_template("mov").unwrap())
            .with_dst(r(&m, 0))
            .with_src(r(&m, 1));
        let pass = BoundOp::new(m.find_template("pass").unwrap())
            .with_dst(r(&m, 1))
            .with_src(r(&m, 0));
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::of(vec![mov, pass]),
                MicroInstr::single(BoundOp::new(m.find_template("halt").unwrap())),
            ],
        });
        let mut s = Simulator::new(m.clone(), &p);
        s.set_reg(r(&m, 0), 111);
        s.set_reg(r(&m, 1), 222);
        s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 0)), 222);
        assert_eq!(s.reg(r(&m, 1)), 111, "read phase precedes write phase");
    }

    #[test]
    fn memory_roundtrip() {
        let m = machine();
        let mar = m.special.mar.unwrap();
        let mbr = m.special.mbr.unwrap();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(mar)
                    .with_imm(100),
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(mbr)
                    .with_imm(42),
                BoundOp::new(m.find_template("write").unwrap()),
                BoundOp::new(m.find_template("read").unwrap()),
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(r(&m, 5))
                    .with_src(mbr),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.mem(100), 42);
        assert_eq!(s.reg(r(&m, 5)), 42);
    }

    #[test]
    fn branch_loop_counts_down() {
        // R0 = 5; loop: dec R0; jnz loop; halt.
        let m = machine();
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 0))
                    .with_imm(5),
            )],
        });
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::single(
                    BoundOp::new(m.find_template("dec").unwrap())
                        .with_dst(r(&m, 0))
                        .with_src(r(&m, 0)),
                ),
                MicroInstr::single(
                    BoundOp::new(m.find_template("br").unwrap())
                        .with_cond(CondKind::NotZero)
                        .with_target(1),
                ),
            ],
        });
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(BoundOp::new(
                m.find_template("halt").unwrap(),
            ))],
        });
        let mut s = Simulator::new(m.clone(), &p);
        let st = s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 0)), 0);
        // 1 ldi + 5×(dec+br) + halt = 12 instructions.
        assert_eq!(st.instrs, 12);
    }

    #[test]
    fn dispatch_indexes_table() {
        let m = machine();
        let mut p = MicroProgram::new();
        // b0: ldi R0,1 ; dispatch R0 mask 3 -> b1
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::single(
                    BoundOp::new(m.find_template("ldi").unwrap())
                        .with_dst(r(&m, 0))
                        .with_imm(1),
                ),
                MicroInstr::single(
                    BoundOp::new(m.find_template("dispatch").unwrap())
                        .with_src(r(&m, 0))
                        .with_imm(3)
                        .with_target(1),
                ),
            ],
        });
        // b1..b3: table: jmp to b4 after setting R1 to the case id... the
        // table entries are single jumps; cases set R1.
        for k in 0..3u32 {
            p.blocks.push(MicroBlock {
                instrs: vec![MicroInstr::single(
                    BoundOp::new(m.find_template("jmp").unwrap()).with_target(4 + k),
                )],
            });
        }
        for k in 0..3u64 {
            p.blocks.push(MicroBlock {
                instrs: vec![
                    MicroInstr::single(
                        BoundOp::new(m.find_template("ldi").unwrap())
                            .with_dst(r(&m, 1))
                            .with_imm(10 + k),
                    ),
                    MicroInstr::single(BoundOp::new(m.find_template("halt").unwrap())),
                ],
            });
        }
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 1)), 11, "case 1 taken");
    }

    #[test]
    fn call_and_return() {
        let m = machine();
        let mut p = MicroProgram::new();
        // b0: call b2; (returns here) ldi R1, 9; halt in b1
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("call").unwrap()).with_target(1),
            )],
        });
        // b1 (fall-through after return): ldi + halt
        p.blocks.push(MicroBlock {
            instrs: vec![], // placeholder so targets line up; see below
        });
        // Rebuild properly: subroutine at block 2.
        p.blocks[1] = MicroBlock {
            instrs: vec![
                MicroInstr::single(
                    BoundOp::new(m.find_template("ldi").unwrap())
                        .with_dst(r(&m, 1))
                        .with_imm(9),
                ),
                MicroInstr::single(BoundOp::new(m.find_template("halt").unwrap())),
            ],
        };
        p.blocks.push(MicroBlock {
            instrs: vec![
                MicroInstr::single(
                    BoundOp::new(m.find_template("ldi").unwrap())
                        .with_dst(r(&m, 0))
                        .with_imm(5),
                ),
                MicroInstr::single(BoundOp::new(m.find_template("ret").unwrap())),
            ],
        });
        // call targets block 1? We want call → subroutine (block 2), so
        // retarget: the call above targets 1; swap to 2.
        p.blocks[0].instrs[0].ops[0].target = Some(2);
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        assert_eq!(s.reg(r(&m, 0)), 5, "subroutine ran");
        assert_eq!(s.reg(r(&m, 1)), 9, "returned to continuation");
    }

    #[test]
    fn ret_underflow_is_an_error() {
        let m = machine();
        let p = program(&m, vec![BoundOp::new(m.find_template("ret").unwrap())]);
        let mut s = Simulator::new(m.clone(), &p);
        assert_eq!(
            s.run(&SimOptions::default()),
            Err(SimError::StackUnderflow)
        );
    }

    #[test]
    fn cycle_limit_enforced() {
        let m = machine();
        // Infinite loop: jmp 0.
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("jmp").unwrap()).with_target(0),
            )],
        });
        let mut s = Simulator::new(m, &p);
        let opts = SimOptions {
            max_cycles: 100,
            ..Default::default()
        };
        assert_eq!(s.run(&opts), Err(SimError::CycleLimit(100)));
    }

    #[test]
    fn poll_services_pending_interrupts() {
        let m = machine();
        let mut ops = Vec::new();
        // Ten movs, then a poll, then more movs.
        for _ in 0..10 {
            ops.push(
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(r(&m, 1))
                    .with_src(r(&m, 2)),
            );
        }
        ops.push(BoundOp::new(m.find_template("poll").unwrap()));
        let p = program(&m, ops);
        let mut s = Simulator::new(m.clone(), &p);
        let opts = SimOptions {
            interrupts: vec![3],
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(st.interrupts, 1);
        // Poll executes at cycle 10 → latency 10 - 3 = 7.
        assert_eq!(st.interrupt_latency_max, 7);
        assert!(st.cycles >= 11 + m.interrupt_service_cycles);
    }

    #[test]
    fn unpolled_interrupts_serviced_at_halt() {
        let m = machine();
        let p = program(
            &m,
            vec![BoundOp::new(m.find_template("mov").unwrap())
                .with_dst(r(&m, 1))
                .with_src(r(&m, 2))],
        );
        let mut s = Simulator::new(m, &p);
        let opts = SimOptions {
            interrupts: vec![0],
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(st.interrupts, 1);
        assert!(st.interrupt_latency_max >= 1);
    }

    #[test]
    fn page_fault_restarts_program_with_registers_preserved() {
        // The paper's `incread` bug: inc R0; MAR:=R0; read — the read
        // faults, the program restarts, R0 is incremented AGAIN.
        let m = machine();
        let mar = m.special.mar.unwrap();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("inc").unwrap())
                    .with_dst(r(&m, 0))
                    .with_src(r(&m, 0)),
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(mar)
                    .with_src(r(&m, 0)),
                BoundOp::new(m.find_template("read").unwrap()),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        s.set_reg(r(&m, 0), 0x1000 - 1); // increments to 0x1000, page 16
        let opts = SimOptions {
            unmapped_pages: vec![16],
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(st.traps, 1);
        assert_eq!(st.restarts, 1);
        // The double increment: 0x0FFF + 2, not + 1.
        assert_eq!(s.reg(r(&m, 0)), 0x1001, "incremented twice after restart");
    }

    #[test]
    fn trap_charges_service_cycles() {
        let m = machine();
        let mar = m.special.mar.unwrap();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(mar)
                    .with_imm(0x2000),
                BoundOp::new(m.find_template("read").unwrap()),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        let opts = SimOptions {
            unmapped_pages: vec![0x20],
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert!(st.cycles >= m.trap_service_cycles);
        assert_eq!(st.traps, 1);
    }

    #[test]
    fn shift_sets_uf_and_carry() {
        let m = machine();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 0))
                    .with_imm(0b101),
                BoundOp::new(m.find_template("shr").unwrap())
                    .with_dst(r(&m, 0))
                    .with_src(r(&m, 0))
                    .with_imm(1),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        assert!(s.flags().uf);
        assert!(s.flags().c, "shifted-out bit also lands in carry");
        assert_eq!(s.reg(r(&m, 0)), 0b10);
    }

    #[test]
    fn default_cycle_budget_is_finite() {
        // Regression: a runaway microprogram must never spin forever under
        // default options — the budget is a real, finite number.
        let opts = SimOptions::default();
        assert_eq!(opts.max_cycles, 1_000_000);
        let m = machine();
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("jmp").unwrap()).with_target(0),
            )],
        });
        let mut s = Simulator::new(m, &p);
        assert_eq!(s.run(&opts), Err(SimError::CycleLimit(1_000_000)));
    }

    #[test]
    fn control_bit_flip_is_detected_and_recovered() {
        let m = machine();
        let p = program(
            &m,
            vec![BoundOp::new(m.find_template("ldi").unwrap())
                .with_dst(r(&m, 0))
                .with_imm(7)],
        );
        let mut s = Simulator::new(m.clone(), &p);
        let opts = SimOptions {
            faults: FaultPlan::single(0, FaultKind::ControlBitFlip { addr: 0, bit: 3 }),
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(st.faults_injected, 1);
        assert_eq!(st.faults_detected, 1, "parity caught the flip");
        assert_eq!(st.fault_recoveries, 1, "scrub + restart recovered");
        assert_eq!(s.reg(r(&m, 0)), 7, "the rerun computed the right answer");
    }

    #[test]
    fn persistent_stuck_field_escalates_to_machine_check() {
        let m = machine();
        let p = program(
            &m,
            vec![BoundOp::new(m.find_template("ldi").unwrap())
                .with_dst(r(&m, 0))
                .with_imm(7)],
        );
        let mut s = Simulator::new(m.clone(), &p);
        let opts = SimOptions {
            faults: FaultPlan::single(
                0,
                FaultKind::StuckField {
                    addr: 0,
                    lo: 120,
                    width: 8,
                    stuck_one: true,
                },
            ),
            ..Default::default()
        };
        match s.run(&opts) {
            Err(SimError::MachineCheck(_)) => {}
            other => panic!("expected machine check, got {other:?}"),
        }
        assert_eq!(
            s.stats().fault_recoveries,
            opts.max_fault_retries as u64,
            "every retry was spent before the machine check"
        );
    }

    #[test]
    fn watchdog_catches_a_hang() {
        let m = machine();
        let mut p = MicroProgram::new();
        p.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("jmp").unwrap()).with_target(0),
            )],
        });
        let mut s = Simulator::new(m, &p);
        let opts = SimOptions {
            watchdog: Some(50),
            ..Default::default()
        };
        assert_eq!(s.run(&opts), Err(SimError::WatchdogExpired(50)));
    }

    #[test]
    fn watchdog_is_pet_by_polls() {
        let m = machine();
        // 30 polls in sequence: each resets the counter, so a watchdog of
        // 5 never trips even though the run is 30+ cycles long.
        let ops = (0..30)
            .map(|_| BoundOp::new(m.find_template("poll").unwrap()))
            .collect();
        let p = program(&m, ops);
        let mut s = Simulator::new(m, &p);
        let opts = SimOptions {
            watchdog: Some(5),
            ..Default::default()
        };
        s.run(&opts).unwrap();
    }

    #[test]
    fn register_upset_is_silent_data_corruption() {
        let m = machine();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(r(&m, 0))
                    .with_imm(7),
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(r(&m, 1))
                    .with_src(r(&m, 0)),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        let opts = SimOptions {
            faults: FaultPlan::single(
                1,
                FaultKind::RegisterUpset {
                    reg: r(&m, 0),
                    bit: 0,
                },
            ),
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(s.reg(r(&m, 1)), 6, "the upset value propagated");
        assert_eq!(st.faults_detected, 0, "registers carry no parity");
    }

    #[test]
    fn unmap_page_fault_takes_a_trap_mid_run() {
        let m = machine();
        let mar = m.special.mar.unwrap();
        let p = program(
            &m,
            vec![
                BoundOp::new(m.find_template("ldi").unwrap())
                    .with_dst(mar)
                    .with_imm(0x3000),
                BoundOp::new(m.find_template("read").unwrap()),
            ],
        );
        let mut s = Simulator::new(m.clone(), &p);
        let opts = SimOptions {
            faults: FaultPlan::single(1, FaultKind::UnmapPage { page: 0x30 }),
            ..Default::default()
        };
        let st = s.run(&opts).unwrap();
        assert_eq!(st.traps, 1);
        assert_eq!(st.restarts, 1);
    }

    #[test]
    fn unprotected_store_executes_or_halts_but_never_panics() {
        let m = machine();
        let p = program(
            &m,
            vec![BoundOp::new(m.find_template("ldi").unwrap())
                .with_dst(r(&m, 0))
                .with_imm(7)],
        );
        for bit in 0..m.control_word_bits() as u8 {
            let mut s = Simulator::new(m.clone(), &p);
            let opts = SimOptions {
                faults: FaultPlan::single(0, FaultKind::ControlBitFlip { addr: 0, bit }),
                protect_store: false,
                max_cycles: 10_000,
                ..Default::default()
            };
            let _ = s.run(&opts); // any Ok/Err is fine; panics are not
        }
    }

    #[test]
    fn off_end_is_an_error() {
        let m = machine();
        let p = program(&m, vec![]); // just a halt
        let mut s = Simulator::new(m.clone(), &p);
        s.run(&SimOptions::default()).unwrap();
        // Build a program with no halt.
        let mut p2 = MicroProgram::new();
        p2.blocks.push(MicroBlock {
            instrs: vec![MicroInstr::single(
                BoundOp::new(m.find_template("mov").unwrap())
                    .with_dst(r(&m, 0))
                    .with_src(r(&m, 1)),
            )],
        });
        let mut s2 = Simulator::new(m, &p2);
        assert_eq!(s2.run(&SimOptions::default()), Err(SimError::OffEnd(1)));
    }
}
