//! **MAC-1** — a small accumulator macroarchitecture.
//!
//! Experiment E5 needs a *macro* level: the survey's §3 compares "speeding
//! up a heavily used procedure by a factor of five" (compiled microcode)
//! with "a factor of ten" (expert microassembly) relative to ordinary
//! macrocode execution. MAC-1 supplies that baseline: a 16-bit accumulator
//! ISA whose interpreter is itself a microprogram (built in `mcc-bench`
//! via the normal compilation pipeline — emulator construction is exactly
//! the use case of the paper's reference \[14\]).
//!
//! Instruction format: `oooo aaaaaaaaaaaa` — 4-bit opcode, 12-bit operand.

use serde::{Deserialize, Serialize};

/// MAC-1 opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MacroOp {
    /// Stop.
    Halt = 0,
    /// `ACC = MEM[addr]`
    Lda = 1,
    /// `MEM[addr] = ACC`
    Sta = 2,
    /// `ACC += MEM[addr]`
    Add = 3,
    /// `ACC -= MEM[addr]`
    Sub = 4,
    /// `ACC = imm` (12-bit)
    Ldi = 5,
    /// `PC = addr`
    Jmp = 6,
    /// `if ACC == 0 then PC = addr`
    Jz = 7,
    /// `if ACC != 0 then PC = addr`
    Jnz = 8,
    /// `ACC &= MEM[addr]`
    And = 9,
    /// `ACC >>= imm` (logical)
    Shr = 10,
    /// `ACC <<= imm`
    Shl = 11,
}

/// One assembled MAC-1 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroInstr {
    /// The operation.
    pub op: MacroOp,
    /// The 12-bit operand (address or immediate).
    pub operand: u16,
}

impl MacroInstr {
    /// Builds an instruction, masking the operand to 12 bits.
    pub fn new(op: MacroOp, operand: u16) -> Self {
        MacroInstr {
            op,
            operand: operand & 0x0FFF,
        }
    }

    /// The 16-bit encoding.
    pub fn encode(self) -> u16 {
        ((self.op as u16) << 12) | self.operand
    }

    /// Decodes a 16-bit word; unknown opcodes decode to `Halt`.
    pub fn decode(word: u16) -> Self {
        let op = match word >> 12 {
            1 => MacroOp::Lda,
            2 => MacroOp::Sta,
            3 => MacroOp::Add,
            4 => MacroOp::Sub,
            5 => MacroOp::Ldi,
            6 => MacroOp::Jmp,
            7 => MacroOp::Jz,
            8 => MacroOp::Jnz,
            9 => MacroOp::And,
            10 => MacroOp::Shr,
            11 => MacroOp::Shl,
            _ => MacroOp::Halt,
        };
        MacroInstr {
            op,
            operand: word & 0x0FFF,
        }
    }
}

/// Assembles a program into a memory image at `base`.
pub fn assemble(prog: &[MacroInstr]) -> Vec<u16> {
    prog.iter().map(|i| i.encode()).collect()
}

/// A pure-Rust reference executor for MAC-1 — the ground truth the
/// microcoded interpreter is tested against.
#[derive(Debug, Clone)]
pub struct MacroMachine {
    /// The accumulator.
    pub acc: u16,
    /// The program counter (word address).
    pub pc: u16,
    /// Word-addressed memory.
    pub mem: Vec<u16>,
    /// Whether `Halt` has executed.
    pub halted: bool,
    /// Macroinstructions executed.
    pub steps: u64,
}

impl MacroMachine {
    /// Fresh machine with 4096 words of memory.
    pub fn new() -> Self {
        MacroMachine {
            acc: 0,
            pc: 0,
            mem: vec![0; 4096],
            halted: false,
            steps: 0,
        }
    }

    /// Loads `words` at address `base`.
    pub fn load(&mut self, base: u16, words: &[u16]) {
        for (i, w) in words.iter().enumerate() {
            self.mem[base as usize + i] = *w;
        }
    }

    /// Runs until halt or `max_steps`.
    pub fn run(&mut self, max_steps: u64) {
        while !self.halted && self.steps < max_steps {
            self.step();
        }
    }

    /// Executes one macroinstruction.
    pub fn step(&mut self) {
        let i = MacroInstr::decode(self.mem[self.pc as usize % 4096]);
        self.pc = self.pc.wrapping_add(1);
        self.steps += 1;
        let a = i.operand as usize % 4096;
        match i.op {
            MacroOp::Halt => self.halted = true,
            MacroOp::Lda => self.acc = self.mem[a],
            MacroOp::Sta => self.mem[a] = self.acc,
            MacroOp::Add => self.acc = self.acc.wrapping_add(self.mem[a]),
            MacroOp::Sub => self.acc = self.acc.wrapping_sub(self.mem[a]),
            MacroOp::Ldi => self.acc = i.operand,
            MacroOp::Jmp => self.pc = i.operand,
            MacroOp::Jz => {
                if self.acc == 0 {
                    self.pc = i.operand;
                }
            }
            MacroOp::Jnz => {
                if self.acc != 0 {
                    self.pc = i.operand;
                }
            }
            MacroOp::And => self.acc &= self.mem[a],
            MacroOp::Shr => self.acc >>= i.operand.min(15),
            MacroOp::Shl => self.acc <<= i.operand.min(15),
        }
    }
}

impl Default for MacroMachine {
    fn default() -> Self {
        Self::new()
    }
}

/// A sample MAC-1 program: sums the `n` words starting at `data`, leaving
/// the total in `MEM[out]`. Uses `ptr`/`cnt` cells for state.
///
/// Memory layout convention: program at 0, cells and data as given.
pub fn sum_program(data: u16, n: u16, out: u16, cnt_cell: u16, acc_cell: u16) -> Vec<MacroInstr> {
    use MacroOp::*;
    // Unrolled-address version (self-modifying code avoided): since MAC-1
    // has no indexing, the generator unrolls the loads.
    let mut p = Vec::new();
    p.push(MacroInstr::new(Ldi, 0));
    p.push(MacroInstr::new(Sta, acc_cell));
    for k in 0..n {
        p.push(MacroInstr::new(Lda, acc_cell));
        p.push(MacroInstr::new(Add, data + k));
        p.push(MacroInstr::new(Sta, acc_cell));
    }
    p.push(MacroInstr::new(Lda, acc_cell));
    p.push(MacroInstr::new(Sta, out));
    let _ = cnt_cell;
    p.push(MacroInstr::new(Halt, 0));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for op in [
            MacroOp::Halt,
            MacroOp::Lda,
            MacroOp::Sta,
            MacroOp::Add,
            MacroOp::Sub,
            MacroOp::Ldi,
            MacroOp::Jmp,
            MacroOp::Jz,
            MacroOp::Jnz,
            MacroOp::And,
            MacroOp::Shr,
            MacroOp::Shl,
        ] {
            let i = MacroInstr::new(op, 0xABC);
            assert_eq!(MacroInstr::decode(i.encode()), i);
        }
    }

    #[test]
    fn operand_masked_to_12_bits() {
        let i = MacroInstr::new(MacroOp::Lda, 0xFFFF);
        assert_eq!(i.operand, 0x0FFF);
    }

    #[test]
    fn reference_machine_runs_sum() {
        let prog = sum_program(100, 4, 200, 201, 202);
        let words = assemble(&prog);
        let mut mm = MacroMachine::new();
        mm.load(0, &words);
        for (k, v) in [(100u16, 5u16), (101, 6), (102, 7), (103, 8)] {
            mm.mem[k as usize] = v;
        }
        mm.run(10_000);
        assert!(mm.halted);
        assert_eq!(mm.mem[200], 26);
    }

    #[test]
    fn jz_and_jnz() {
        use MacroOp::*;
        let prog = vec![
            MacroInstr::new(Ldi, 0),
            MacroInstr::new(Jz, 3),
            MacroInstr::new(Ldi, 99), // skipped
            MacroInstr::new(Ldi, 1),
            MacroInstr::new(Jnz, 6),
            MacroInstr::new(Ldi, 98), // skipped
            MacroInstr::new(Halt, 0),
        ];
        let mut mm = MacroMachine::new();
        mm.load(0, &assemble(&prog));
        mm.run(100);
        assert!(mm.halted);
        assert_eq!(mm.acc, 1);
    }

    #[test]
    fn shifts() {
        use MacroOp::*;
        let prog = vec![
            MacroInstr::new(Ldi, 0b1010),
            MacroInstr::new(Shl, 2),
            MacroInstr::new(Shr, 1),
            MacroInstr::new(Halt, 0),
        ];
        let mut mm = MacroMachine::new();
        mm.load(0, &assemble(&prog));
        mm.run(100);
        assert_eq!(mm.acc, 0b10100);
    }
}
