//! End-to-end drain discipline: a drain that begins mid-burst must leave
//! no request unanswered, execute nothing twice, and leave a cache
//! journal that replays cleanly on restart.
//!
//! Single `#[test]` on purpose: the global cache (and its
//! `MCC_CACHE_DIR`) is process-wide state, so this file owns the whole
//! process.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mcc_serve::{proto, ServeConfig, Server};

#[test]
fn drain_mid_burst_answers_everything_and_journal_replays() {
    let dir = std::env::temp_dir().join(format!("mcc-serve-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("MCC_CACHE_DIR", &dir);
    assert!(mcc_cache::attach_default_disk().unwrap());

    let server = Arc::new(Server::start(ServeConfig {
        workers: 2,
        queue_bound: 8,
        deadline: Duration::from_millis(30_000),
        ..ServeConfig::default()
    }));

    // Four clients burst 12 distinct compiles each; the drain begins in
    // the middle of the burst.
    const THREADS: usize = 4;
    const PER_THREAD: usize = 12;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let mut codes = Vec::new();
            for i in 0..PER_THREAD {
                // Distinct sources: every 200 is a genuine cold compile,
                // so cache counters measure executions exactly.
                let src = format!(
                    "reg a = R0\nconst a, {}\nadd a, a, 1\nexit a\n",
                    t * 1000 + i
                );
                let line = proto::compile_line(&format!("c{t}-{i}"), "hm1", "yalll", &src);
                let r = server.handle_line(&line, &format!("client{t}"));
                codes.push(r.code);
            }
            codes
        }));
    }

    std::thread::sleep(Duration::from_millis(10));
    let inflight_at_drain = server.drain();

    let mut all_codes = Vec::new();
    for h in handles {
        let codes = h.join().expect("client thread survived the drain");
        assert_eq!(
            codes.len(),
            PER_THREAD,
            "every submission resolved to exactly one response"
        );
        all_codes.extend(codes);
    }
    assert_eq!(all_codes.len(), THREADS * PER_THREAD);
    assert!(
        all_codes.iter().all(|c| [200, 503].contains(c)),
        "burst responses are 200 or structured 503, got {all_codes:?}"
    );

    let n200 = all_codes.iter().filter(|&&c| c == 200).count() as u64;
    assert!(n200 > 0, "some requests completed before the drain");
    let counters = server.counters();
    assert_eq!(
        counters.accepted.load(Ordering::Relaxed),
        counters.completed.load(Ordering::Relaxed),
        "every accepted request completed (none dropped by the drain)"
    );
    assert_eq!(counters.completed.load(Ordering::Relaxed), n200);
    assert_eq!(server.queue_depth(), 0, "drain leaves nothing in flight");
    eprintln!("drain began with {inflight_at_drain} in flight, {n200} of 48 completed");

    // No double execution: with all-distinct sources, each 200 is one
    // miss and one store, and nothing was ever served twice from cache.
    let cache = mcc_cache::global().counters();
    assert_eq!(cache.hits(), 0, "distinct sources cannot hit");
    assert_eq!(cache.misses, n200, "each 200 executed exactly once");
    assert_eq!(cache.stores, n200);

    if let Ok(s) = Arc::try_unwrap(server) {
        s.shutdown();
    }

    // Restart: the journal and the stats log replay cleanly.
    let tier = mcc_cache::DiskTier::open(&dir).expect("cache log replays after drain");
    assert!(
        tier.len() as u64 <= n200,
        "disk tier holds at most the completed artifacts (tier-2 pressure may skip disk)"
    );
    let stats = mcc_cache::read_stats(&dir);
    assert_eq!(
        (stats.misses, stats.stores, stats.evictions),
        (n200, n200, 0),
        "drain flushed the stats journal; restart replays the same totals"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
