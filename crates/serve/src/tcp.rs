//! The TCP front end: newline-delimited JSON over `TcpListener`, one
//! thread per connection, the accept loop polling a stop flag so a
//! signal (or a `drain` frame) can end the daemon gracefully.
//!
//! The loop is generic over a [`LineHandler`] so the compile daemon
//! (`mcc serve`) and the shard router (`mcc route`) share one accept
//! loop, one containment discipline, and one idle reaper.
//!
//! Containment discipline: each *request* is handled behind
//! `catch_unwind`, so neither a malformed frame nor a pipeline bug can
//! take down a connection, and no connection failure can take down the
//! daemon — a dropped socket mid-frame just ends that connection's
//! thread. Responses are written back in request order per connection
//! (the protocol is pipelined but ordered, like HTTP/1.1), through
//! [`write_frame`], which loops over partial writes and retries `EINTR`
//! so a short `write` can never truncate a frame.
//!
//! Idle reaper: a connected client that never sends a request must not
//! pin a connection thread forever. With an idle timeout set, the read
//! side times out, the connection is closed, and the handler's
//! [`LineHandler::on_idle_reap`] bumps its `idle_reaped` counter.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::Response;
use crate::Server;

/// How often the accept loop polls the stop flag.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// One endpoint of the newline-delimited protocol: turns a request line
/// into a newline-terminated response line. Implemented by the compile
/// daemon ([`Server`]) and by the router (`mcc_route::Router`).
pub trait LineHandler: Send + Sync + 'static {
    /// Handles one frame; the returned line must be newline-terminated.
    fn handle_wire(&self, line: &str, client: &str) -> String;

    /// Two-phase intake for pipelined peers: a handler that can
    /// separate admission from completion returns `Pending`, letting
    /// the wire loop put a whole burst of frames into the work queue
    /// before collecting any outcome — the workers chew the backlog in
    /// one scheduling quantum instead of round-tripping per request.
    /// The default is the blocking round trip.
    fn submit_wire(&self, line: &str, client: &str) -> WireSubmission {
        WireSubmission::Done(self.handle_wire(line, client))
    }

    /// Called when the idle reaper closes a connection.
    fn on_idle_reap(&self) {}

    /// Called when a connection is closed for exceeding
    /// [`crate::proto::MAX_FRAME_BYTES`] on one inbound line.
    fn on_oversized(&self) {}

    /// Called once when a connection negotiates up to protocol v2.
    fn on_v2_connection(&self) {}

    /// Called per decoded v2 frame.
    fn on_v2_frame(&self) {}

    /// Called when a v2 stream turns structurally corrupt and the
    /// connection is closed with an error frame.
    fn on_corrupt_frame(&self) {}

    /// The idle timeout for connections served on behalf of this
    /// handler (`None` = never reap).
    fn idle_timeout(&self) -> Option<Duration> {
        None
    }
}

/// The result of [`LineHandler::submit_wire`].
pub enum WireSubmission {
    /// Resolved immediately; the line is newline-terminated.
    Done(String),
    /// Admitted; the single response arrives on this channel.
    Pending(std::sync::mpsc::Receiver<Response>),
}

impl LineHandler for Server {
    fn handle_wire(&self, line: &str, client: &str) -> String {
        self.handle_frame(line, client)
    }

    fn submit_wire(&self, line: &str, client: &str) -> WireSubmission {
        // Only a bare frame can split admission from completion; an
        // enveloped frame owes the idempotency layer a resolution,
        // which the blocking path provides.
        if !matches!(crate::proto::unwrap_envelope(line), crate::proto::Envelope::Bare) {
            return WireSubmission::Done(self.handle_frame(line, client));
        }
        match catch_unwind(AssertUnwindSafe(|| self.submit_line(line, client))) {
            Ok(crate::Submitted::Done(r)) => WireSubmission::Done(r.to_line()),
            Ok(crate::Submitted::Pending(rx)) => WireSubmission::Pending(rx),
            Err(p) => WireSubmission::Done(
                Response::error(
                    &crate::proto::frame_id(line),
                    500,
                    &format!(
                        "panic contained in request loop: {}",
                        mcc_harness::pool::panic_text(p.as_ref())
                    ),
                )
                .to_line(),
            ),
        }
    }

    fn on_idle_reap(&self) {
        let c = self.counters();
        c.bump(&c.idle_reaped);
    }

    fn on_oversized(&self) {
        let c = self.counters();
        c.bump(&c.oversized_frames);
    }

    fn on_v2_connection(&self) {
        let c = self.counters();
        c.bump(&c.v2_connections);
    }

    fn on_v2_frame(&self) {
        let c = self.counters();
        c.bump(&c.v2_frames);
    }

    fn on_corrupt_frame(&self) {
        let c = self.counters();
        c.bump(&c.corrupt_frames);
    }

    fn idle_timeout(&self) -> Option<Duration> {
        self.config_idle_timeout()
    }
}

/// The outcome of reading one frame from a socket with a length cap.
#[derive(Debug)]
pub enum FrameRead {
    /// One complete newline-terminated frame (invalid UTF-8 replaced, so
    /// corruption surfaces as a parse `400`, never an I/O error).
    Frame(String),
    /// Clean end of stream (a partial trailing frame is discarded — a torn
    /// frame is never processed as if it were complete).
    Eof,
    /// The line exceeded the cap. The caller must answer with a structured
    /// `400` and close the connection — there is no bounded way to resync.
    Oversized,
    /// The read timed out (`WouldBlock`/`TimedOut` from a socket deadline).
    TimedOut,
}

/// [`read_frame_into`] minus the `String`: the frame's bytes (including
/// the newline) are left in `buf` for the caller to borrow, so a
/// connection loop can reuse one buffer for its whole lifetime instead
/// of allocating a `String` per request.
#[derive(Debug)]
pub enum FrameBufRead {
    /// One complete frame's bytes are in the caller's buffer.
    Frame,
    /// See [`FrameRead::Eof`].
    Eof,
    /// See [`FrameRead::Oversized`]; the buffer has been cleared.
    Oversized,
    /// See [`FrameRead::TimedOut`]; partial bytes stay in the buffer.
    TimedOut,
}

/// Reads one capped frame into `buf`, leaving the bytes there (see
/// [`FrameBufRead`]). Partial-frame state persists in `buf` across
/// [`FrameBufRead::TimedOut`] returns so a caller that polls with a
/// short read timeout never loses bytes. `EINTR` is retried, matching
/// the [`write_frame`] write-all discipline.
///
/// # Errors
///
/// Any I/O error other than `EINTR` and the timeout kinds.
pub fn read_frame_buf(
    r: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<FrameBufRead> {
    loop {
        let (take, done) = {
            let chunk = match r.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FrameBufRead::TimedOut)
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                return Ok(FrameBufRead::Eof);
            }
            match chunk.iter().position(|b| *b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&chunk[..=i]);
                    (i + 1, true)
                }
                None => {
                    buf.extend_from_slice(chunk);
                    (chunk.len(), false)
                }
            }
        };
        r.consume(take);
        if buf.len() > max {
            buf.clear();
            return Ok(FrameBufRead::Oversized);
        }
        if done {
            return Ok(FrameBufRead::Frame);
        }
    }
}

/// Reads one capped frame as an owned `String`, carrying partial-frame
/// state in `buf` across [`FrameRead::TimedOut`] returns. Built on
/// [`read_frame_buf`]; callers that can borrow should use that directly.
///
/// # Errors
///
/// See [`read_frame_buf`].
pub fn read_frame_into(
    r: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<FrameRead> {
    Ok(match read_frame_buf(r, buf, max)? {
        FrameBufRead::Frame => {
            let frame = String::from_utf8_lossy(buf).into_owned();
            buf.clear();
            FrameRead::Frame(frame)
        }
        FrameBufRead::Eof => FrameRead::Eof,
        FrameBufRead::Oversized => FrameRead::Oversized,
        FrameBufRead::TimedOut => FrameRead::TimedOut,
    })
}

/// [`read_frame_into`] with a throwaway buffer — for callers that treat a
/// timeout as fatal for the connection (serve reaper, router round trips),
/// where discarding a stalled half-frame is the intended behaviour.
///
/// # Errors
///
/// See [`read_frame_into`].
pub fn read_frame(r: &mut impl BufRead, max: usize) -> io::Result<FrameRead> {
    let mut buf = Vec::new();
    read_frame_into(r, &mut buf, max)
}

/// Writes one whole response frame: loops until every byte is accepted,
/// retrying `EINTR` (`ErrorKind::Interrupted`) on both the writes and
/// the flush — a short write must never truncate a frame mid-line, or
/// the client would misparse every subsequent pipelined response.
///
/// # Errors
///
/// Any non-`EINTR` I/O error, and `WriteZero` if the peer stops
/// accepting bytes entirely.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    let mut rest = frame;
    while !rest.is_empty() {
        match w.write(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "connection stopped accepting bytes mid-frame",
                ))
            }
            Ok(n) => rest = &rest[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    loop {
        match w.flush() {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves connections until `stop` goes true (a signal handler or a
/// `drain` frame sets it), then returns — the caller runs the drain.
/// Connection threads are detached: they answer `503 draining` to
/// anything submitted after the drain begins, and die with their
/// sockets.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only end that connection.
pub fn serve_lines(
    handler: Arc<dyn LineHandler>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, addr)) => {
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                let client = addr.to_string();
                std::thread::spawn(move || {
                    let _ = connection(handler, stream, &client, &stop);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The compile daemon's entry point (kept for source compatibility):
/// [`serve_lines`] over the server itself.
///
/// # Errors
///
/// See [`serve_lines`].
pub fn serve(
    server: Arc<Server>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    serve_lines(server, listener, stop)
}

/// One connection. The first inbound byte picks the protocol: the v2
/// magic (`0xB5`) routes to the pipelined frame loop, anything else
/// (a `{` or `@` from a v1 peer) to the classic line loop — so v1-only
/// clients get correct service from a v2 server with zero
/// configuration. An idle timeout on the read side feeds the reaper.
fn connection(
    handler: Arc<dyn LineHandler>,
    stream: TcpStream,
    client: &str,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(handler.idle_timeout())?;
    let writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // closed before the first byte.
            Ok(chunk) if chunk[0] == crate::proto2::MAGIC[0] => {
                return v2_connection(handler, reader, writer, client, stop);
            }
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                handler.on_idle_reap();
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
    v1_connection(&*handler, reader, writer, client, stop)
}

/// The classic v1 loop: read lines, answer each with exactly one line.
/// One reusable buffer carries every request; the line is borrowed from
/// it (`Cow`), so the steady state allocates nothing on the read side.
fn v1_connection(
    handler: &dyn LineHandler,
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    client: &str,
    stop: &AtomicBool,
) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_frame_buf(&mut reader, &mut buf, crate::proto::MAX_FRAME_BYTES)? {
            FrameBufRead::Frame => {}
            FrameBufRead::Eof => return Ok(()), // client closed cleanly.
            // The read timed out with nothing (or only a partial frame)
            // buffered: reap the connection. A stalled half-frame is
            // reaped too — the client was mid-line for the whole window.
            FrameBufRead::TimedOut => {
                handler.on_idle_reap();
                return Ok(());
            }
            // One endless line must not OOM the daemon: structured 400,
            // count it, close — resyncing on the rest is unbounded too.
            FrameBufRead::Oversized => {
                handler.on_oversized();
                let resp = Response::error(
                    "",
                    400,
                    &format!(
                        "oversized frame: longer than {} bytes",
                        crate::proto::MAX_FRAME_BYTES
                    ),
                );
                let _ = write_frame(&mut writer, resp.to_line().as_bytes());
                return Ok(());
            }
        }
        {
            let line = String::from_utf8_lossy(&buf);
            if !line.trim().is_empty() {
                let response = handler.handle_wire(&line, client);
                write_frame(&mut writer, response.as_bytes())?;
                // A drain frame stops the accept loop too, not just this
                // connection. Enveloped drains count: unwrap first.
                let body = crate::proto::envelope_body(&line);
                if matches!(crate::proto::parse_request(body), Ok(crate::Request::Drain)) {
                    stop.store(true, Ordering::SeqCst);
                }
            }
        }
        crate::buf::shrink_reusable(&mut buf);
    }
}

/// Ceiling on worker threads spawned per v2 connection; the negotiated
/// window can exceed this (requests still queue), but per-connection
/// thread fan-out stays bounded.
const V2_WORKERS_MAX: usize = 8;

/// Per-connection worker budget: the machine's parallelism, capped at
/// [`V2_WORKERS_MAX`]. A budget of 1 selects the inline dispatch path —
/// on a single-core box every extra thread hop is pure context-switch
/// overhead, and pipelining should win on syscall amortization alone.
/// `MCC_V2_WORKERS` overrides (clamped to `1..=V2_WORKERS_MAX`), which
/// CI uses to pin one path regardless of runner shape.
fn v2_worker_budget() -> usize {
    if let Some(n) = std::env::var("MCC_V2_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return n.clamp(1, V2_WORKERS_MAX);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(V2_WORKERS_MAX)
}

/// The v2 pipelined loop. One reader (this thread) decodes frames and
/// dispatches requests to a small lazy worker pool; one writer thread
/// batches response frames through a [`crate::buf::SegBuf`]. Requests
/// with a non-empty cid are re-wrapped as `@mcc1` envelopes before
/// hitting the handler, so v2 rides the exact dedup/replay machinery
/// that made v1 exactly-once — the protocols cannot drift.
fn v2_connection(
    handler: Arc<dyn LineHandler>,
    mut reader: BufReader<TcpStream>,
    writer: TcpStream,
    client: &str,
    stop: &AtomicBool,
) -> io::Result<()> {
    use crate::proto2::{self, Caps, FrameFault, FrameType};
    use std::sync::mpsc;
    use std::sync::{Condvar, Mutex};

    if v2_worker_budget() == 1 {
        return v2_connection_inline(handler, reader, writer, client, stop);
    }

    handler.on_v2_connection();
    writer.set_write_timeout(handler.idle_timeout()).ok();

    // Writer thread: encodes into a reusable segmented buffer, batching
    // everything queued at wake-up into one write burst.
    let compress_on = Arc::new(AtomicBool::new(false));
    let (wtx, wrx) = mpsc::channel::<(FrameType, String, u64, String)>();
    let writer_compress = Arc::clone(&compress_on);
    let writer_handle = std::thread::spawn(move || {
        let mut w = writer;
        let mut seg = crate::buf::SegBuf::new();
        let mut scratch: Vec<u8> = Vec::new();
        while let Ok(first) = wrx.recv() {
            let min = writer_compress
                .load(Ordering::SeqCst)
                .then_some(proto2::COMPRESS_MIN_BYTES);
            let encode = |(ftype, cid, rid, body): (FrameType, String, u64, String),
                              seg: &mut crate::buf::SegBuf,
                              scratch: &mut Vec<u8>| {
                crate::buf::shrink_reusable(scratch);
                proto2::encode_frame(scratch, ftype, &cid, rid, body.trim_end_matches('\n'), min);
                seg.extend(scratch);
            };
            encode(first, &mut seg, &mut scratch);
            while seg.len() < 256 * 1024 {
                match wrx.try_recv() {
                    Ok(next) => encode(next, &mut seg, &mut scratch),
                    Err(_) => break,
                }
            }
            if seg.write_out(&mut w).is_err() {
                return; // peer gone; the reader will see EOF/RST.
            }
        }
    });

    // Lazy worker pool: a Mutex-guarded Receiver is the spmc queue.
    let (work_tx, work_rx) = mpsc::channel::<(String, u64, String)>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    let in_flight = Arc::new((Mutex::new(0usize), Condvar::new()));
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let spawn_worker = |workers: &mut Vec<std::thread::JoinHandle<()>>| {
        let handler = Arc::clone(&handler);
        let wtx = wtx.clone();
        let rx = Arc::clone(&work_rx);
        let gate = Arc::clone(&in_flight);
        let client = client.to_string();
        workers.push(std::thread::spawn(move || loop {
            // Holding the lock across recv serializes the *wait*, not
            // the work: the winner releases it as soon as an item lands.
            let item = rx.lock().unwrap().recv();
            let Ok((cid, rid, body)) = item else { return };
            let line = if cid.is_empty() {
                format!("{body}\n")
            } else {
                crate::proto::wrap_envelope(&cid, rid, &body)
            };
            let resp = handler.handle_wire(&line, &client);
            let out = match crate::proto::unwrap_envelope(&resp) {
                crate::proto::Envelope::Enveloped { body, .. } => body,
                _ => resp.trim_end_matches('\n').to_string(),
            };
            let _ = wtx.send((FrameType::Response, cid, rid, out));
            let (m, cv) = &*gate;
            *m.lock().unwrap() -= 1;
            cv.notify_all();
        }));
    };

    let mut caps = Caps { compress: false, window: proto2::DEFAULT_WINDOW };
    let mut acc: Vec<u8> = Vec::new();
    'conn: loop {
        // Drain every complete frame already buffered.
        loop {
            let bait = acc.iter().take_while(|b| **b == b'\n').count();
            if bait > 0 {
                acc.drain(..bait);
            }
            let total = match proto2::frame_len(&acc) {
                Ok(Some(t)) if acc.len() >= t => t,
                Ok(_) => break, // need more bytes.
                Err(fault) => {
                    match &fault {
                        FrameFault::Oversized(_) => handler.on_oversized(),
                        FrameFault::Corrupt(_) => handler.on_corrupt_frame(),
                    }
                    let resp = Response::error("", 400, fault.reason());
                    let _ = wtx.send((
                        FrameType::Error,
                        String::new(),
                        0,
                        resp.to_line().trim_end().to_string(),
                    ));
                    break 'conn;
                }
            };
            let frame = match proto2::decode_frame(&acc) {
                Ok((f, _)) => f,
                Err(proto2::DecodeErr::Corrupt(reason)) => {
                    handler.on_corrupt_frame();
                    let resp = Response::error("", 400, &reason);
                    let _ = wtx.send((
                        FrameType::Error,
                        String::new(),
                        0,
                        resp.to_line().trim_end().to_string(),
                    ));
                    break 'conn;
                }
                Err(proto2::DecodeErr::Incomplete) => unreachable!("length was checked"),
            };
            acc.drain(..total);
            handler.on_v2_frame();
            match frame.ftype {
                // Repeated hellos are acked idempotently — a chaos
                // Duplicate fault can double one, and the client just
                // discards extra acks.
                FrameType::Hello => {
                    if let Some(want) = proto2::parse_hello(&frame.body) {
                        caps = proto2::negotiate(&want);
                        compress_on.store(caps.compress, Ordering::SeqCst);
                    }
                    let _ = wtx.send((
                        FrameType::HelloAck,
                        String::new(),
                        0,
                        proto2::hello_body(&caps),
                    ));
                }
                FrameType::Request => {
                    // Respect the negotiated window: wait for a slot.
                    {
                        let (m, cv) = &*in_flight;
                        let mut n = m.lock().unwrap();
                        while *n >= caps.window as usize {
                            // Workers are panic-contained, so a slot
                            // always frees; the timeout is belt and
                            // braces against a wedged handler.
                            let (next, _) = cv
                                .wait_timeout(n, Duration::from_millis(100))
                                .unwrap();
                            n = next;
                        }
                        *n += 1;
                        if workers.len() < (caps.window as usize).min(v2_worker_budget())
                            && *n > workers.len()
                        {
                            spawn_worker(&mut workers);
                        }
                    }
                    // Drain sniff before dispatch, mirroring the v1 loop.
                    if matches!(
                        crate::proto::parse_request(&frame.body),
                        Ok(crate::Request::Drain)
                    ) {
                        stop.store(true, Ordering::SeqCst);
                    }
                    let _ = work_tx.send((frame.cid, frame.rid, frame.body));
                }
                // A client has no business sending these; close loudly.
                FrameType::HelloAck | FrameType::Response | FrameType::Error => {
                    handler.on_corrupt_frame();
                    let resp =
                        Response::error("", 400, "unexpected frame type from a client");
                    let _ = wtx.send((
                        FrameType::Error,
                        String::new(),
                        0,
                        resp.to_line().trim_end().to_string(),
                    ));
                    break 'conn;
                }
            }
        }
        match reader.fill_buf() {
            Ok([]) => break 'conn, // clean close; a torn tail is dropped.
            Ok(chunk) => {
                let n = chunk.len();
                acc.extend_from_slice(chunk);
                reader.consume(n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                let idle = {
                    let (m, _) = &*in_flight;
                    *m.lock().unwrap() == 0
                };
                if idle {
                    handler.on_idle_reap();
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }
    // Teardown order matters: close the work queue, let workers flush
    // their last responses, then close the writer queue and flush it.
    drop(work_tx);
    for w in workers {
        let _ = w.join();
    }
    drop(wtx);
    let _ = writer_handle.join();
    Ok(())
}

/// The single-thread v2 loop, selected when [`v2_worker_budget`] is 1:
/// decode every complete frame in the read burst, handle each inline,
/// batch the response frames into one segmented buffer, and flush it
/// with one write before the next read. No worker pool, no writer
/// thread — on a machine with nothing to parallelize, the whole win of
/// pipelining is one read and one write syscall per burst instead of
/// one of each per request. Semantics match the pooled path: same
/// negotiation, same envelope/dedup routing, same fault handling; only
/// in-flight overlap (pointless on one core) is absent.
fn v2_connection_inline(
    handler: Arc<dyn LineHandler>,
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    client: &str,
    stop: &AtomicBool,
) -> io::Result<()> {
    use crate::proto2::{self, Caps, FrameFault, FrameType};

    handler.on_v2_connection();
    writer.set_write_timeout(handler.idle_timeout()).ok();

    /// One frame owed to the peer, in arrival order: either already
    /// resolved, or an admitted compile whose outcome the supervisor
    /// still owes. Deferring the collection until the whole read burst
    /// is admitted is the inline path's pipelining: the worker pool
    /// drains the burst's backlog without a per-request round trip.
    enum Out {
        Ready { ftype: FrameType, cid: String, rid: u64, body: String },
        Rx { rid: u64, rx: std::sync::mpsc::Receiver<Response> },
    }

    let mut caps = Caps { compress: false, window: proto2::DEFAULT_WINDOW };
    let mut acc: Vec<u8> = Vec::new();
    let mut seg = crate::buf::SegBuf::new();
    let mut scratch: Vec<u8> = Vec::new();
    let mut outs: Vec<Out> = Vec::new();
    let mut fatal = false;
    'conn: loop {
        let push = |ftype: FrameType, cid: &str, rid: u64, body: &str,
                        seg: &mut crate::buf::SegBuf,
                        scratch: &mut Vec<u8>,
                        caps: &Caps| {
            crate::buf::shrink_reusable(scratch);
            let min = caps.compress.then_some(proto2::COMPRESS_MIN_BYTES);
            proto2::encode_frame(scratch, ftype, cid, rid, body.trim_end_matches('\n'), min);
            seg.extend(scratch);
        };
        // Drain every complete frame already buffered.
        loop {
            let bait = acc.iter().take_while(|b| **b == b'\n').count();
            if bait > 0 {
                acc.drain(..bait);
            }
            let total = match proto2::frame_len(&acc) {
                Ok(Some(t)) if acc.len() >= t => t,
                Ok(_) => break, // need more bytes.
                Err(fault) => {
                    match &fault {
                        FrameFault::Oversized(_) => handler.on_oversized(),
                        FrameFault::Corrupt(_) => handler.on_corrupt_frame(),
                    }
                    let resp = Response::error("", 400, fault.reason());
                    outs.push(Out::Ready {
                        ftype: FrameType::Error,
                        cid: String::new(),
                        rid: 0,
                        body: resp.to_line().trim_end().to_string(),
                    });
                    fatal = true;
                    break;
                }
            };
            let frame = match proto2::decode_frame(&acc) {
                Ok((f, _)) => f,
                Err(proto2::DecodeErr::Corrupt(reason)) => {
                    handler.on_corrupt_frame();
                    let resp = Response::error("", 400, &reason);
                    outs.push(Out::Ready {
                        ftype: FrameType::Error,
                        cid: String::new(),
                        rid: 0,
                        body: resp.to_line().trim_end().to_string(),
                    });
                    fatal = true;
                    break;
                }
                Err(proto2::DecodeErr::Incomplete) => unreachable!("length was checked"),
            };
            acc.drain(..total);
            handler.on_v2_frame();
            match frame.ftype {
                FrameType::Hello => {
                    if let Some(want) = proto2::parse_hello(&frame.body) {
                        caps = proto2::negotiate(&want);
                    }
                    outs.push(Out::Ready {
                        ftype: FrameType::HelloAck,
                        cid: String::new(),
                        rid: 0,
                        body: proto2::hello_body(&caps),
                    });
                }
                FrameType::Request => {
                    // Drain sniff before dispatch, mirroring the v1 loop.
                    if matches!(
                        crate::proto::parse_request(&frame.body),
                        Ok(crate::Request::Drain)
                    ) {
                        stop.store(true, Ordering::SeqCst);
                    }
                    if frame.cid.is_empty() {
                        match handler.submit_wire(&format!("{}\n", frame.body), client) {
                            WireSubmission::Done(resp) => outs.push(Out::Ready {
                                ftype: FrameType::Response,
                                cid: String::new(),
                                rid: frame.rid,
                                body: resp.trim_end_matches('\n').to_string(),
                            }),
                            WireSubmission::Pending(rx) => {
                                outs.push(Out::Rx { rid: frame.rid, rx });
                            }
                        }
                    } else {
                        // An enveloped frame resolves through the
                        // idempotency layer, which is a blocking path.
                        let line =
                            crate::proto::wrap_envelope(&frame.cid, frame.rid, &frame.body);
                        let resp = handler.handle_wire(&line, client);
                        let out = match crate::proto::unwrap_envelope(&resp) {
                            crate::proto::Envelope::Enveloped { body, .. } => body,
                            _ => resp.trim_end_matches('\n').to_string(),
                        };
                        outs.push(Out::Ready {
                            ftype: FrameType::Response,
                            cid: frame.cid,
                            rid: frame.rid,
                            body: out,
                        });
                    }
                }
                // A client has no business sending these; close loudly.
                FrameType::HelloAck | FrameType::Response | FrameType::Error => {
                    handler.on_corrupt_frame();
                    let resp = Response::error("", 400, "unexpected frame type from a client");
                    outs.push(Out::Ready {
                        ftype: FrameType::Error,
                        cid: String::new(),
                        rid: 0,
                        body: resp.to_line().trim_end().to_string(),
                    });
                    fatal = true;
                    break;
                }
            }
        }
        // The whole burst is admitted; now collect outcomes in arrival
        // order and answer with one write burst per read burst.
        for out in outs.drain(..) {
            match out {
                Out::Ready { ftype, cid, rid, body } => {
                    push(ftype, &cid, rid, &body, &mut seg, &mut scratch, &caps);
                }
                Out::Rx { rid, rx } => {
                    // The supervisor guarantees exactly one send per
                    // admitted request; mirror `handle_line`'s fallback.
                    let r = rx
                        .recv()
                        .unwrap_or_else(|_| Response::error("", 500, "response channel lost"));
                    push(
                        FrameType::Response,
                        "",
                        rid,
                        r.to_line().trim_end(),
                        &mut seg,
                        &mut scratch,
                        &caps,
                    );
                }
            }
        }
        if !seg.is_empty() && seg.write_out(&mut writer).is_err() {
            break 'conn;
        }
        if fatal {
            break 'conn;
        }
        match reader.fill_buf() {
            Ok([]) => break 'conn, // clean close; a torn tail is dropped.
            Ok(chunk) => {
                let n = chunk.len();
                acc.extend_from_slice(chunk);
                reader.consume(n);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // Serial handling means nothing is ever in flight here.
                handler.on_idle_reap();
                break 'conn;
            }
            Err(_) => break 'conn,
        }
    }
    Ok(())
}

/// Handles one frame with panic containment: a panic anywhere in the
/// request path becomes a structured `500`, never a dead connection.
pub fn handle_contained(server: &Server, line: &str, client: &str) -> Response {
    match catch_unwind(AssertUnwindSafe(|| server.handle_line(line, client))) {
        Ok(r) => r,
        Err(p) => Response::error(
            &crate::proto::frame_id(line),
            500,
            &format!(
                "panic contained in request loop: {}",
                mcc_harness::pool::panic_text(p.as_ref())
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use crate::ServeConfig;
    use std::io::BufRead;

    fn start_tcp(cfg: ServeConfig) -> (Arc<Server>, std::net::SocketAddr, Arc<AtomicBool>) {
        let server = Arc::new(Server::start(cfg));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&server);
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || serve(s2, listener, stop2).unwrap());
        (server, addr, stop)
    }

    /// A writer that accepts at most one byte per call and injects an
    /// `EINTR` before every real write — the worst short-write peer.
    struct TrickleWriter {
        written: Vec<u8>,
        interrupt_next: bool,
        flushes: usize,
    }

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.interrupt_next = true;
            self.written.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushes += 1;
            if self.flushes == 1 {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            Ok(())
        }
    }

    #[test]
    fn write_frame_survives_short_writes_and_eintr() {
        let mut w = TrickleWriter {
            written: Vec::new(),
            interrupt_next: true,
            flushes: 0,
        };
        let frame = b"{\"id\":\"x\",\"code\":200}\n";
        write_frame(&mut w, frame).expect("trickle writer still gets the whole frame");
        assert_eq!(w.written, frame, "no byte lost to a short write");
        assert!(w.flushes >= 2, "flush retried through EINTR");
    }

    #[test]
    fn write_frame_reports_write_zero() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_frame(&mut Dead, b"x\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    /// A reader that yields at most one byte per call and injects an
    /// `EINTR` before every real read — the worst slow-loris peer.
    struct TrickleReader {
        data: Vec<u8>,
        pos: usize,
        interrupt_next: bool,
    }

    impl io::Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.interrupt_next = true;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn read_frame_survives_trickle_and_eintr() {
        let data = b"{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n".to_vec();
        let mut r = BufReader::new(TrickleReader {
            data,
            pos: 0,
            interrupt_next: true,
        });
        match read_frame(&mut r, 1024).unwrap() {
            FrameRead::Frame(f) => assert_eq!(f, "{\"op\":\"ping\"}\n"),
            other => panic!("wrong read: {other:?}"),
        }
        match read_frame(&mut r, 1024).unwrap() {
            FrameRead::Frame(f) => assert_eq!(f, "{\"op\":\"stats\"}\n"),
            other => panic!("wrong read: {other:?}"),
        }
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), FrameRead::Eof));
    }

    #[test]
    fn read_frame_caps_line_length() {
        let mut data = vec![b'a'; 100];
        data.extend_from_slice(b"\n{\"op\":\"ping\"}\n");
        let mut r = BufReader::new(io::Cursor::new(data));
        assert!(matches!(read_frame(&mut r, 64).unwrap(), FrameRead::Oversized));
    }

    #[test]
    fn read_frame_discards_torn_trailing_frame() {
        let mut r = BufReader::new(io::Cursor::new(b"{\"op\":\"ping\"}\n{\"op\":\"st".to_vec()));
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), FrameRead::Frame(_)));
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), FrameRead::Eof));
    }

    #[test]
    fn oversized_tcp_frame_gets_structured_400_and_is_counted() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One endless line, comfortably past the cap. The server may close
        // the write side once it gives up, so write errors are fine.
        let chunk = vec![b'a'; 64 * 1024];
        for _ in 0..20 {
            if writer.write_all(&chunk).is_err() {
                break;
            }
        }
        let _ = writer.write_all(b"\n");
        let _ = writer.flush();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(400), "got {line}");
        assert!(line.contains("oversized"), "diagnostic names the cause: {line}");

        // The connection is closed after the 400 — either a clean EOF or a
        // reset, depending on how much of our flood was still in flight.
        line.clear();
        // An Err is an RST because unread bytes were discarded: also closed.
        if let Ok(n) = reader.read_line(&mut line) {
            assert_eq!(n, 0, "no second response");
        }

        // ...and stats on a fresh connection counts it.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w2 = stream.try_clone().unwrap();
        let mut r2 = BufReader::new(stream);
        w2.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        line.clear();
        r2.read_line(&mut line).unwrap();
        assert_eq!(
            Response::field_num(&line, "oversized_frames"),
            Some(1),
            "stats counts the oversized frame: {line}"
        );

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn tcp_round_trip_compile_ping_and_garbage() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let mut line = String::new();
        writer
            .write_all(
                proto::compile_line("t1", "hm1", "yalll", "reg a = R0\nconst a, 3\nexit a\n")
                    .as_bytes(),
            )
            .unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200), "got {line}");

        line.clear();
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        assert!(line.contains("pong"));
        assert!(
            Response::field_num(&line, "queue_depth").is_some(),
            "pong carries queue pressure for router probes: {line}"
        );
        assert_eq!(
            Response::field_str(&line, "draining").as_deref(),
            Some("false"),
            "pong carries the drain flag for router probes: {line}"
        );

        // Garbage gets a structured 400 and the connection survives.
        line.clear();
        writer.write_all(b"this is not json\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(400));

        line.clear();
        writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "bad_requests"), Some(1));

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn dropped_connection_does_not_kill_the_daemon() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        {
            // Write half a frame and slam the socket shut.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"{\"op\":\"compile\",\"id\":\"torn").unwrap();
        }
        // A fresh connection still gets served.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn idle_connection_is_reaped_and_counted() {
        let cfg = ServeConfig {
            idle_timeout: Some(Duration::from_millis(60)),
            ..ServeConfig::default()
        };
        let (server, addr, stop) = start_tcp(cfg);

        // A client that connects and never sends a frame: the reaper
        // must close it (read returns 0) within a few timeout windows.
        let idler = TcpStream::connect(addr).unwrap();
        idler
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut idle_reader = BufReader::new(idler);
        let mut line = String::new();
        let n = idle_reader.read_line(&mut line).expect("reaped, not hung");
        assert_eq!(n, 0, "the server closed the idle connection");

        // An active client on the same server is untouched, and the
        // stats op reports the reap.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            Response::field_num(&line, "idle_reaped"),
            Some(1),
            "stats counts the reaped connection: {line}"
        );

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn v2_handshake_negotiates_and_pipelines_out_of_order_safely() {
        use crate::proto2::{Caps, Client, FrameType, Handshake};
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let want = Caps { compress: true, window: 8 };
        let mut c = match Client::handshake(stream, Some(Duration::from_secs(10)), &want).unwrap()
        {
            Handshake::V2(c) => c,
            Handshake::V1Peer => panic!("a v2 server must ack the hello"),
        };
        assert!(c.caps.compress, "compression negotiated on");
        assert_eq!(c.caps.window, 8, "window clamped to the client ask");
        // Pipeline several requests before reading anything.
        for rid in 0..4u64 {
            let body = proto::compile_line(
                &format!("p{rid}"),
                "hm1",
                "yalll",
                &format!("reg a = R0\nconst a, {rid}\nexit a\n"),
            );
            c.send(FrameType::Request, "t", rid, &body).unwrap();
        }
        let mut seen = std::collections::HashMap::new();
        while seen.len() < 4 {
            let f = c.recv().unwrap();
            assert_eq!(f.ftype, FrameType::Response);
            assert_eq!(f.cid, "t");
            seen.insert(f.rid, f.body);
        }
        for rid in 0..4u64 {
            let body = &seen[&rid];
            assert_eq!(Response::field_num(body, "code"), Some(200), "rid {rid}: {body}");
            assert_eq!(
                Response::field_str(body, "id").as_deref(),
                Some(format!("p{rid}").as_str()),
                "responses matched by rid, not arrival order"
            );
        }
        // A v1 client on the same server still gets line service.
        let v1 = TcpStream::connect(addr).unwrap();
        let mut w1 = v1.try_clone().unwrap();
        let mut r1 = BufReader::new(v1);
        w1.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        r1.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        // And stats counts the v2 traffic: 1 connection, 5 frames
        // (hello + 4 requests).
        line.clear();
        w1.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        r1.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "v2_connections"), Some(1), "{line}");
        assert_eq!(Response::field_num(&line, "v2_frames"), Some(5), "{line}");
        stop.store(true, Ordering::SeqCst);
        drop(c);
        drop(w1);
        drop(r1);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn v2_replay_is_deduped_across_reconnects() {
        use crate::proto2::{Caps, Client, Handshake};
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let want = Caps { compress: false, window: 4 };
        let mut bodies = Vec::new();
        for _ in 0..2 {
            let stream = TcpStream::connect(addr).unwrap();
            let mut c =
                match Client::handshake(stream, Some(Duration::from_secs(10)), &want).unwrap() {
                    Handshake::V2(c) => c,
                    Handshake::V1Peer => panic!("v2 expected"),
                };
            let body = proto::compile_line("dup", "hm1", "yalll", "reg a = R0\nexit a\n");
            bodies.push(c.call("replayer", 42, &body).unwrap());
        }
        assert_eq!(bodies[0], bodies[1], "the replay is byte-identical");
        // The dedup window recorded exactly one execution.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        w.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "replayed"), Some(1), "{line}");
        assert_eq!(Response::field_num(&line, "accepted"), Some(1), "{line}");
        stop.store(true, Ordering::SeqCst);
        drop(w);
        drop(r);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn v2_corrupt_stream_gets_an_error_frame_and_close() {
        use crate::proto2::{self, FrameType};
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut w = stream.try_clone().unwrap();
        // A frame whose checksum is wrong: flip one payload byte.
        let mut bytes = Vec::new();
        proto2::encode_frame(&mut bytes, FrameType::Request, "x", 1, "{\"op\":\"ping\"}", None);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        w.write_all(&bytes).unwrap();
        w.flush().unwrap();
        // The server answers with an error frame, then closes.
        let mut r = BufReader::new(stream);
        let mut acc = Vec::new();
        let err = loop {
            match read_frame_buf(&mut r, &mut acc, 1 << 20) {
                Ok(FrameBufRead::Frame) | Ok(FrameBufRead::Eof) => break acc.clone(),
                Ok(FrameBufRead::TimedOut) => continue,
                other => panic!("unexpected read: {other:?}"),
            }
        };
        let (f, _) = proto2::decode_frame(&err).expect("a well-formed error frame");
        assert_eq!(f.ftype, FrameType::Error);
        assert!(
            f.body.contains("checksum") || f.body.contains("magic"),
            "diagnostic names the fault: {}",
            f.body
        );
        // Corruption is counted, and nothing was executed.
        let s2 = TcpStream::connect(addr).unwrap();
        let mut w2 = s2.try_clone().unwrap();
        let mut r2 = BufReader::new(s2);
        w2.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut line = String::new();
        r2.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "corrupt_frames"), Some(1), "{line}");
        assert_eq!(Response::field_num(&line, "accepted"), Some(0), "{line}");
        stop.store(true, Ordering::SeqCst);
        drop(w2);
        drop(r2);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn v2_oversized_declaration_is_refused_from_the_header_alone() {
        use crate::proto2::{self, FrameType};
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut w = stream.try_clone().unwrap();
        // Header declaring a 2 MiB payload; never send the payload.
        let mut header = vec![proto2::MAGIC[0], proto2::MAGIC[1], proto2::VERSION, 3, 0];
        proto2::write_varint(&mut header, 0);
        proto2::write_varint(&mut header, 1);
        proto2::write_varint(&mut header, 2 * 1024 * 1024);
        proto2::write_varint(&mut header, 2 * 1024 * 1024);
        w.write_all(&header).unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(stream);
        let mut acc = Vec::new();
        let err = loop {
            match read_frame_buf(&mut r, &mut acc, 1 << 20) {
                Ok(FrameBufRead::Frame) | Ok(FrameBufRead::Eof) => break acc.clone(),
                Ok(FrameBufRead::TimedOut) => continue,
                other => panic!("unexpected read: {other:?}"),
            }
        };
        let (f, _) = proto2::decode_frame(&err).expect("a well-formed error frame");
        assert_eq!(f.ftype, FrameType::Error);
        assert!(f.body.contains("exceeds"), "names the cap: {}", f.body);
        let s2 = TcpStream::connect(addr).unwrap();
        let mut w2 = s2.try_clone().unwrap();
        let mut r2 = BufReader::new(s2);
        w2.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut line = String::new();
        r2.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "oversized_frames"), Some(1), "{line}");
        stop.store(true, Ordering::SeqCst);
        drop(w2);
        drop(r2);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn drain_frame_stops_the_accept_loop() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"drain\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        // The flag flips, which is what ends the accept loop.
        for _ in 0..200 {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(stop.load(Ordering::SeqCst), "drain frame must set the stop flag");
        // And new compiles are refused.
        writer
            .write_all(
                proto::compile_line("late", "hm1", "yalll", "reg a = R0\nexit a\n").as_bytes(),
            )
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(503));
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }
}
