//! The TCP front end: newline-delimited JSON over `TcpListener`, one
//! thread per connection, the accept loop polling a stop flag so a
//! signal (or a `drain` frame) can end the daemon gracefully.
//!
//! The loop is generic over a [`LineHandler`] so the compile daemon
//! (`mcc serve`) and the shard router (`mcc route`) share one accept
//! loop, one containment discipline, and one idle reaper.
//!
//! Containment discipline: each *request* is handled behind
//! `catch_unwind`, so neither a malformed frame nor a pipeline bug can
//! take down a connection, and no connection failure can take down the
//! daemon — a dropped socket mid-frame just ends that connection's
//! thread. Responses are written back in request order per connection
//! (the protocol is pipelined but ordered, like HTTP/1.1), through
//! [`write_frame`], which loops over partial writes and retries `EINTR`
//! so a short `write` can never truncate a frame.
//!
//! Idle reaper: a connected client that never sends a request must not
//! pin a connection thread forever. With an idle timeout set, the read
//! side times out, the connection is closed, and the handler's
//! [`LineHandler::on_idle_reap`] bumps its `idle_reaped` counter.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::Response;
use crate::Server;

/// How often the accept loop polls the stop flag.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// One endpoint of the newline-delimited protocol: turns a request line
/// into a newline-terminated response line. Implemented by the compile
/// daemon ([`Server`]) and by the router (`mcc_route::Router`).
pub trait LineHandler: Send + Sync + 'static {
    /// Handles one frame; the returned line must be newline-terminated.
    fn handle_wire(&self, line: &str, client: &str) -> String;

    /// Called when the idle reaper closes a connection.
    fn on_idle_reap(&self) {}

    /// Called when a connection is closed for exceeding
    /// [`crate::proto::MAX_FRAME_BYTES`] on one inbound line.
    fn on_oversized(&self) {}

    /// The idle timeout for connections served on behalf of this
    /// handler (`None` = never reap).
    fn idle_timeout(&self) -> Option<Duration> {
        None
    }
}

impl LineHandler for Server {
    fn handle_wire(&self, line: &str, client: &str) -> String {
        self.handle_frame(line, client)
    }

    fn on_idle_reap(&self) {
        let c = self.counters();
        c.bump(&c.idle_reaped);
    }

    fn on_oversized(&self) {
        let c = self.counters();
        c.bump(&c.oversized_frames);
    }

    fn idle_timeout(&self) -> Option<Duration> {
        self.config_idle_timeout()
    }
}

/// The outcome of reading one frame from a socket with a length cap.
#[derive(Debug)]
pub enum FrameRead {
    /// One complete newline-terminated frame (invalid UTF-8 replaced, so
    /// corruption surfaces as a parse `400`, never an I/O error).
    Frame(String),
    /// Clean end of stream (a partial trailing frame is discarded — a torn
    /// frame is never processed as if it were complete).
    Eof,
    /// The line exceeded the cap. The caller must answer with a structured
    /// `400` and close the connection — there is no bounded way to resync.
    Oversized,
    /// The read timed out (`WouldBlock`/`TimedOut` from a socket deadline).
    TimedOut,
}

/// Reads one capped frame, carrying partial-frame state in `buf` so a caller
/// that polls with a short read timeout (e.g. to check a stop flag) never
/// loses bytes across [`FrameRead::TimedOut`] returns. `EINTR` is retried,
/// matching the [`write_frame`] write-all discipline.
///
/// # Errors
///
/// Any I/O error other than `EINTR` and the timeout kinds.
pub fn read_frame_into(
    r: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<FrameRead> {
    loop {
        let (take, done) = {
            let chunk = match r.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FrameRead::TimedOut)
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                return Ok(FrameRead::Eof);
            }
            match chunk.iter().position(|b| *b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&chunk[..=i]);
                    (i + 1, true)
                }
                None => {
                    buf.extend_from_slice(chunk);
                    (chunk.len(), false)
                }
            }
        };
        r.consume(take);
        if buf.len() > max {
            buf.clear();
            return Ok(FrameRead::Oversized);
        }
        if done {
            let frame = String::from_utf8_lossy(buf).into_owned();
            buf.clear();
            return Ok(FrameRead::Frame(frame));
        }
    }
}

/// [`read_frame_into`] with a throwaway buffer — for callers that treat a
/// timeout as fatal for the connection (serve reaper, router round trips),
/// where discarding a stalled half-frame is the intended behaviour.
///
/// # Errors
///
/// See [`read_frame_into`].
pub fn read_frame(r: &mut impl BufRead, max: usize) -> io::Result<FrameRead> {
    let mut buf = Vec::new();
    read_frame_into(r, &mut buf, max)
}

/// Writes one whole response frame: loops until every byte is accepted,
/// retrying `EINTR` (`ErrorKind::Interrupted`) on both the writes and
/// the flush — a short write must never truncate a frame mid-line, or
/// the client would misparse every subsequent pipelined response.
///
/// # Errors
///
/// Any non-`EINTR` I/O error, and `WriteZero` if the peer stops
/// accepting bytes entirely.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    let mut rest = frame;
    while !rest.is_empty() {
        match w.write(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "connection stopped accepting bytes mid-frame",
                ))
            }
            Ok(n) => rest = &rest[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    loop {
        match w.flush() {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves connections until `stop` goes true (a signal handler or a
/// `drain` frame sets it), then returns — the caller runs the drain.
/// Connection threads are detached: they answer `503 draining` to
/// anything submitted after the drain begins, and die with their
/// sockets.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only end that connection.
pub fn serve_lines(
    handler: Arc<dyn LineHandler>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, addr)) => {
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                let client = addr.to_string();
                std::thread::spawn(move || {
                    let _ = connection(&*handler, stream, &client, &stop);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The compile daemon's entry point (kept for source compatibility):
/// [`serve_lines`] over the server itself.
///
/// # Errors
///
/// See [`serve_lines`].
pub fn serve(
    server: Arc<Server>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    serve_lines(server, listener, stop)
}

/// One connection: read frames, answer each with exactly one line. An
/// idle timeout on the read side feeds the reaper.
fn connection(
    handler: &dyn LineHandler,
    stream: TcpStream,
    client: &str,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(handler.idle_timeout())?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader, crate::proto::MAX_FRAME_BYTES)? {
            FrameRead::Frame(line) => line,
            FrameRead::Eof => return Ok(()), // client closed cleanly.
            // The read timed out with nothing (or only a partial frame)
            // buffered: reap the connection. A stalled half-frame is
            // reaped too — the client was mid-line for the whole window.
            FrameRead::TimedOut => {
                handler.on_idle_reap();
                return Ok(());
            }
            // One endless line must not OOM the daemon: structured 400,
            // count it, close — resyncing on the rest is unbounded too.
            FrameRead::Oversized => {
                handler.on_oversized();
                let resp = Response::error(
                    "",
                    400,
                    &format!(
                        "oversized frame: longer than {} bytes",
                        crate::proto::MAX_FRAME_BYTES
                    ),
                );
                let _ = write_frame(&mut writer, resp.to_line().as_bytes());
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = handler.handle_wire(&line, client);
        write_frame(&mut writer, response.as_bytes())?;
        // A drain frame stops the accept loop too, not just this
        // connection. Enveloped drains count: unwrap before sniffing.
        let body = crate::proto::envelope_body(&line);
        if matches!(crate::proto::parse_request(body), Ok(crate::Request::Drain)) {
            stop.store(true, Ordering::SeqCst);
        }
    }
}

/// Handles one frame with panic containment: a panic anywhere in the
/// request path becomes a structured `500`, never a dead connection.
pub fn handle_contained(server: &Server, line: &str, client: &str) -> Response {
    match catch_unwind(AssertUnwindSafe(|| server.handle_line(line, client))) {
        Ok(r) => r,
        Err(p) => Response::error(
            &crate::proto::frame_id(line),
            500,
            &format!(
                "panic contained in request loop: {}",
                mcc_harness::pool::panic_text(p.as_ref())
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use crate::ServeConfig;
    use std::io::BufRead;

    fn start_tcp(cfg: ServeConfig) -> (Arc<Server>, std::net::SocketAddr, Arc<AtomicBool>) {
        let server = Arc::new(Server::start(cfg));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&server);
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || serve(s2, listener, stop2).unwrap());
        (server, addr, stop)
    }

    /// A writer that accepts at most one byte per call and injects an
    /// `EINTR` before every real write — the worst short-write peer.
    struct TrickleWriter {
        written: Vec<u8>,
        interrupt_next: bool,
        flushes: usize,
    }

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.interrupt_next = true;
            self.written.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushes += 1;
            if self.flushes == 1 {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            Ok(())
        }
    }

    #[test]
    fn write_frame_survives_short_writes_and_eintr() {
        let mut w = TrickleWriter {
            written: Vec::new(),
            interrupt_next: true,
            flushes: 0,
        };
        let frame = b"{\"id\":\"x\",\"code\":200}\n";
        write_frame(&mut w, frame).expect("trickle writer still gets the whole frame");
        assert_eq!(w.written, frame, "no byte lost to a short write");
        assert!(w.flushes >= 2, "flush retried through EINTR");
    }

    #[test]
    fn write_frame_reports_write_zero() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_frame(&mut Dead, b"x\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    /// A reader that yields at most one byte per call and injects an
    /// `EINTR` before every real read — the worst slow-loris peer.
    struct TrickleReader {
        data: Vec<u8>,
        pos: usize,
        interrupt_next: bool,
    }

    impl io::Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.interrupt_next = true;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn read_frame_survives_trickle_and_eintr() {
        let data = b"{\"op\":\"ping\"}\n{\"op\":\"stats\"}\n".to_vec();
        let mut r = BufReader::new(TrickleReader {
            data,
            pos: 0,
            interrupt_next: true,
        });
        match read_frame(&mut r, 1024).unwrap() {
            FrameRead::Frame(f) => assert_eq!(f, "{\"op\":\"ping\"}\n"),
            other => panic!("wrong read: {other:?}"),
        }
        match read_frame(&mut r, 1024).unwrap() {
            FrameRead::Frame(f) => assert_eq!(f, "{\"op\":\"stats\"}\n"),
            other => panic!("wrong read: {other:?}"),
        }
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), FrameRead::Eof));
    }

    #[test]
    fn read_frame_caps_line_length() {
        let mut data = vec![b'a'; 100];
        data.extend_from_slice(b"\n{\"op\":\"ping\"}\n");
        let mut r = BufReader::new(io::Cursor::new(data));
        assert!(matches!(read_frame(&mut r, 64).unwrap(), FrameRead::Oversized));
    }

    #[test]
    fn read_frame_discards_torn_trailing_frame() {
        let mut r = BufReader::new(io::Cursor::new(b"{\"op\":\"ping\"}\n{\"op\":\"st".to_vec()));
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), FrameRead::Frame(_)));
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), FrameRead::Eof));
    }

    #[test]
    fn oversized_tcp_frame_gets_structured_400_and_is_counted() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One endless line, comfortably past the cap. The server may close
        // the write side once it gives up, so write errors are fine.
        let chunk = vec![b'a'; 64 * 1024];
        for _ in 0..20 {
            if writer.write_all(&chunk).is_err() {
                break;
            }
        }
        let _ = writer.write_all(b"\n");
        let _ = writer.flush();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(400), "got {line}");
        assert!(line.contains("oversized"), "diagnostic names the cause: {line}");

        // The connection is closed after the 400 — either a clean EOF or a
        // reset, depending on how much of our flood was still in flight.
        line.clear();
        // An Err is an RST because unread bytes were discarded: also closed.
        if let Ok(n) = reader.read_line(&mut line) {
            assert_eq!(n, 0, "no second response");
        }

        // ...and stats on a fresh connection counts it.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w2 = stream.try_clone().unwrap();
        let mut r2 = BufReader::new(stream);
        w2.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        line.clear();
        r2.read_line(&mut line).unwrap();
        assert_eq!(
            Response::field_num(&line, "oversized_frames"),
            Some(1),
            "stats counts the oversized frame: {line}"
        );

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn tcp_round_trip_compile_ping_and_garbage() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let mut line = String::new();
        writer
            .write_all(
                proto::compile_line("t1", "hm1", "yalll", "reg a = R0\nconst a, 3\nexit a\n")
                    .as_bytes(),
            )
            .unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200), "got {line}");

        line.clear();
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        assert!(line.contains("pong"));
        assert!(
            Response::field_num(&line, "queue_depth").is_some(),
            "pong carries queue pressure for router probes: {line}"
        );
        assert_eq!(
            Response::field_str(&line, "draining").as_deref(),
            Some("false"),
            "pong carries the drain flag for router probes: {line}"
        );

        // Garbage gets a structured 400 and the connection survives.
        line.clear();
        writer.write_all(b"this is not json\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(400));

        line.clear();
        writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "bad_requests"), Some(1));

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn dropped_connection_does_not_kill_the_daemon() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        {
            // Write half a frame and slam the socket shut.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"{\"op\":\"compile\",\"id\":\"torn").unwrap();
        }
        // A fresh connection still gets served.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn idle_connection_is_reaped_and_counted() {
        let cfg = ServeConfig {
            idle_timeout: Some(Duration::from_millis(60)),
            ..ServeConfig::default()
        };
        let (server, addr, stop) = start_tcp(cfg);

        // A client that connects and never sends a frame: the reaper
        // must close it (read returns 0) within a few timeout windows.
        let idler = TcpStream::connect(addr).unwrap();
        idler
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut idle_reader = BufReader::new(idler);
        let mut line = String::new();
        let n = idle_reader.read_line(&mut line).expect("reaped, not hung");
        assert_eq!(n, 0, "the server closed the idle connection");

        // An active client on the same server is untouched, and the
        // stats op reports the reap.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            Response::field_num(&line, "idle_reaped"),
            Some(1),
            "stats counts the reaped connection: {line}"
        );

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn drain_frame_stops_the_accept_loop() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"drain\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        // The flag flips, which is what ends the accept loop.
        for _ in 0..200 {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(stop.load(Ordering::SeqCst), "drain frame must set the stop flag");
        // And new compiles are refused.
        writer
            .write_all(
                proto::compile_line("late", "hm1", "yalll", "reg a = R0\nexit a\n").as_bytes(),
            )
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(503));
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }
}
