//! The TCP front end: newline-delimited JSON over `TcpListener`, one
//! thread per connection, the accept loop polling a stop flag so a
//! signal (or a `drain` frame) can end the daemon gracefully.
//!
//! Containment discipline: each *request* is handled behind
//! `catch_unwind`, so neither a malformed frame nor a pipeline bug can
//! take down a connection, and no connection failure can take down the
//! daemon — a dropped socket mid-frame just ends that connection's
//! thread. Responses are written back in request order per connection
//! (the protocol is pipelined but ordered, like HTTP/1.1).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::Response;
use crate::Server;

/// How often the accept loop polls the stop flag.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// Serves connections until `stop` goes true (a signal handler or a
/// `drain` frame sets it), then returns — the caller runs the drain.
/// Connection threads are detached: they answer `503 draining` to
/// anything submitted after the drain begins, and die with their
/// sockets.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only end that connection.
pub fn serve(server: Arc<Server>, listener: TcpListener, stop: Arc<AtomicBool>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, addr)) => {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                let client = addr.to_string();
                std::thread::spawn(move || {
                    let _ = connection(&server, stream, &client, &stop);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One connection: read frames, answer each with exactly one line.
fn connection(
    server: &Server,
    stream: TcpStream,
    client: &str,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_contained(server, &line, client);
        writer.write_all(response.to_line().as_bytes())?;
        writer.flush()?;
        // A drain frame stops the accept loop too, not just this
        // connection.
        if matches!(crate::proto::parse_request(&line), Ok(crate::Request::Drain)) {
            stop.store(true, Ordering::SeqCst);
        }
    }
    Ok(())
}

/// Handles one frame with panic containment: a panic anywhere in the
/// request path becomes a structured `500`, never a dead connection.
pub fn handle_contained(server: &Server, line: &str, client: &str) -> Response {
    match catch_unwind(AssertUnwindSafe(|| server.handle_line(line, client))) {
        Ok(r) => r,
        Err(p) => Response::error(
            &crate::proto::frame_id(line),
            500,
            &format!(
                "panic contained in request loop: {}",
                mcc_harness::pool::panic_text(p.as_ref())
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use crate::ServeConfig;
    use std::io::BufRead;

    fn start_tcp(cfg: ServeConfig) -> (Arc<Server>, std::net::SocketAddr, Arc<AtomicBool>) {
        let server = Arc::new(Server::start(cfg));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&server);
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || serve(s2, listener, stop2).unwrap());
        (server, addr, stop)
    }

    #[test]
    fn tcp_round_trip_compile_ping_and_garbage() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let mut line = String::new();
        writer
            .write_all(
                proto::compile_line("t1", "hm1", "yalll", "reg a = R0\nconst a, 3\nexit a\n")
                    .as_bytes(),
            )
            .unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200), "got {line}");

        line.clear();
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        assert!(line.contains("pong"));

        // Garbage gets a structured 400 and the connection survives.
        line.clear();
        writer.write_all(b"this is not json\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(400));

        line.clear();
        writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "bad_requests"), Some(1));

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn dropped_connection_does_not_kill_the_daemon() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        {
            // Write half a frame and slam the socket shut.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"{\"op\":\"compile\",\"id\":\"torn").unwrap();
        }
        // A fresh connection still gets served.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn drain_frame_stops_the_accept_loop() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"drain\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        // The flag flips, which is what ends the accept loop.
        for _ in 0..200 {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(stop.load(Ordering::SeqCst), "drain frame must set the stop flag");
        // And new compiles are refused.
        writer
            .write_all(
                proto::compile_line("late", "hm1", "yalll", "reg a = R0\nexit a\n").as_bytes(),
            )
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(503));
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }
}
