//! The TCP front end: newline-delimited JSON over `TcpListener`, one
//! thread per connection, the accept loop polling a stop flag so a
//! signal (or a `drain` frame) can end the daemon gracefully.
//!
//! The loop is generic over a [`LineHandler`] so the compile daemon
//! (`mcc serve`) and the shard router (`mcc route`) share one accept
//! loop, one containment discipline, and one idle reaper.
//!
//! Containment discipline: each *request* is handled behind
//! `catch_unwind`, so neither a malformed frame nor a pipeline bug can
//! take down a connection, and no connection failure can take down the
//! daemon — a dropped socket mid-frame just ends that connection's
//! thread. Responses are written back in request order per connection
//! (the protocol is pipelined but ordered, like HTTP/1.1), through
//! [`write_frame`], which loops over partial writes and retries `EINTR`
//! so a short `write` can never truncate a frame.
//!
//! Idle reaper: a connected client that never sends a request must not
//! pin a connection thread forever. With an idle timeout set, the read
//! side times out, the connection is closed, and the handler's
//! [`LineHandler::on_idle_reap`] bumps its `idle_reaped` counter.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::Response;
use crate::Server;

/// How often the accept loop polls the stop flag.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// One endpoint of the newline-delimited protocol: turns a request line
/// into a newline-terminated response line. Implemented by the compile
/// daemon ([`Server`]) and by the router (`mcc_route::Router`).
pub trait LineHandler: Send + Sync + 'static {
    /// Handles one frame; the returned line must be newline-terminated.
    fn handle_wire(&self, line: &str, client: &str) -> String;

    /// Called when the idle reaper closes a connection.
    fn on_idle_reap(&self) {}

    /// The idle timeout for connections served on behalf of this
    /// handler (`None` = never reap).
    fn idle_timeout(&self) -> Option<Duration> {
        None
    }
}

impl LineHandler for Server {
    fn handle_wire(&self, line: &str, client: &str) -> String {
        handle_contained(self, line, client).to_line()
    }

    fn on_idle_reap(&self) {
        let c = self.counters();
        c.bump(&c.idle_reaped);
    }

    fn idle_timeout(&self) -> Option<Duration> {
        self.config_idle_timeout()
    }
}

/// Writes one whole response frame: loops until every byte is accepted,
/// retrying `EINTR` (`ErrorKind::Interrupted`) on both the writes and
/// the flush — a short write must never truncate a frame mid-line, or
/// the client would misparse every subsequent pipelined response.
///
/// # Errors
///
/// Any non-`EINTR` I/O error, and `WriteZero` if the peer stops
/// accepting bytes entirely.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    let mut rest = frame;
    while !rest.is_empty() {
        match w.write(rest) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "connection stopped accepting bytes mid-frame",
                ))
            }
            Ok(n) => rest = &rest[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    loop {
        match w.flush() {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Serves connections until `stop` goes true (a signal handler or a
/// `drain` frame sets it), then returns — the caller runs the drain.
/// Connection threads are detached: they answer `503 draining` to
/// anything submitted after the drain begins, and die with their
/// sockets.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection I/O errors
/// only end that connection.
pub fn serve_lines(
    handler: Arc<dyn LineHandler>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, addr)) => {
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                let client = addr.to_string();
                std::thread::spawn(move || {
                    let _ = connection(&*handler, stream, &client, &stop);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The compile daemon's entry point (kept for source compatibility):
/// [`serve_lines`] over the server itself.
///
/// # Errors
///
/// See [`serve_lines`].
pub fn serve(
    server: Arc<Server>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    serve_lines(server, listener, stop)
}

/// One connection: read frames, answer each with exactly one line. An
/// idle timeout on the read side feeds the reaper.
fn connection(
    handler: &dyn LineHandler,
    stream: TcpStream,
    client: &str,
    stop: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(handler.idle_timeout())?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF: client closed cleanly.
            Ok(_) => {}
            // The read timed out with nothing (or only a partial frame)
            // buffered: reap the connection. A stalled half-frame is
            // reaped too — the client was mid-line for the whole window.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                handler.on_idle_reap();
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = handler.handle_wire(&line, client);
        write_frame(&mut writer, response.as_bytes())?;
        // A drain frame stops the accept loop too, not just this
        // connection.
        if matches!(crate::proto::parse_request(&line), Ok(crate::Request::Drain)) {
            stop.store(true, Ordering::SeqCst);
        }
    }
}

/// Handles one frame with panic containment: a panic anywhere in the
/// request path becomes a structured `500`, never a dead connection.
pub fn handle_contained(server: &Server, line: &str, client: &str) -> Response {
    match catch_unwind(AssertUnwindSafe(|| server.handle_line(line, client))) {
        Ok(r) => r,
        Err(p) => Response::error(
            &crate::proto::frame_id(line),
            500,
            &format!(
                "panic contained in request loop: {}",
                mcc_harness::pool::panic_text(p.as_ref())
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto;
    use crate::ServeConfig;
    use std::io::BufRead;

    fn start_tcp(cfg: ServeConfig) -> (Arc<Server>, std::net::SocketAddr, Arc<AtomicBool>) {
        let server = Arc::new(Server::start(cfg));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&server);
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || serve(s2, listener, stop2).unwrap());
        (server, addr, stop)
    }

    /// A writer that accepts at most one byte per call and injects an
    /// `EINTR` before every real write — the worst short-write peer.
    struct TrickleWriter {
        written: Vec<u8>,
        interrupt_next: bool,
        flushes: usize,
    }

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            self.interrupt_next = true;
            self.written.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushes += 1;
            if self.flushes == 1 {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
            }
            Ok(())
        }
    }

    #[test]
    fn write_frame_survives_short_writes_and_eintr() {
        let mut w = TrickleWriter {
            written: Vec::new(),
            interrupt_next: true,
            flushes: 0,
        };
        let frame = b"{\"id\":\"x\",\"code\":200}\n";
        write_frame(&mut w, frame).expect("trickle writer still gets the whole frame");
        assert_eq!(w.written, frame, "no byte lost to a short write");
        assert!(w.flushes >= 2, "flush retried through EINTR");
    }

    #[test]
    fn write_frame_reports_write_zero() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_frame(&mut Dead, b"x\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn tcp_round_trip_compile_ping_and_garbage() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let mut line = String::new();
        writer
            .write_all(
                proto::compile_line("t1", "hm1", "yalll", "reg a = R0\nconst a, 3\nexit a\n")
                    .as_bytes(),
            )
            .unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200), "got {line}");

        line.clear();
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        assert!(line.contains("pong"));
        assert!(
            Response::field_num(&line, "queue_depth").is_some(),
            "pong carries queue pressure for router probes: {line}"
        );
        assert_eq!(
            Response::field_str(&line, "draining").as_deref(),
            Some("false"),
            "pong carries the drain flag for router probes: {line}"
        );

        // Garbage gets a structured 400 and the connection survives.
        line.clear();
        writer.write_all(b"this is not json\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(400));

        line.clear();
        writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "bad_requests"), Some(1));

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn dropped_connection_does_not_kill_the_daemon() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        {
            // Write half a frame and slam the socket shut.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"{\"op\":\"compile\",\"id\":\"torn").unwrap();
        }
        // A fresh connection still gets served.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn idle_connection_is_reaped_and_counted() {
        let cfg = ServeConfig {
            idle_timeout: Some(Duration::from_millis(60)),
            ..ServeConfig::default()
        };
        let (server, addr, stop) = start_tcp(cfg);

        // A client that connects and never sends a frame: the reaper
        // must close it (read returns 0) within a few timeout windows.
        let idler = TcpStream::connect(addr).unwrap();
        idler
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut idle_reader = BufReader::new(idler);
        let mut line = String::new();
        let n = idle_reader.read_line(&mut line).expect("reaped, not hung");
        assert_eq!(n, 0, "the server closed the idle connection");

        // An active client on the same server is untouched, and the
        // stats op reports the reap.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            Response::field_num(&line, "idle_reaped"),
            Some(1),
            "stats counts the reaped connection: {line}"
        );

        stop.store(true, Ordering::SeqCst);
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }

    #[test]
    fn drain_frame_stops_the_accept_loop() {
        let (server, addr, stop) = start_tcp(ServeConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\":\"drain\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        // The flag flips, which is what ends the accept loop.
        for _ in 0..200 {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(stop.load(Ordering::SeqCst), "drain frame must set the stop flag");
        // And new compiles are refused.
        writer
            .write_all(
                proto::compile_line("late", "hm1", "yalll", "reg a = R0\nexit a\n").as_bytes(),
            )
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(Response::field_num(&line, "code"), Some(503));
        drop(writer);
        drop(reader);
        if let Ok(s) = Arc::try_unwrap(server) {
            s.shutdown();
        }
    }
}
