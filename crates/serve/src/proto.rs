//! The `mcc serve` wire protocol: newline-delimited flat JSON, one
//! request object in, exactly one response object out, over the
//! toolkit's shared JSON subset ([`mcc_harness::json`]).
//!
//! Requests:
//!
//! ```text
//! {"op":"compile","id":"r1","machine":"hm1","lang":"yalll","src":"..."}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"drain"}
//! {"op":"join","name":"b2","addr":"127.0.0.1:7102"}
//! {"op":"leave","name":"b2"}
//! ```
//!
//! `compile` accepts optional `"algo"` (the CLI's algorithm names),
//! `"deadline_ms"`, `"tenant"` (QoS accounting identity; defaults to
//! the transport client id so bare peers keep working), and `"class"`
//! (`interactive` | `batch` | `background`, default `interactive`)
//! fields. Every op accepts an optional `"id"`, echoed
//! verbatim in the response so clients can pipeline. Responses carry an
//! HTTP-flavoured `code`:
//!
//! * `200` — compiled (fields: `instrs`, `ops`, `algorithm`, `cached`,
//!   `checksum`, `tier`);
//! * `400` — malformed frame, unknown machine/language, or compile error;
//! * `429` — the client's token bucket ran dry;
//! * `500` — a panic inside the pipeline, contained and reported;
//! * `503` — shed (queue full), breaker open, or the server is draining;
//! * `504` — the per-request deadline expired (condemn-and-replace).
//!
//! Malformed frames get a structured `400` — the connection stays up,
//! and a frame can never take the daemon down.

use std::collections::HashMap;

use mcc_cache::disk::fnv1a;
use mcc_harness::json::{esc, get_num, get_str, parse_object, Val};

/// Hard cap on one inbound wire frame. A peer that sends a longer line gets a
/// structured `400` and the connection is closed — it can never make a server
/// buffer unboundedly.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Marker that opens an enveloped frame. Everything after it is
/// `<client_id> <request_id> <fnv1a:016x> <body>`.
pub const ENVELOPE_PREFIX: &str = "@mcc1 ";

/// Result of inspecting one inbound line for the envelope extension.
///
/// The envelope is version-negotiated by shape: a frame that starts with
/// [`ENVELOPE_PREFIX`] is enveloped, anything else is a bare JSON frame from
/// an old peer and flows through the original path untouched. A frame that
/// *claims* to be enveloped but fails structural or checksum validation is
/// `Corrupt` — it must be answered with a bare `400` (the identity fields
/// cannot be trusted) and never executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Envelope {
    /// Legacy bare JSON frame; no id, no checksum.
    Bare,
    /// Validated envelope: checksum matched the transmitted bytes.
    Enveloped {
        /// Client identity half of the dedup key.
        cid: String,
        /// Monotonic per-client request id — the retry-safety handle.
        rid: u64,
        /// The inner JSON line (no trailing newline).
        body: String,
    },
    /// Envelope-shaped but invalid; the reason for the diagnostic `400`.
    Corrupt(String),
}

/// Wraps a bare JSON line in the `@mcc1` envelope. The checksum is FNV-1a
/// over the exact transmitted substring `"{cid} {rid} {body}"`, so any
/// single-byte change to identity or payload is detectable.
pub fn wrap_envelope(cid: &str, rid: u64, body: &str) -> String {
    let body = body.trim_end_matches('\n');
    let sum = fnv1a(format!("{cid} {rid} {body}").as_bytes());
    format!("{ENVELOPE_PREFIX}{cid} {rid} {sum:016x} {body}\n")
}

/// Classifies one inbound line: bare, a validated envelope, or corrupt.
///
/// The checksum is recomputed over the *raw received* cid/rid substrings (not
/// re-rendered values), so a corruption that still parses — e.g. a digit
/// flip in `rid` — is caught by the sum even though the field looks valid.
pub fn unwrap_envelope(line: &str) -> Envelope {
    let trimmed = line.trim_end_matches('\n');
    let Some(rest) = trimmed.strip_prefix(ENVELOPE_PREFIX) else {
        return Envelope::Bare;
    };
    let mut parts = rest.splitn(4, ' ');
    let (Some(cid), Some(rid_s), Some(sum_s), Some(body)) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Envelope::Corrupt("corrupt frame: short envelope".to_string());
    };
    if cid.is_empty() {
        return Envelope::Corrupt("corrupt frame: empty client id".to_string());
    }
    if sum_s.len() != 16 || !sum_s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Envelope::Corrupt("corrupt frame: bad checksum field".to_string());
    }
    let Ok(sum) = u64::from_str_radix(sum_s, 16) else {
        return Envelope::Corrupt("corrupt frame: bad checksum field".to_string());
    };
    let Ok(rid) = rid_s.parse::<u64>() else {
        return Envelope::Corrupt("corrupt frame: bad request id".to_string());
    };
    let computed = fnv1a(format!("{cid} {rid_s} {body}").as_bytes());
    if computed != sum {
        return Envelope::Corrupt("corrupt frame: checksum mismatch".to_string());
    }
    Envelope::Enveloped { cid: cid.to_string(), rid, body: body.to_string() }
}

/// The inner JSON of a line whether or not it is enveloped — used where only
/// the payload matters (e.g. spotting a `drain` frame in the accept loop).
/// Corrupt envelopes yield the raw line, which will fail parsing downstream.
pub fn envelope_body(line: &str) -> &str {
    let trimmed = line.trim_end_matches('\n');
    if let Some(rest) = trimmed.strip_prefix(ENVELOPE_PREFIX) {
        let mut parts = rest.splitn(4, ' ');
        if let (Some(_), Some(_), Some(_), Some(body)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        {
            return body;
        }
    }
    line
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile one source.
    Compile(CompileReq),
    /// Liveness probe.
    Ping,
    /// Server counters snapshot.
    Stats,
    /// Prometheus text exposition (per-tenant/class/tier series).
    Metrics,
    /// Begin graceful drain.
    Drain,
    /// Router admin: add (or re-point) a backend on the live ring.
    /// A plain `mcc serve` shard answers this with a `400` — membership
    /// is a router concern.
    Join(JoinReq),
    /// Router admin: remove a backend from the live ring.
    Leave {
        /// Backend name to remove.
        name: String,
    },
}

/// The payload of a `compile` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileReq {
    /// Client-chosen id, echoed in the response (empty when omitted).
    pub id: String,
    /// Reference machine name (`hm1` | `vm1` | `bx2` | `wm64`).
    pub machine: String,
    /// Frontend name (`yalll` | `simpl` | `empl` | `sstar`).
    pub lang: String,
    /// The source text.
    pub src: String,
    /// Optional algorithm override (CLI names).
    pub algo: Option<String>,
    /// Optional per-request deadline override.
    pub deadline_ms: Option<u64>,
    /// Optional QoS tenant id (defaults to the transport client id).
    pub tenant: Option<String>,
    /// Optional priority class name (default `interactive`); validated
    /// at admission so an unknown class is a structured `400`.
    pub class: Option<String>,
}

/// The payload of a `join` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinReq {
    /// Client-chosen id, echoed in the response (empty when omitted).
    pub id: String,
    /// Backend name: ring placement is a pure function of the name, so
    /// a shard that rejoins under its old name reclaims its old keys.
    pub name: String,
    /// `host:port` the router should dial for this backend.
    pub addr: String,
}

/// One response line. `body` carries code-specific key/value pairs,
/// already JSON-rendered by the constructors below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub id: String,
    /// HTTP-flavoured status code.
    pub code: u16,
    /// Extra fields as pre-rendered `"key":value` JSON fragments.
    pub fields: Vec<(String, String)>,
}

impl Response {
    /// A bare response with no extra fields.
    pub fn new(id: &str, code: u16) -> Response {
        Response {
            id: id.to_string(),
            code,
            fields: Vec::new(),
        }
    }

    /// An error response (`400`/`429`/`500`/`503`/`504`) with a reason.
    pub fn error(id: &str, code: u16, reason: &str) -> Response {
        let mut r = Response::new(id, code);
        r.push_str("error", reason);
        r
    }

    /// Appends a string field.
    pub fn push_str(&mut self, key: &str, value: &str) {
        self.fields
            .push((key.to_string(), format!("\"{}\"", esc(value))));
    }

    /// Appends a numeric field.
    pub fn push_num(&mut self, key: &str, value: u64) {
        self.fields.push((key.to_string(), value.to_string()));
    }

    /// Renders the newline-terminated wire line.
    pub fn to_line(&self) -> String {
        let mut out = format!("{{\"id\":\"{}\",\"code\":{}", esc(&self.id), self.code);
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":{v}", esc(k)));
        }
        out.push_str("}\n");
        out
    }

    /// Reads a string field back out of a rendered response line —
    /// the client-side accessor used by tests and the load generator.
    pub fn field_str(line: &str, key: &str) -> Option<String> {
        get_str(&parse_object(line.trim_end())?, key)
    }

    /// Reads a numeric field back out of a rendered response line.
    pub fn field_num(line: &str, key: &str) -> Option<u64> {
        get_num(&parse_object(line.trim_end())?, key)
    }
}

/// Parses one request frame. `Err` carries the structured reason for the
/// `400` — never a panic, because frames arrive from the network.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let Some(m) = parse_object(line.trim_end()) else {
        return Err("malformed frame: not a flat JSON object".to_string());
    };
    let op = get_str(&m, "op").ok_or("missing or non-string `op` field")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "drain" => Ok(Request::Drain),
        "join" => Ok(Request::Join(JoinReq {
            id: get_str(&m, "id").unwrap_or_default(),
            name: get_str(&m, "name").ok_or("join: missing `name`")?,
            addr: get_str(&m, "addr").ok_or("join: missing `addr`")?,
        })),
        "leave" => Ok(Request::Leave {
            name: get_str(&m, "name").ok_or("leave: missing `name`")?,
        }),
        "compile" => {
            let req = CompileReq {
                id: get_str(&m, "id").unwrap_or_default(),
                machine: get_str(&m, "machine").ok_or("compile: missing `machine`")?,
                lang: get_str(&m, "lang").ok_or("compile: missing `lang`")?,
                src: get_str(&m, "src").ok_or("compile: missing `src`")?,
                algo: get_str(&m, "algo"),
                deadline_ms: get_num(&m, "deadline_ms"),
                tenant: get_str(&m, "tenant"),
                class: get_str(&m, "class"),
            };
            Ok(Request::Compile(req))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// The id a response should echo for a frame that may not even parse.
pub fn frame_id(line: &str) -> String {
    parse_object(line.trim_end())
        .as_ref()
        .and_then(|m| get_str(m, "id"))
        .unwrap_or_default()
}

/// Renders a compile request as a wire line — the client-side encoder
/// shared by the load generator and the tests.
pub fn compile_line(id: &str, machine: &str, lang: &str, src: &str) -> String {
    format!(
        "{{\"op\":\"compile\",\"id\":\"{}\",\"machine\":\"{}\",\"lang\":\"{}\",\"src\":\"{}\"}}\n",
        esc(id),
        esc(machine),
        esc(lang),
        esc(src)
    )
}

/// Renders a compile request carrying QoS identity — the encoder the
/// diurnal load generator and the QoS tests use. Omitted (`None`)
/// fields are left off the wire entirely, so old servers parse the
/// line unchanged.
pub fn compile_line_qos(
    id: &str,
    machine: &str,
    lang: &str,
    src: &str,
    tenant: Option<&str>,
    class: Option<&str>,
) -> String {
    let mut line = format!(
        "{{\"op\":\"compile\",\"id\":\"{}\",\"machine\":\"{}\",\"lang\":\"{}\"",
        esc(id),
        esc(machine),
        esc(lang),
    );
    if let Some(t) = tenant {
        line.push_str(&format!(",\"tenant\":\"{}\"", esc(t)));
    }
    if let Some(c) = class {
        line.push_str(&format!(",\"class\":\"{}\"", esc(c)));
    }
    line.push_str(&format!(",\"src\":\"{}\"}}\n", esc(src)));
    line
}

/// Renders a `join` admin frame — the client-side encoder used by the
/// fleet supervisor when it re-adds a restarted shard to the ring.
pub fn join_line(id: &str, name: &str, addr: &str) -> String {
    format!(
        "{{\"op\":\"join\",\"id\":\"{}\",\"name\":\"{}\",\"addr\":\"{}\"}}\n",
        esc(id),
        esc(name),
        esc(addr)
    )
}

/// Renders a `leave` admin frame.
pub fn leave_line(id: &str, name: &str) -> String {
    format!("{{\"op\":\"leave\",\"id\":\"{}\",\"name\":\"{}\"}}\n", esc(id), esc(name))
}

/// Convenience for tests: all fields of a parsed response line.
pub fn parse_response(line: &str) -> Option<HashMap<String, Val>> {
    parse_object(line.trim_end())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_request_round_trips() {
        let line = compile_line("r7", "hm1", "yalll", "reg a = R0\nexit a\n");
        match parse_request(&line).unwrap() {
            Request::Compile(c) => {
                assert_eq!(c.id, "r7");
                assert_eq!(c.machine, "hm1");
                assert_eq!(c.lang, "yalll");
                assert!(c.src.contains('\n'), "newlines survive escaping");
                assert_eq!(c.algo, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn control_requests_parse() {
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"op\":\"stats\"}\n").unwrap(), Request::Stats);
        assert_eq!(parse_request("{\"op\":\"metrics\"}").unwrap(), Request::Metrics);
        assert_eq!(parse_request("{\"op\":\"drain\"}").unwrap(), Request::Drain);
    }

    #[test]
    fn qos_fields_round_trip_and_stay_optional() {
        let line = compile_line_qos("q1", "hm1", "yalll", "exit\n", Some("acme"), Some("batch"));
        match parse_request(&line).unwrap() {
            Request::Compile(c) => {
                assert_eq!(c.tenant.as_deref(), Some("acme"));
                assert_eq!(c.class.as_deref(), Some("batch"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Bare encoders leave the fields off the wire entirely.
        let bare = compile_line_qos("q2", "hm1", "yalll", "exit\n", None, None);
        assert!(!bare.contains("tenant") && !bare.contains("class"));
        match parse_request(&bare).unwrap() {
            Request::Compile(c) => {
                assert_eq!(c.tenant, None);
                assert_eq!(c.class, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // And the legacy encoder still parses identically.
        match parse_request(&compile_line("q3", "hm1", "yalll", "exit\n")).unwrap() {
            Request::Compile(c) => assert_eq!(c.tenant, None),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_structured_errors() {
        for bad in [
            "",
            "garbage",
            "{\"op\":\"compile\"}",
            "{\"op\":\"warp\"}",
            "{\"no_op\":1}",
            "{\"op\":\"join\",\"name\":\"b2\"}",
            "{\"op\":\"join\",\"addr\":\"127.0.0.1:1\"}",
            "{\"op\":\"leave\"}",
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn join_and_leave_round_trip() {
        match parse_request(&join_line("j1", "b2", "127.0.0.1:7102")).unwrap() {
            Request::Join(j) => {
                assert_eq!(j.id, "j1");
                assert_eq!(j.name, "b2");
                assert_eq!(j.addr, "127.0.0.1:7102");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse_request(&leave_line("l1", "b2")).unwrap(),
            Request::Leave { name: "b2".to_string() }
        );
    }

    #[test]
    fn responses_render_and_read_back() {
        let mut r = Response::new("x", 200);
        r.push_num("instrs", 12);
        r.push_str("cached", "memory");
        let line = r.to_line();
        assert!(line.ends_with('\n'));
        assert_eq!(Response::field_num(&line, "code"), Some(200));
        assert_eq!(Response::field_num(&line, "instrs"), Some(12));
        assert_eq!(Response::field_str(&line, "cached").as_deref(), Some("memory"));
        assert_eq!(Response::field_str(&line, "id").as_deref(), Some("x"));
    }

    #[test]
    fn frame_id_survives_malformed_ops() {
        assert_eq!(frame_id("{\"op\":\"warp\",\"id\":\"z9\"}"), "z9");
        assert_eq!(frame_id("total garbage"), "");
    }

    #[test]
    fn envelope_round_trips() {
        let body = compile_line("r1", "hm1", "yalll", "reg a = R0\nexit a\n");
        let wrapped = wrap_envelope("client-7", 42, &body);
        assert!(wrapped.starts_with(ENVELOPE_PREFIX));
        assert!(wrapped.ends_with('\n'));
        match unwrap_envelope(&wrapped) {
            Envelope::Enveloped { cid, rid, body: b } => {
                assert_eq!(cid, "client-7");
                assert_eq!(rid, 42);
                assert_eq!(b, body.trim_end_matches('\n'));
            }
            other => panic!("wrong unwrap: {other:?}"),
        }
        assert_eq!(envelope_body(&wrapped), body.trim_end_matches('\n'));
    }

    #[test]
    fn bare_frames_stay_bare() {
        assert_eq!(unwrap_envelope("{\"op\":\"ping\"}\n"), Envelope::Bare);
        assert_eq!(envelope_body("{\"op\":\"ping\"}\n"), "{\"op\":\"ping\"}\n");
    }

    #[test]
    fn structurally_broken_envelopes_are_corrupt() {
        for bad in [
            "@mcc1 \n",
            "@mcc1 c 1\n",
            "@mcc1 c 1 abcd\n",
            "@mcc1  1 0000000000000000 {}\n",
            "@mcc1 c x 0000000000000000 {}\n",
            "@mcc1 c 1 zzzzzzzzzzzzzzzz {}\n",
            "@mcc1 c 1 00000000000000000 {}\n",
        ] {
            assert!(
                matches!(unwrap_envelope(bad), Envelope::Corrupt(_)),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn checksum_mismatch_is_corrupt() {
        let wrapped = wrap_envelope("c", 9, "{\"op\":\"ping\"}");
        // Damage the body: the sum no longer matches.
        let tampered = wrapped.replace("ping", "pong");
        assert!(matches!(unwrap_envelope(&tampered), Envelope::Corrupt(_)));
        // Damage the rid: still rejected even though it parses as a number.
        let tampered = wrapped.replacen(" 9 ", " 8 ", 1);
        assert!(matches!(unwrap_envelope(&tampered), Envelope::Corrupt(_)));
    }
}
