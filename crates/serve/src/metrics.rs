//! Prometheus-style metrics for the serve path: per-tenant/class
//! request counters, log-bucketed latency histograms, per-class tier
//! counters, and the text renderer behind the `metrics` op.
//!
//! ## Naming
//!
//! Everything is prefixed `mcc_serve_` (`mcc_route_` / `mcc_fleet_` for
//! the aggregators) and follows the Prometheus conventions: counters end
//! in `_total`, histograms expose `_bucket{le=…}` / `_sum` / `_count`,
//! gauges are bare. Latency buckets are powers of two in microseconds
//! (`le="1"`, `"2"`, … `"16777216"`, `"+Inf"`) — log-bucketed so one
//! fixed array spans sub-microsecond cache hits to multi-second
//! deadline-bound compiles with bounded error.
//!
//! ## Label cardinality
//!
//! Tenant ids arrive off the wire, so the registry caps distinct tenant
//! labels at [`MAX_TENANT_LABELS`]; overflow tenants are folded into the
//! reserved label `"other"`. That keeps an id-churn attack from growing
//! the metrics surface without bound while still accounting every
//! request somewhere.
//!
//! The module also carries the two text-level helpers the aggregation
//! layers share: [`validate`] (the shape check CI and the diurnal bench
//! gate on) and [`merge_with_label`] (how `route`/`fleet` fold a
//! shard's exposition into their own under a `shard="…"` label).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::qos::Class;

/// Cap on distinct tenant label values; the rest fold into `"other"`.
pub const MAX_TENANT_LABELS: usize = 64;

/// The reserved overflow tenant label.
pub const OVERFLOW_TENANT: &str = "other";

/// Histogram bucket upper bounds: `2^0 .. 2^24` microseconds.
const BUCKETS: usize = 25;

/// One log-bucketed latency histogram (microseconds).
#[derive(Clone, Default)]
pub struct Hist {
    counts: [u64; BUCKETS],
    inf: u64,
    sum: u64,
    count: u64,
}

impl Hist {
    /// Records one observation.
    pub fn observe(&mut self, us: u64) {
        let mut slot = None;
        for (i, bound) in (0..BUCKETS).map(|i| (i, 1u64 << i)) {
            if us <= bound {
                slot = Some(i);
                break;
            }
        }
        match slot {
            Some(i) => self.counts[i] += 1,
            None => self.inf += 1,
        }
        self.sum = self.sum.saturating_add(us);
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Renders the cumulative `_bucket`/`_sum`/`_count` triplet lines.
    fn render(&self, out: &mut String, name: &str, labels: &str) {
        let mut cum = 0;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            out.push_str(&format!(
                "{name}_bucket{{{labels}le=\"{}\"}} {cum}\n",
                1u64 << i
            ));
        }
        cum += self.inf;
        out.push_str(&format!("{name}_bucket{{{labels}le=\"+Inf\"}} {cum}\n"));
        // `labels` carries a trailing comma for the `le` concatenation;
        // the scalar series drop it.
        let bare = labels.trim_end_matches(',');
        out.push_str(&format!("{name}_sum{{{bare}}} {}\n", self.sum));
        out.push_str(&format!("{name}_count{{{bare}}} {}\n", self.count));
    }
}

/// One tenant's slice of the registry.
#[derive(Default)]
struct TenantMetrics {
    /// Responses by `(class, code)`.
    by_code: BTreeMap<(u8, u16), u64>,
    /// Latency per class, admitted requests only.
    latency: [Hist; 3],
}

struct Reg {
    tenants: BTreeMap<String, TenantMetrics>,
    /// Requests served at `(class, tier)`.
    tier: [[u64; 4]; 3],
}

/// The serve-path metrics registry. One per server, shared by the
/// intake fast path and the supervisor behind a mutex (both record on
/// the order of once per request, far off the per-byte hot path).
pub struct QosMetrics {
    inner: Mutex<Reg>,
}

impl Default for QosMetrics {
    fn default() -> Self {
        QosMetrics {
            inner: Mutex::new(Reg {
                tenants: BTreeMap::new(),
                tier: [[0; 4]; 3],
            }),
        }
    }
}

impl QosMetrics {
    /// Records one resolved request: its response code, and (when it was
    /// admitted and served) its latency.
    pub fn record(&self, tenant: &str, class: Class, code: u16, latency_us: Option<u64>) {
        let mut reg = self.inner.lock().unwrap();
        let key = Self::intern(&mut reg, tenant);
        let t = reg.tenants.entry(key).or_default();
        *t.by_code.entry((class.idx() as u8, code)).or_insert(0) += 1;
        if let Some(us) = latency_us {
            t.latency[class.idx()].observe(us);
        }
    }

    /// Records the pressure tier a request was served at.
    pub fn record_tier(&self, class: Class, tier: u8) {
        let mut reg = self.inner.lock().unwrap();
        reg.tier[class.idx()][usize::from(tier.min(3))] += 1;
    }

    /// The label a tenant folds to under the cardinality cap.
    fn intern(reg: &mut Reg, tenant: &str) -> String {
        let name = sanitize_label(tenant);
        if reg.tenants.contains_key(&name) || reg.tenants.len() < MAX_TENANT_LABELS {
            name
        } else {
            OVERFLOW_TENANT.to_string()
        }
    }

    /// Per-tenant `200` counts (all classes), for the stats fields and
    /// the route/fleet aggregation: sorted by tenant name.
    pub fn served_by_tenant(&self) -> Vec<(String, u64)> {
        let reg = self.inner.lock().unwrap();
        reg.tenants
            .iter()
            .map(|(name, t)| {
                let served = t
                    .by_code
                    .iter()
                    .filter(|((_, code), _)| *code == 200)
                    .map(|(_, n)| *n)
                    .sum();
                (name.clone(), served)
            })
            .collect()
    }

    /// Renders the full Prometheus text exposition. `extra` carries the
    /// caller's scalar series: `(name, help, type, labels, value)` where
    /// `labels` is either empty or `key="value",…` without braces.
    pub fn render(&self, extra: &[(String, String, &'static str, String, u64)]) -> String {
        let reg = self.inner.lock().unwrap();
        let mut out = String::new();

        out.push_str("# HELP mcc_serve_requests_total Responses by tenant, class and code.\n");
        out.push_str("# TYPE mcc_serve_requests_total counter\n");
        for (tenant, t) in &reg.tenants {
            for ((class, code), n) in &t.by_code {
                let class = Class::ALL[usize::from(*class)].name();
                out.push_str(&format!(
                    "mcc_serve_requests_total{{tenant=\"{tenant}\",class=\"{class}\",code=\"{code}\"}} {n}\n"
                ));
            }
        }

        out.push_str(
            "# HELP mcc_serve_latency_us Request latency in microseconds, admitted requests.\n",
        );
        out.push_str("# TYPE mcc_serve_latency_us histogram\n");
        for (tenant, t) in &reg.tenants {
            for class in Class::ALL {
                let h = &t.latency[class.idx()];
                if h.count == 0 {
                    continue;
                }
                let labels = format!("tenant=\"{tenant}\",class=\"{}\",", class.name());
                h.render(&mut out, "mcc_serve_latency_us", &labels);
            }
        }

        out.push_str("# HELP mcc_serve_tier_total Requests served at each pressure tier.\n");
        out.push_str("# TYPE mcc_serve_tier_total counter\n");
        for class in Class::ALL {
            for (tier, n) in reg.tier[class.idx()].iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "mcc_serve_tier_total{{class=\"{}\",tier=\"{tier}\"}} {n}\n",
                    class.name()
                ));
            }
        }
        drop(reg);

        let mut last_name = String::new();
        for (name, help, ty, labels, value) in extra {
            if *name != last_name {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {ty}\n"));
                last_name = name.clone();
            }
            if labels.is_empty() {
                out.push_str(&format!("{name} {value}\n"));
            } else {
                out.push_str(&format!("{name}{{{labels}}} {value}\n"));
            }
        }
        out
    }
}

/// Escapes a wire-supplied string for use as a Prometheus label value.
pub fn sanitize_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Validates the shape of a Prometheus text exposition: every non-empty
/// line is a well-formed comment or `name[{labels}] value`, histogram
/// `_bucket` series are cumulative in `le`, and every `TYPE` names one
/// of the types this layer emits. Returns the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let mut bucket_last: BTreeMap<String, (f64, u64)> = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap_or_default();
            let name = parts.next().unwrap_or_default();
            match kind {
                "HELP" => {
                    if name.is_empty() || parts.next().is_none() {
                        return Err(format!("line {ln}: HELP without name/text"));
                    }
                }
                "TYPE" => {
                    let ty = parts.next().unwrap_or_default();
                    if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {ln}: unknown TYPE `{ty}`"));
                    }
                }
                _ => return Err(format!("line {ln}: unknown comment `{kind}`")),
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {ln}: no value"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {ln}: non-numeric value `{value}`"));
        }
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {ln}: unterminated label set"))?;
                (n, Some(labels))
            }
            None => (series, None),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {ln}: bad metric name `{name}`"));
        }
        if let Some(labels) = labels {
            for pair in split_labels(labels) {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(format!("line {ln}: bad label `{pair}`"));
                };
                if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                    return Err(format!("line {ln}: bad label `{pair}`"));
                }
            }
            // Histogram buckets must be cumulative in `le` per series.
            if let Some(base) = name.strip_suffix("_bucket") {
                let le = split_labels(labels)
                    .into_iter()
                    .find_map(|p| p.strip_prefix("le=\"").map(|v| v.trim_end_matches('"').to_string()));
                if let Some(le) = le {
                    let le_val = if le == "+Inf" { f64::INFINITY } else { le.parse().map_err(|_| format!("line {ln}: bad le `{le}`"))? };
                    let others: Vec<String> = split_labels(labels)
                        .into_iter()
                        .filter(|p| !p.starts_with("le="))
                        .collect();
                    let key = format!("{base}{{{}}}", others.join(","));
                    let count: u64 = value
                        .parse()
                        .map_err(|_| format!("line {ln}: non-integer bucket count"))?;
                    if let Some((prev_le, prev_count)) = bucket_last.get(&key) {
                        if le_val < *prev_le && *prev_count > count {
                            return Err(format!("line {ln}: bucket counts not cumulative"));
                        }
                        if le_val > *prev_le && count < *prev_count {
                            return Err(format!("line {ln}: bucket counts not cumulative"));
                        }
                    }
                    bucket_last.insert(key, (le_val, count));
                }
            }
        }
    }
    Ok(())
}

/// Splits a label body on commas that are outside quoted values.
fn split_labels(labels: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for ch in labels.chars() {
        if escaped {
            cur.push(ch);
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_quotes => {
                cur.push(ch);
                escaped = true;
            }
            '"' => {
                cur.push(ch);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Folds one exposition into an aggregate under an extra label: every
/// sample line gains `key="value"`, repeated `# HELP`/`# TYPE` headers
/// are deduplicated. This is how `route` and `fleet` merge per-shard
/// expositions into one document.
pub fn merge_with_label(out: &mut String, text: &str, key: &str, value: &str) {
    let tag = format!("{key}=\"{}\"", sanitize_label(value));
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if !out.contains(line) {
                out.push_str(line);
                out.push('\n');
            }
            continue;
        }
        let Some((series, val)) = line.rsplit_once(' ') else {
            continue;
        };
        match series.split_once('{') {
            Some((name, rest)) => {
                out.push_str(&format!("{name}{{{tag},{rest} {val}\n"));
            }
            None => {
                out.push_str(&format!("{series}{{{tag}}} {val}\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let mut h = Hist::default();
        for us in [0, 1, 2, 3, 900, 1_000_000, u64::MAX] {
            h.observe(us);
        }
        assert_eq!(h.count(), 7);
        let mut out = String::new();
        h.render(&mut out, "m", "");
        assert!(out.contains("m_bucket{le=\"1\"} 2\n"), "{out}");
        assert!(out.contains("m_bucket{le=\"2\"} 3\n"));
        assert!(out.contains("m_bucket{le=\"4\"} 4\n"));
        assert!(out.contains("m_bucket{le=\"+Inf\"} 7\n"));
        assert!(out.contains("m_count{} 7\n"));
        validate(&out).unwrap();
    }

    #[test]
    fn registry_renders_valid_prometheus_text() {
        let m = QosMetrics::default();
        m.record("acme", Class::Interactive, 200, Some(120));
        m.record("acme", Class::Interactive, 200, Some(90_000));
        m.record("acme", Class::Batch, 503, None);
        m.record("evil\"corp\n", Class::Background, 200, Some(7));
        m.record_tier(Class::Interactive, 0);
        m.record_tier(Class::Background, 3);
        let extra = vec![(
            "mcc_serve_queue_depth".to_string(),
            "Admitted-but-unresolved requests.".to_string(),
            "gauge",
            String::new(),
            3,
        )];
        let text = m.render(&extra);
        validate(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
        assert!(text.contains(
            "mcc_serve_requests_total{tenant=\"acme\",class=\"interactive\",code=\"200\"} 2"
        ));
        assert!(text.contains("mcc_serve_requests_total{tenant=\"acme\",class=\"batch\",code=\"503\"} 1"));
        assert!(text.contains("tenant=\"evil\\\"corp\\n\""), "labels are escaped: {text}");
        assert!(text.contains("mcc_serve_tier_total{class=\"background\",tier=\"3\"} 1"));
        assert!(text.contains("mcc_serve_queue_depth 3"));
        assert_eq!(
            m.served_by_tenant().iter().find(|(t, _)| t == "acme").unwrap().1,
            2
        );
    }

    #[test]
    fn tenant_labels_fold_into_other_past_the_cap() {
        let m = QosMetrics::default();
        for i in 0..(MAX_TENANT_LABELS + 40) {
            m.record(&format!("t{i:03}"), Class::Batch, 200, None);
        }
        let by_tenant = m.served_by_tenant();
        assert!(by_tenant.len() <= MAX_TENANT_LABELS + 1);
        let other = by_tenant.iter().find(|(t, _)| t == OVERFLOW_TENANT);
        assert_eq!(other.map(|(_, n)| *n), Some(40), "overflow is accounted");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        for bad in [
            "no_value\n",
            "1bad_name 3\n",
            "m{x=y} 3\n",
            "m{x=\"y\"} notanumber\n",
            "# TYPE m flavour\n",
            "# NOPE m\n",
            "m_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\n",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad:?}");
        }
        validate("").unwrap();
    }

    #[test]
    fn merge_adds_the_shard_label_everywhere() {
        let shard = "# HELP m Help.\n# TYPE m counter\nm{a=\"1\"} 2\nplain 7\n";
        let mut out = String::new();
        merge_with_label(&mut out, shard, "shard", "b0");
        merge_with_label(&mut out, shard, "shard", "b1");
        assert_eq!(out.matches("# HELP m Help.").count(), 1, "headers dedup: {out}");
        assert!(out.contains("m{shard=\"b0\",a=\"1\"} 2"));
        assert!(out.contains("plain{shard=\"b1\"} 7"));
        validate(&out).unwrap();
    }
}
