//! Binary wire protocol v2: length-prefixed, pipelined, optionally
//! compressed frames.
//!
//! v1 speaks newline-delimited flat JSON, optionally wrapped in the
//! `@mcc1 <cid> <rid> <checksum>` text envelope. v2 promotes those
//! envelope fields into a fixed binary header and length-prefixes the
//! payload so a connection can carry many requests in flight at once —
//! responses are matched to requests by `rid`, not by arrival order.
//!
//! ## Frame layout
//!
//! ```text
//! offset  bytes  field
//! 0       2      magic 0xB5 0x32 ("µ2"; unambiguous vs '{' and '@')
//! 2       1      version (0x02)
//! 3       1      frame type (1 hello, 2 hello-ack, 3 request,
//!                4 response, 5 error)
//! 4       1      flags (bit0: payload is mlz-compressed)
//! 5       var    LEB128 cid length, then that many UTF-8 cid bytes
//! ...     var    LEB128 rid
//! ...     var    LEB128 raw (uncompressed) payload length
//! ...     var    LEB128 wire payload length
//! ...     n      payload bytes
//! ...     8      FNV-1a64 (little-endian) over bytes[2..] up to here
//! ```
//!
//! Every declared length is checked against its cap **before** the
//! payload is buffered: the decoder can refuse a hostile 2 GiB length
//! from the ~20-byte header prefix alone, and the `raw` length bounds
//! decompression so a compressed bomb cannot inflate past
//! [`MAX_FRAME_BYTES`](crate::proto::MAX_FRAME_BYTES).
//!
//! ## Negotiation
//!
//! A v2 client opens with a [`FrameType::Hello`] frame followed by one
//! bait newline. A v2 server ignores inter-frame newlines and answers
//! [`FrameType::HelloAck`] with the negotiated capabilities; a v1 server
//! line-reads the hello as garbage and answers its usual bare-JSON 400,
//! which the client takes as downgrade evidence, closes the socket, and
//! redials speaking v1. A v1 client's first byte (`{` or `@`) is not the
//! v2 magic, so a v2 server routes that connection to the v1 line loop —
//! both directions interoperate with zero configuration.
//!
//! LEB128 decoding is canonical-form-only (no overlong encodings, max
//! 10 bytes), matching the clickhouse-style varint discipline, so every
//! value has exactly one wire image and goldens stay byte-stable.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::time::Duration;

use mcc_cache::disk::fnv1a;

use crate::proto::{Response, MAX_FRAME_BYTES};

/// Frame magic: 0xB5 ("µ") then '2'. Distinct from v1's first bytes
/// ('{' bare JSON, '@' envelope), which is what makes the per-connection
/// protocol sniff unambiguous.
pub const MAGIC: [u8; 2] = [0xB5, 0x32];

/// Wire protocol version carried in byte 2.
pub const VERSION: u8 = 0x02;

/// Flag bit 0: the payload is mlz-compressed and `raw_len` is the
/// inflated size.
pub const FLAG_COMPRESSED: u8 = 0b0000_0001;

/// Cap on the client-id field; a cid is a short logical name, never a
/// payload.
pub const MAX_CID_BYTES: usize = 256;

/// Bodies shorter than this are never worth compressing; negotiated
/// compression only applies at or above this threshold.
pub const COMPRESS_MIN_BYTES: usize = 512;

/// The server's ceiling on the per-connection in-flight window; the
/// negotiated window is `min(client request, this)`.
pub const SERVER_WINDOW: u32 = 64;

/// Window used for a connection whose peer never sent a hello. Such a
/// peer skipped negotiation, so it gets a conservative pipeline depth
/// and no compression.
pub const DEFAULT_WINDOW: u32 = 16;

// ---------------------------------------------------------------------------
// LEB128 varints
// ---------------------------------------------------------------------------

/// Appends `v` as a canonical unsigned LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads one canonical LEB128 varint at `*pos`, advancing it.
///
/// Rejects non-canonical images: more than 10 bytes, a 10th byte using
/// bits beyond the 64th, or an overlong encoding (a terminal zero byte
/// after at least one continuation byte). Every `u64` therefore has
/// exactly one accepted wire image.
///
/// # Errors
///
/// [`DecodeErr::Incomplete`] when the buffer ends mid-varint,
/// [`DecodeErr::Corrupt`] on a non-canonical or over-wide image.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeErr> {
    let start = *pos;
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = buf.get(*pos) else {
            return Err(DecodeErr::Incomplete);
        };
        *pos += 1;
        let nbytes = *pos - start;
        if nbytes == 10 && (b & 0x80 != 0 || b > 0x01) {
            return Err(DecodeErr::Corrupt("varint wider than 64 bits".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            if b == 0 && nbytes > 1 {
                return Err(DecodeErr::Corrupt("overlong varint encoding".into()));
            }
            return Ok(v);
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// mlz: the homegrown threshold-gated payload compressor
// ---------------------------------------------------------------------------
//
// No compression crate is vendored, so v2 carries its own little LZ77:
// a 4-byte-prefix hash table finds matches within a 64 KiB window, and
// the stream is LZ4-flavoured sequences of
//
//   token(lit<<4 | match) [lit 0xFF-extensions] literals
//   [offset u16 LE] [match 0xFF-extensions]
//
// where match nibble 0 marks the terminal literals-only sequence,
// nibble 1..=14 encodes match length 4..=17, and nibble 15 adds
// 255-saturating extension bytes on top of length 18. Decompression is
// bounds-checked against a caller-supplied `max_out` so a declared-size
// lie can never balloon memory.

const MLZ_HASH_BITS: u32 = 13;
const MLZ_MIN_MATCH: usize = 4;
const MLZ_MAX_OFFSET: usize = 0xFFFF;

fn mlz_push_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn mlz_read_ext(src: &[u8], i: &mut usize) -> Result<usize, String> {
    let mut total = 0usize;
    loop {
        let Some(&b) = src.get(*i) else {
            return Err("mlz: truncated length extension".into());
        };
        *i += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
        if total > MAX_FRAME_BYTES {
            return Err("mlz: length extension exceeds the frame cap".into());
        }
    }
}

fn mlz_emit(out: &mut Vec<u8>, lits: &[u8], m: Option<(u16, usize)>) {
    let lit_nibble = lits.len().min(15);
    let (match_nibble, ext) = match m {
        None => (0usize, None),
        Some((_, ml)) => {
            debug_assert!(ml >= MLZ_MIN_MATCH);
            let coded = ml - (MLZ_MIN_MATCH - 1);
            if coded <= 14 {
                (coded, None)
            } else {
                (15, Some(ml - (MLZ_MIN_MATCH + 14)))
            }
        }
    };
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        mlz_push_ext(out, lits.len() - 15);
    }
    out.extend_from_slice(lits);
    if let Some((off, _)) = m {
        out.extend_from_slice(&off.to_le_bytes());
        if let Some(e) = ext {
            mlz_push_ext(out, e);
        }
    }
}

/// Compresses `src`; the output always ends with a terminal sequence, so
/// the empty input compresses to the single byte `0x00`.
pub fn mlz_compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    let mut table = vec![0u32; 1 << MLZ_HASH_BITS];
    let hash = |w: u32| (w.wrapping_mul(2_654_435_761) >> (32 - MLZ_HASH_BITS)) as usize;
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MLZ_MIN_MATCH <= src.len() {
        let w = u32::from_le_bytes(src[i..i + 4].try_into().unwrap());
        let h = hash(w);
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        if cand > 0 {
            let c = cand - 1;
            if i - c <= MLZ_MAX_OFFSET && src[c..c + 4] == src[i..i + 4] {
                let mut ml = MLZ_MIN_MATCH;
                while i + ml < src.len() && src[c + ml] == src[i + ml] {
                    ml += 1;
                }
                mlz_emit(&mut out, &src[lit_start..i], Some(((i - c) as u16, ml)));
                i += ml;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    mlz_emit(&mut out, &src[lit_start..], None);
    out
}

/// Decompresses an mlz stream, refusing to produce more than `max_out`
/// bytes.
///
/// # Errors
///
/// A static description of the first structural problem: truncated
/// token/offset/extension, an offset pointing before the start of the
/// produced output, trailing bytes after the terminal sequence, or an
/// output that would exceed `max_out` (the decompression-bomb cap).
pub fn mlz_decompress(src: &[u8], max_out: usize) -> Result<Vec<u8>, String> {
    let mut out: Vec<u8> = Vec::with_capacity(src.len().min(max_out));
    let mut i = 0usize;
    loop {
        let Some(&tok) = src.get(i) else {
            return Err("mlz: truncated stream (missing token)".into());
        };
        i += 1;
        let mut lit = (tok >> 4) as usize;
        if lit == 15 {
            lit += mlz_read_ext(src, &mut i)?;
        }
        if i + lit > src.len() {
            return Err("mlz: truncated literal run".into());
        }
        if out.len() + lit > max_out {
            return Err("mlz: output exceeds the declared size".into());
        }
        out.extend_from_slice(&src[i..i + lit]);
        i += lit;
        let m = (tok & 0x0F) as usize;
        if m == 0 {
            if i != src.len() {
                return Err("mlz: trailing bytes after the terminal sequence".into());
            }
            return Ok(out);
        }
        if i + 2 > src.len() {
            return Err("mlz: truncated match offset".into());
        }
        let off = u16::from_le_bytes([src[i], src[i + 1]]) as usize;
        i += 2;
        let mut ml = m + (MLZ_MIN_MATCH - 1);
        if m == 15 {
            ml = MLZ_MIN_MATCH + 14 + mlz_read_ext(src, &mut i)?;
        }
        if off == 0 || off > out.len() {
            return Err("mlz: match offset outside the produced output".into());
        }
        if out.len() + ml > max_out {
            return Err("mlz: output exceeds the declared size".into());
        }
        let start = out.len() - off;
        for k in 0..ml {
            let b = out[start + k];
            out.push(b);
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// The five v2 frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client capability offer; first frame on a v2 connection.
    Hello,
    /// Server's negotiated reply to a hello.
    HelloAck,
    /// One request; the body is the same flat JSON a v1 line carries.
    Request,
    /// One response, matched to its request by (cid, rid).
    Response,
    /// A connection-fatal protocol error; the sender closes after it.
    Error,
}

impl FrameType {
    fn code(self) -> u8 {
        match self {
            FrameType::Hello => 1,
            FrameType::HelloAck => 2,
            FrameType::Request => 3,
            FrameType::Response => 4,
            FrameType::Error => 5,
        }
    }

    fn from_code(b: u8) -> Option<FrameType> {
        match b {
            1 => Some(FrameType::Hello),
            2 => Some(FrameType::HelloAck),
            3 => Some(FrameType::Request),
            4 => Some(FrameType::Response),
            5 => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// One decoded v2 frame. The body never carries a trailing newline on
/// the wire; line-oriented callers append one after decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub ftype: FrameType,
    pub cid: String,
    pub rid: u64,
    pub body: String,
}

/// Decoder outcome for a partial buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeErr {
    /// More bytes are needed; nothing is wrong yet.
    Incomplete,
    /// The stream is structurally invalid and cannot be resynchronized.
    Corrupt(String),
}

/// Structural faults reported by [`frame_len`], split so callers can
/// count an oversized declaration separately from plain corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameFault {
    /// A declared length exceeds its cap. Detected from the header
    /// prefix alone, before any payload byte is buffered.
    Oversized(String),
    /// Bad magic/version/type/flags or a malformed varint.
    Corrupt(String),
}

impl FrameFault {
    /// The human-readable reason, whichever variant carries it.
    pub fn reason(&self) -> &str {
        match self {
            FrameFault::Oversized(s) | FrameFault::Corrupt(s) => s,
        }
    }
}

/// Encodes one frame, appending to `out`. When `compress_min` is set and
/// the body is at least that long, the payload is mlz-compressed —
/// but only kept if strictly smaller than the raw body. Returns whether
/// the emitted frame ended up compressed.
pub fn encode_frame(
    out: &mut Vec<u8>,
    ftype: FrameType,
    cid: &str,
    rid: u64,
    body: &str,
    compress_min: Option<usize>,
) -> bool {
    debug_assert!(cid.len() <= MAX_CID_BYTES, "cid exceeds MAX_CID_BYTES");
    let raw = body.as_bytes();
    let mut compressed_payload = None;
    if let Some(min) = compress_min {
        if raw.len() >= min {
            let c = mlz_compress(raw);
            if c.len() < raw.len() {
                compressed_payload = Some(c);
            }
        }
    }
    let (flags, payload): (u8, &[u8]) = match &compressed_payload {
        Some(c) => (FLAG_COMPRESSED, c.as_slice()),
        None => (0, raw),
    };
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(ftype.code());
    out.push(flags);
    write_varint(out, cid.len() as u64);
    out.extend_from_slice(cid.as_bytes());
    write_varint(out, rid);
    write_varint(out, raw.len() as u64);
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
    let sum = fnv1a(&out[start + 2..]);
    out.extend_from_slice(&sum.to_le_bytes());
    flags & FLAG_COMPRESSED != 0
}

/// Walks the header prefix at `buf[0]` and returns the total frame
/// length once enough bytes are present (`Ok(None)` = feed more).
///
/// This is the single length authority shared by the server loop, the
/// client, and the chaos proxy's binary relay. Every declared length is
/// validated here, against its cap, **before** the caller buffers the
/// payload — the fix for the v1-only `MAX_FRAME_BYTES` enforcement.
///
/// # Errors
///
/// [`FrameFault::Oversized`] when a declared cid/payload/raw length
/// exceeds its cap; [`FrameFault::Corrupt`] for bad
/// magic/version/type/flags or malformed varints.
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, FrameFault> {
    let corrupt = |s: &str| FrameFault::Corrupt(s.into());
    match buf.first() {
        None => return Ok(None),
        Some(&b) if b != MAGIC[0] => return Err(corrupt("bad frame magic")),
        Some(_) => {}
    }
    match buf.get(1) {
        None => return Ok(None),
        Some(&b) if b != MAGIC[1] => return Err(corrupt("bad frame magic")),
        Some(_) => {}
    }
    match buf.get(2) {
        None => return Ok(None),
        Some(&VERSION) => {}
        Some(_) => return Err(corrupt("unsupported protocol version")),
    }
    match buf.get(3) {
        None => return Ok(None),
        Some(&b) if FrameType::from_code(b).is_none() => {
            return Err(corrupt("unknown frame type"))
        }
        Some(_) => {}
    }
    match buf.get(4) {
        None => return Ok(None),
        Some(&b) if b & !FLAG_COMPRESSED != 0 => return Err(corrupt("unknown frame flags")),
        Some(_) => {}
    }
    let mut pos = 5;
    let take = |r: Result<u64, DecodeErr>| match r {
        Ok(v) => Ok(Some(v)),
        Err(DecodeErr::Incomplete) => Ok(None),
        Err(DecodeErr::Corrupt(s)) => Err(FrameFault::Corrupt(s)),
    };
    let Some(cid_len) = take(read_varint(buf, &mut pos))? else {
        return Ok(None);
    };
    if cid_len > MAX_CID_BYTES as u64 {
        return Err(FrameFault::Oversized(format!(
            "declared cid length {cid_len} exceeds the {MAX_CID_BYTES}-byte cap"
        )));
    }
    pos += cid_len as usize;
    let Some(_rid) = take(read_varint(buf, &mut pos))? else {
        return Ok(None);
    };
    let Some(raw_len) = take(read_varint(buf, &mut pos))? else {
        return Ok(None);
    };
    if raw_len > MAX_FRAME_BYTES as u64 {
        return Err(FrameFault::Oversized(format!(
            "declared raw length {raw_len} exceeds the {MAX_FRAME_BYTES}-byte frame cap"
        )));
    }
    let Some(pay_len) = take(read_varint(buf, &mut pos))? else {
        return Ok(None);
    };
    if pay_len > MAX_FRAME_BYTES as u64 {
        return Err(FrameFault::Oversized(format!(
            "declared payload length {pay_len} exceeds the {MAX_FRAME_BYTES}-byte frame cap"
        )));
    }
    Ok(Some(pos + pay_len as usize + 8))
}

/// Decodes the frame at `buf[0]`, returning it and the bytes consumed.
///
/// The checksum is verified before decompression, so a corrupted
/// compressed payload is rejected without running the decompressor.
///
/// # Errors
///
/// [`DecodeErr::Incomplete`] if the buffer does not yet hold the whole
/// frame; [`DecodeErr::Corrupt`] for any structural fault, including
/// checksum mismatch, non-UTF-8 cid/body, and raw/payload length
/// disagreements.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), DecodeErr> {
    let total = match frame_len(buf) {
        Ok(Some(t)) => t,
        Ok(None) => return Err(DecodeErr::Incomplete),
        Err(f) => return Err(DecodeErr::Corrupt(f.reason().to_string())),
    };
    if buf.len() < total {
        return Err(DecodeErr::Incomplete);
    }
    let corrupt = |s: &str| DecodeErr::Corrupt(s.into());
    let ftype = FrameType::from_code(buf[3]).expect("frame_len validated the type");
    let flags = buf[4];
    let mut pos = 5;
    let cid_len = read_varint(buf, &mut pos)? as usize;
    let cid = std::str::from_utf8(&buf[pos..pos + cid_len])
        .map_err(|_| corrupt("client id is not UTF-8"))?
        .to_string();
    pos += cid_len;
    let rid = read_varint(buf, &mut pos)?;
    let raw_len = read_varint(buf, &mut pos)? as usize;
    let pay_len = read_varint(buf, &mut pos)? as usize;
    let payload = &buf[pos..pos + pay_len];
    let sum_off = pos + pay_len;
    let want = u64::from_le_bytes(buf[sum_off..sum_off + 8].try_into().unwrap());
    if fnv1a(&buf[2..sum_off]) != want {
        return Err(corrupt("frame checksum mismatch"));
    }
    let body_bytes = if flags & FLAG_COMPRESSED != 0 {
        let inflated = mlz_decompress(payload, raw_len).map_err(DecodeErr::Corrupt)?;
        if inflated.len() != raw_len {
            return Err(corrupt("decompressed length disagrees with the header"));
        }
        inflated
    } else {
        if raw_len != pay_len {
            return Err(corrupt("raw/payload length mismatch on an uncompressed frame"));
        }
        payload.to_vec()
    };
    let body =
        String::from_utf8(body_bytes).map_err(|_| corrupt("frame body is not UTF-8"))?;
    Ok((Frame { ftype, cid, rid, body }, total))
}

/// Renders bytes as the pinned golden-fixture format: 16 lowercase hex
/// bytes per line, space-separated.
pub fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 3 + 8);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 {
            out.push(if i % 16 == 0 { '\n' } else { ' ' });
        }
        out.push_str(&format!("{b:02x}"));
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------------
// Hello negotiation
// ---------------------------------------------------------------------------

/// Capabilities carried by hello and hello-ack bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Caps {
    /// Peer is willing to send and receive mlz-compressed payloads.
    pub compress: bool,
    /// Requested (hello) or granted (hello-ack) in-flight window.
    pub window: u32,
}

impl Caps {
    /// The no-negotiation fallback: serial requests, no compression.
    pub fn off() -> Caps {
        Caps { compress: false, window: 1 }
    }
}

/// Renders a hello/hello-ack body (flat JSON, like every other body).
pub fn hello_body(caps: &Caps) -> String {
    format!(
        "{{\"hello\":\"mcc2\",\"compress\":{},\"window\":{}}}",
        u8::from(caps.compress),
        caps.window
    )
}

/// Parses a hello/hello-ack body; `None` if it is not one.
pub fn parse_hello(body: &str) -> Option<Caps> {
    use mcc_harness::json::{get_num, get_str, parse_object};
    let fields = parse_object(body.trim())?;
    if get_str(&fields, "hello")? != "mcc2" {
        return None;
    }
    let compress = get_num(&fields, "compress")? != 0;
    let window = u32::try_from(get_num(&fields, "window")?).ok()?;
    Some(Caps { compress, window })
}

/// The server's side of negotiation: compression only if both ends have
/// it, window clamped to `[1, SERVER_WINDOW]`.
pub fn negotiate(client: &Caps) -> Caps {
    Caps {
        compress: client.compress,
        window: client.window.clamp(1, SERVER_WINDOW),
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Outcome of a v2 handshake attempt against an unknown peer.
pub enum Handshake {
    /// The peer acked the hello; speak v2 on this connection.
    V2(Client),
    /// The peer answered with v1's bare-JSON 400 — it is a line-protocol
    /// server. The socket has been consumed; redial speaking v1.
    V1Peer,
}

/// A v2 client connection: hello-negotiated, pipelining-capable, with
/// reusable encode/accumulate buffers so steady-state calls allocate
/// only the returned body.
pub struct Client {
    w: TcpStream,
    r: BufReader<TcpStream>,
    /// Reusable receive accumulator (partial frames persist here).
    acc: Vec<u8>,
    /// Reusable encode buffer.
    ebuf: Vec<u8>,
    /// Negotiated capabilities.
    pub caps: Caps,
}

impl Client {
    /// Performs the v2 handshake on a fresh stream: sends a hello frame
    /// plus one bait newline, then classifies the peer by its first
    /// reply byte. A v1 server line-reads the bait and answers a bare
    /// 400 (`V1Peer`); a v2 server answers a hello-ack.
    ///
    /// # Errors
    ///
    /// Connection-level failures: timeouts, close during handshake, or a
    /// first reply that is neither a hello-ack nor v1's bare 400.
    pub fn handshake(
        stream: TcpStream,
        read_timeout: Option<Duration>,
        want: &Caps,
    ) -> Result<Handshake, String> {
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(read_timeout)
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        let mut w = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
        let mut ebuf = Vec::with_capacity(128);
        encode_frame(&mut ebuf, FrameType::Hello, "", 0, &hello_body(want), None);
        ebuf.push(b'\n');
        crate::tcp::write_frame(&mut w, &ebuf).map_err(|e| format!("hello write: {e}"))?;
        let mut c = Client {
            w,
            r: BufReader::new(stream),
            acc: Vec::new(),
            ebuf,
            caps: Caps::off(),
        };
        let first = c.peek_byte()?;
        if first != MAGIC[0] {
            let line = c.read_bare_line()?;
            if Response::field_num(&line, "code") == Some(400)
                && line.contains("not a flat JSON object")
            {
                return Ok(Handshake::V1Peer);
            }
            return Err(format!(
                "peer answered the hello with junk: {}",
                line.trim_end()
            ));
        }
        let ack = c.recv()?;
        if ack.ftype != FrameType::HelloAck {
            return Err("peer answered the hello with a non-ack frame".into());
        }
        let granted =
            parse_hello(&ack.body).ok_or_else(|| "malformed hello-ack body".to_string())?;
        c.caps = Caps {
            compress: want.compress && granted.compress,
            window: granted.window.max(1),
        };
        Ok(Handshake::V2(c))
    }

    fn peek_byte(&mut self) -> Result<u8, String> {
        loop {
            match self.r.fill_buf() {
                Ok([]) => return Err("peer closed during the v2 handshake".into()),
                Ok(chunk) => return Ok(chunk[0]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err("v2 handshake timed out".into())
                }
                Err(e) => return Err(format!("v2 handshake read: {e}")),
            }
        }
    }

    fn read_bare_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        loop {
            match self.r.read_line(&mut line) {
                Ok(_) => return Ok(line),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(format!("handshake line read: {e}")),
            }
        }
    }

    /// Sends one frame without waiting for the response — the pipelining
    /// primitive. Compression follows the negotiated capability and the
    /// [`COMPRESS_MIN_BYTES`] threshold.
    ///
    /// # Errors
    ///
    /// The underlying socket write error, stringified.
    pub fn send(&mut self, ftype: FrameType, cid: &str, rid: u64, body: &str) -> Result<(), String> {
        send_frame_on(&mut self.w, &mut self.ebuf, &self.caps, ftype, cid, rid, body)
    }

    /// Receives the next frame, blocking up to the stream's read
    /// timeout.
    ///
    /// # Errors
    ///
    /// Timeout, peer close, or a corrupt stream — all transport-level;
    /// a v2 stream cannot be resynchronized after corruption.
    pub fn recv(&mut self) -> Result<Frame, String> {
        recv_frame_on(&mut self.r, &mut self.acc)
    }

    /// Splits the client into independently owned send and receive
    /// halves, so a pipelined caller can pace requests from one thread
    /// while another drains responses as they arrive — without a
    /// full-window stall serializing the two directions.
    pub fn split(self) -> (ClientSender, ClientReceiver) {
        (
            ClientSender { w: self.w, ebuf: self.ebuf, caps: self.caps },
            ClientReceiver { r: self.r, acc: self.acc },
        )
    }

    /// One serial round trip: send a request, wait for the response with
    /// a matching (cid, rid), discarding stale responses and redundant
    /// hello-acks along the way. Returns the body with a trailing
    /// newline, matching what a v1 round trip yields.
    ///
    /// # Errors
    ///
    /// Transport failures from [`Client::send`]/[`Client::recv`], an
    /// error frame from the peer, or an unexpected frame type.
    pub fn call(&mut self, cid: &str, rid: u64, body: &str) -> Result<String, String> {
        self.send(FrameType::Request, cid, rid, body)?;
        loop {
            let f = self.recv()?;
            match f.ftype {
                FrameType::Response if f.cid == cid && f.rid == rid => {
                    return Ok(format!("{}\n", f.body));
                }
                FrameType::Response | FrameType::HelloAck => continue,
                FrameType::Error => {
                    return Err(format!("peer error frame: {}", f.body));
                }
                FrameType::Hello | FrameType::Request => {
                    return Err("unexpected frame type from the server".into());
                }
            }
        }
    }
}

/// The send half of a split [`Client`]: owns the write stream, the
/// reusable encode buffer, and the negotiated capabilities.
pub struct ClientSender {
    w: TcpStream,
    ebuf: Vec<u8>,
    /// Negotiated capabilities (the receive half carries none).
    pub caps: Caps,
}

impl ClientSender {
    /// [`Client::send`], from the send half. Flushes anything queued
    /// first, preserving frame order.
    ///
    /// # Errors
    ///
    /// The underlying socket write error, stringified.
    pub fn send(&mut self, ftype: FrameType, cid: &str, rid: u64, body: &str) -> Result<(), String> {
        self.queue(ftype, cid, rid, body);
        self.flush()
    }

    /// Encodes one frame into the send buffer without writing it — the
    /// batching primitive. A backlogged pipelining client queues every
    /// request already due and puts them all on the wire with one
    /// [`ClientSender::flush`], amortizing the write syscall and the
    /// wakeups it causes across the whole batch.
    pub fn queue(&mut self, ftype: FrameType, cid: &str, rid: u64, body: &str) {
        let min = self.caps.compress.then_some(COMPRESS_MIN_BYTES);
        encode_frame(&mut self.ebuf, ftype, cid, rid, body.trim_end_matches('\n'), min);
    }

    /// Writes every queued frame in one syscall; a no-op with nothing
    /// queued.
    ///
    /// # Errors
    ///
    /// The underlying socket write error, stringified.
    pub fn flush(&mut self) -> Result<(), String> {
        if self.ebuf.is_empty() {
            return Ok(());
        }
        let r = crate::tcp::write_frame(&mut self.w, &self.ebuf)
            .map_err(|e| format!("frame write: {e}"));
        crate::buf::shrink_reusable(&mut self.ebuf);
        r
    }
}

/// The receive half of a split [`Client`]: owns the buffered read
/// stream and the frame accumulator.
pub struct ClientReceiver {
    r: BufReader<TcpStream>,
    acc: Vec<u8>,
}

impl ClientReceiver {
    /// [`Client::recv`], from the receive half.
    ///
    /// # Errors
    ///
    /// Timeout, peer close, or a corrupt stream — all transport-level.
    pub fn recv(&mut self) -> Result<Frame, String> {
        recv_frame_on(&mut self.r, &mut self.acc)
    }

    /// Toggles non-blocking mode on the underlying socket. The mode is
    /// shared with the send half (same file description), so only flip
    /// it when no send is in progress — i.e. from the thread that owns
    /// both halves, strictly between sends.
    ///
    /// # Errors
    ///
    /// The underlying `FIONBIO` ioctl error, stringified.
    pub fn set_nonblocking(&self, nb: bool) -> Result<(), String> {
        self.r
            .get_ref()
            .set_nonblocking(nb)
            .map_err(|e| format!("set_nonblocking: {e}"))
    }

    /// Receives one frame if one is already buffered or readable right
    /// now; `Ok(None)` once the socket has nothing more (`WouldBlock`).
    /// In non-blocking mode this is the opportunistic drain primitive:
    /// a pipelined sender calls it between sends so responses never sit
    /// unread in the socket inflating their own measured latency.
    ///
    /// # Errors
    ///
    /// Peer close or a corrupt stream; a bare `WouldBlock` is `Ok(None)`.
    pub fn recv_ready(&mut self) -> Result<Option<Frame>, String> {
        loop {
            let skip = self.acc.iter().take_while(|b| **b == b'\n').count();
            if skip > 0 {
                self.acc.drain(..skip);
            }
            match frame_len(&self.acc) {
                Err(f) => return Err(format!("corrupt v2 stream: {}", f.reason())),
                Ok(Some(total)) if self.acc.len() >= total => {
                    let frame = match decode_frame(&self.acc) {
                        Ok((f, _)) => f,
                        Err(DecodeErr::Corrupt(s)) => {
                            return Err(format!("corrupt v2 frame: {s}"))
                        }
                        Err(DecodeErr::Incomplete) => unreachable!("length was checked"),
                    };
                    self.acc.drain(..total);
                    return Ok(Some(frame));
                }
                Ok(_) => {}
            }
            match self.r.fill_buf() {
                Ok([]) => return Err("peer closed mid-frame".into()),
                Ok(chunk) => {
                    let n = chunk.len();
                    self.acc.extend_from_slice(chunk);
                    self.r.consume(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(format!("v2 read: {e}")),
            }
        }
    }
}

/// Encodes and writes one frame; shared by [`Client`] and
/// [`ClientSender`].
fn send_frame_on(
    w: &mut TcpStream,
    ebuf: &mut Vec<u8>,
    caps: &Caps,
    ftype: FrameType,
    cid: &str,
    rid: u64,
    body: &str,
) -> Result<(), String> {
    crate::buf::shrink_reusable(ebuf);
    let min = caps.compress.then_some(COMPRESS_MIN_BYTES);
    encode_frame(ebuf, ftype, cid, rid, body.trim_end_matches('\n'), min);
    crate::tcp::write_frame(w, ebuf).map_err(|e| format!("frame write: {e}"))
}

/// Accumulates stream bytes until one whole frame decodes; shared by
/// [`Client`] and [`ClientReceiver`].
fn recv_frame_on(r: &mut BufReader<TcpStream>, acc: &mut Vec<u8>) -> Result<Frame, String> {
    loop {
        let skip = acc.iter().take_while(|b| **b == b'\n').count();
        if skip > 0 {
            acc.drain(..skip);
        }
        match frame_len(acc) {
            Err(f) => return Err(format!("corrupt v2 stream: {}", f.reason())),
            Ok(Some(total)) if acc.len() >= total => {
                let frame = match decode_frame(acc) {
                    Ok((f, _)) => f,
                    Err(DecodeErr::Corrupt(s)) => return Err(format!("corrupt v2 frame: {s}")),
                    Err(DecodeErr::Incomplete) => unreachable!("length was checked"),
                };
                acc.drain(..total);
                return Ok(frame);
            }
            Ok(_) => {}
        }
        match r.fill_buf() {
            Ok([]) => return Err("peer closed mid-frame".into()),
            Ok(chunk) => {
                let n = chunk.len();
                acc.extend_from_slice(chunk);
                r.consume(n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err("v2 read timed out".into())
            }
            Err(e) => return Err(format!("v2 read: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(ftype: FrameType, cid: &str, rid: u64, body: &str, min: Option<usize>) -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame(&mut out, ftype, cid, rid, body, min);
        out
    }

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [0u64, 1, 127, 128, 129, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
        let mut max = Vec::new();
        write_varint(&mut max, u64::MAX);
        assert_eq!(max.len(), 10, "u64::MAX is the max-width varint");
    }

    #[test]
    fn varint_rejects_overlong_and_overwide_images() {
        let overlong_zero = [0x80u8, 0x00];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&overlong_zero, &mut pos),
            Err(DecodeErr::Corrupt(_))
        ));
        let overwide = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        pos = 0;
        assert!(matches!(
            read_varint(&overwide, &mut pos),
            Err(DecodeErr::Corrupt(_))
        ));
        let never_ends = [0x80u8; 10];
        pos = 0;
        assert!(matches!(
            read_varint(&never_ends, &mut pos),
            Err(DecodeErr::Corrupt(_))
        ));
        pos = 0;
        assert_eq!(read_varint(&[0x80, 0x01], &mut pos), Ok(128));
    }

    #[test]
    fn frame_round_trips_with_and_without_compression() {
        let body = "{\"id\":\"k1\",\"code\":200}".repeat(40);
        for min in [None, Some(1)] {
            let bytes = frame_bytes(FrameType::Request, "bench", 7, &body, min);
            let (f, used) = decode_frame(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(f.ftype, FrameType::Request);
            assert_eq!(f.cid, "bench");
            assert_eq!(f.rid, 7);
            assert_eq!(f.body, body);
        }
        let plain = frame_bytes(FrameType::Request, "bench", 7, &body, None);
        let squeezed = frame_bytes(FrameType::Request, "bench", 7, &body, Some(1));
        assert!(
            squeezed.len() < plain.len(),
            "a repetitive body actually compresses"
        );
    }

    #[test]
    fn declared_lengths_are_capped_before_any_payload_arrives() {
        // Header that declares a 2 MiB payload; no payload bytes follow.
        let mut header = vec![MAGIC[0], MAGIC[1], VERSION, 3, 0];
        write_varint(&mut header, 0); // cid len
        write_varint(&mut header, 1); // rid
        write_varint(&mut header, 2 * 1024 * 1024); // raw len: over cap
        match frame_len(&header) {
            Err(FrameFault::Oversized(msg)) => {
                assert!(msg.contains("raw length"), "unexpected reason: {msg}")
            }
            other => panic!("expected Oversized before payload arrival, got {other:?}"),
        }
        // Same for the wire-payload length.
        let mut header = vec![MAGIC[0], MAGIC[1], VERSION, 3, 0];
        write_varint(&mut header, 0);
        write_varint(&mut header, 1);
        write_varint(&mut header, 10);
        write_varint(&mut header, 2 * 1024 * 1024);
        assert!(matches!(frame_len(&header), Err(FrameFault::Oversized(_))));
        // And the cid length.
        let mut header = vec![MAGIC[0], MAGIC[1], VERSION, 3, 0];
        write_varint(&mut header, 100_000);
        assert!(matches!(frame_len(&header), Err(FrameFault::Oversized(_))));
    }

    #[test]
    fn decompression_bomb_is_refused_by_the_raw_length_cap() {
        // A tiny stream that inflates 255x per sequence: matches over a
        // one-byte window.
        let mut bomb = Vec::new();
        bomb.push(0x1F); // 1 literal, match nibble 15
        bomb.push(b'A');
        bomb.extend_from_slice(&1u16.to_le_bytes());
        mlz_push_ext(&mut bomb, 100_000);
        bomb.push(0x00); // terminal
        let err = mlz_decompress(&bomb, 1024).unwrap_err();
        assert!(err.contains("exceeds the declared size"), "got: {err}");
        // The same stream inflates fine when the cap allows it.
        let ok = mlz_decompress(&bomb, 1 << 20).unwrap();
        assert_eq!(ok.len(), 1 + MLZ_MIN_MATCH + 14 + 100_000);
        assert!(ok.iter().all(|&b| b == b'A'));
    }

    #[test]
    fn mlz_round_trips_assorted_shapes() {
        let cases: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abcd".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            vec![0u8; 5000],
            (0..=255u8).cycle().take(4096).collect(),
            b"{\"id\":\"k1\",\"code\":200,\"checksum\":\"deadbeef\"}".repeat(30),
        ];
        for case in cases {
            let c = mlz_compress(&case);
            let d = mlz_decompress(&c, case.len()).unwrap();
            assert_eq!(d, case);
        }
    }

    #[test]
    fn truncated_compressed_payload_is_always_an_error() {
        let body = b"the quick brown fox jumps over the lazy dog ".repeat(40);
        let c = mlz_compress(&body);
        for cut in 0..c.len() {
            assert!(
                mlz_decompress(&c[..cut], body.len()).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn decoder_skips_nothing_but_caller_strips_bait_newlines() {
        let bytes = frame_bytes(FrameType::Hello, "", 0, &hello_body(&Caps { compress: true, window: 8 }), None);
        let mut with_bait = bytes.clone();
        with_bait.push(b'\n');
        let (f, used) = decode_frame(&with_bait).unwrap();
        assert_eq!(used, bytes.len(), "the bait newline is not part of the frame");
        assert_eq!(f.ftype, FrameType::Hello);
        assert_eq!(parse_hello(&f.body), Some(Caps { compress: true, window: 8 }));
    }

    #[test]
    fn negotiate_clamps_the_window() {
        let granted = negotiate(&Caps { compress: true, window: 10_000 });
        assert_eq!(granted.window, SERVER_WINDOW);
        assert!(granted.compress);
        let granted = negotiate(&Caps { compress: false, window: 0 });
        assert_eq!(granted.window, 1);
        assert!(!granted.compress);
    }

    #[test]
    fn hexdump_is_sixteen_bytes_per_line() {
        let dump = hexdump(&[0xB5, 0x32, 0x02]);
        assert_eq!(dump, "b5 32 02\n");
        let dump = hexdump(&(0..18u8).collect::<Vec<_>>());
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("00 01"));
        assert!(lines[1].starts_with("10 11"));
    }
}
