//! Reusable buffers for the wire path.
//!
//! The v1 line loop, the v2 frame loop, the router's pooled backend
//! connections, and the fleet's heartbeat client all used to allocate a
//! fresh `Vec`/`String`/`BufReader` per request. The two types here make
//! the steady-state wire path allocation-free:
//!
//! * [`SegBuf`] — a segmented write buffer. Frames are appended into
//!   fixed-size segments drawn from a recycle pool, and [`SegBuf::write_out`]
//!   flushes every segment with the write-all discipline and puts the
//!   segments back on the pool. Batching several pipelined responses into
//!   one `write_out` call is what turns N response frames into one
//!   syscall burst instead of N.
//! * a reusable read accumulator is just a `Vec<u8>` whose capacity
//!   survives [`Vec::clear`]; [`shrink_reusable`] clamps its high-water
//!   mark so one 1 MiB frame does not pin 1 MiB per connection forever.

use std::io::{self, Write};

/// Segment size for [`SegBuf`]. One segment comfortably holds several
/// typical response frames, and a 1 MiB worst-case frame is 128 segments
/// that all go back on the recycle pool after one flush.
const SEG_BYTES: usize = 8 * 1024;

/// The capacity a reusable read buffer is allowed to keep across
/// requests. Anything larger is released back to the allocator by
/// [`shrink_reusable`].
pub const REUSE_CAP_BYTES: usize = 64 * 1024;

/// Clamps a reusable buffer's retained capacity: clears it, and shrinks
/// it when a past oversized frame left it holding more than
/// [`REUSE_CAP_BYTES`].
pub fn shrink_reusable(buf: &mut Vec<u8>) {
    buf.clear();
    if buf.capacity() > REUSE_CAP_BYTES {
        buf.shrink_to(REUSE_CAP_BYTES);
    }
}

/// A segmented, reusable write buffer (see the module docs).
pub struct SegBuf {
    /// Filled segments, in write order.
    full: Vec<Vec<u8>>,
    /// The segment currently being filled.
    cur: Vec<u8>,
    /// Recycled segments waiting for reuse.
    spare: Vec<Vec<u8>>,
    /// Total buffered bytes.
    len: usize,
}

impl SegBuf {
    /// An empty buffer; segments are allocated lazily on first use.
    pub fn new() -> SegBuf {
        SegBuf {
            full: Vec::new(),
            cur: Vec::new(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Total buffered bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `bytes`, spilling into fresh (or recycled) segments at
    /// each segment boundary.
    pub fn extend(&mut self, mut bytes: &[u8]) {
        self.len += bytes.len();
        while !bytes.is_empty() {
            if self.cur.len() == SEG_BYTES {
                let next = self
                    .spare
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(SEG_BYTES));
                self.full.push(std::mem::replace(&mut self.cur, next));
            }
            if self.cur.capacity() == 0 {
                self.cur.reserve(SEG_BYTES);
            }
            let take = (SEG_BYTES - self.cur.len()).min(bytes.len());
            self.cur.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
        }
    }

    /// Writes every buffered byte with the write-all discipline of
    /// [`crate::tcp::write_frame`], then resets the buffer, recycling
    /// every segment for the next batch.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error; the buffer still resets, so
    /// a failed connection does not leave half-written frames queued.
    pub fn write_out(&mut self, w: &mut impl Write) -> io::Result<()> {
        let mut result = Ok(());
        for seg in &self.full {
            if result.is_ok() && !seg.is_empty() {
                result = crate::tcp::write_frame(w, seg);
            }
        }
        if result.is_ok() && !self.cur.is_empty() {
            result = crate::tcp::write_frame(w, &self.cur);
        }
        self.clear();
        result
    }

    /// Drops the buffered bytes but keeps the segments for reuse.
    pub fn clear(&mut self) {
        for mut seg in self.full.drain(..) {
            seg.clear();
            self.spare.push(seg);
        }
        self.cur.clear();
        self.len = 0;
    }
}

impl Default for SegBuf {
    fn default() -> Self {
        SegBuf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segbuf_round_trips_across_segment_boundaries() {
        let mut b = SegBuf::new();
        let payload: Vec<u8> = (0..(3 * SEG_BYTES + 100)).map(|i| (i % 251) as u8).collect();
        b.extend(&payload[..10]);
        b.extend(&payload[10..]);
        assert_eq!(b.len(), payload.len());
        let mut out = Vec::new();
        b.write_out(&mut out).unwrap();
        assert_eq!(out, payload, "segmentation is invisible to the reader");
        assert!(b.is_empty(), "write_out resets the buffer");
    }

    #[test]
    fn segbuf_recycles_segments_instead_of_reallocating() {
        let mut b = SegBuf::new();
        let chunk = vec![7u8; 2 * SEG_BYTES];
        let mut out = Vec::new();
        b.extend(&chunk);
        b.write_out(&mut out).unwrap();
        let spares = b.spare.len();
        assert!(spares >= 1, "full segments went back on the pool");
        out.clear();
        b.extend(&chunk);
        b.write_out(&mut out).unwrap();
        assert_eq!(out, chunk);
        assert_eq!(b.spare.len(), spares, "the second batch reused the pool");
    }

    #[test]
    fn shrink_reusable_clamps_the_high_water_mark() {
        let mut buf = vec![0u8; 2 * REUSE_CAP_BYTES];
        shrink_reusable(&mut buf);
        assert!(buf.is_empty());
        assert!(buf.capacity() <= REUSE_CAP_BYTES);
        let mut small = Vec::with_capacity(64);
        small.extend_from_slice(b"abc");
        shrink_reusable(&mut small);
        assert!(small.capacity() >= 64, "small buffers keep their capacity");
    }
}
