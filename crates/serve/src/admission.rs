//! Admission control: the bounded queue, the load-shedding tier ladder,
//! and per-client token-bucket rate limiting.
//!
//! The server's memory is bounded by construction: at most `queue_bound`
//! compile requests may be admitted-but-unresolved at once, and
//! everything past the bound is *shed* with a `503` — the daemon prefers
//! a fast structured no to an unbounded queue. Below the bound, pressure
//! degrades quality before it degrades availability, in the order the
//! survey's compaction chapter suggests (compaction effort is the
//! cheapest thing to trade):
//!
//! | queue depth        | tier | action                                   |
//! |--------------------|------|------------------------------------------|
//! | `< bound/4`        | 0    | full service                             |
//! | `≥ bound/4`        | 1    | shrink the exact-search node budget      |
//! | `≥ bound/2`        | 2    | tier 1 + skip disk persistence           |
//! | `≥ 3·bound/4`      | 3    | tier 2 + sequential-only compaction      |
//! | `≥ bound`          | —    | shed (`503`)                             |
//!
//! Every tier still emits *correct* microcode — the degradation chain in
//! `mcc-compact` guarantees that — so shedding tiers trade packing
//! quality and cache warmth for latency, never correctness.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The pressure tier for a given queue depth under a given bound, or
/// `None` when the request must be shed.
pub fn tier_for_depth(depth: usize, bound: usize) -> Option<u8> {
    if depth >= bound {
        return None;
    }
    if depth * 4 >= bound * 3 {
        Some(3)
    } else if depth * 2 >= bound {
        Some(2)
    } else if depth * 4 >= bound {
        Some(1)
    } else {
        Some(0)
    }
}

/// Monotonic service counters, all relaxed atomics (they feed the
/// `stats` endpoint and the drain summary, not any control decision that
/// needs ordering).
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Compile requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Admitted requests answered `200`.
    pub completed: AtomicU64,
    /// Admitted requests answered `400` (compile error).
    pub compile_errors: AtomicU64,
    /// Frames rejected `400` before admission (malformed, bad names).
    pub bad_requests: AtomicU64,
    /// Requests rejected `429` by a client's token bucket.
    pub rate_limited: AtomicU64,
    /// Requests shed `503` at the queue bound.
    pub shed: AtomicU64,
    /// Requests rejected `503` by an open breaker.
    pub breaker_rejects: AtomicU64,
    /// Requests rejected `503` while draining.
    pub drain_rejects: AtomicU64,
    /// Admitted requests answered `504` (condemned at the deadline).
    pub deadline_expired: AtomicU64,
    /// Admitted requests answered `500` (contained pipeline panic).
    pub panics: AtomicU64,
    /// Idle connections closed by the reaper (a connected client that
    /// never sent a request must not pin an accept slot forever).
    pub idle_reaped: AtomicU64,
    /// Duplicate enveloped requests answered from the idempotency window
    /// (recorded response replayed, nothing re-executed).
    pub replayed: AtomicU64,
    /// Inbound lines that exceeded `MAX_FRAME_BYTES` (connection closed
    /// after a structured `400`).
    pub oversized_frames: AtomicU64,
    /// Envelope-shaped frames that failed structural or checksum
    /// validation — never executed, answered with a bare `400`. v2
    /// streams that turn structurally corrupt count here too.
    pub corrupt_frames: AtomicU64,
    /// Connections that negotiated up to binary protocol v2.
    pub v2_connections: AtomicU64,
    /// Binary v2 frames decoded (hellos and requests both count).
    pub v2_frames: AtomicU64,
    /// Requests served at pressure tier 1 / 2 / 3.
    pub degraded: [AtomicU64; 3],
    /// Requests shed `503` because their tenant's queued quota was full
    /// (the WFQ refuses to let one tenant own the backlog).
    pub quota_shed: AtomicU64,
    /// Requests shed `503` at the class-scaled bound, by class
    /// (interactive / batch / background) — background sheds first.
    pub shed_by_class: [AtomicU64; 3],
    /// Compile requests answered `200`, by class.
    pub served_by_class: [AtomicU64; 3],
}

impl ServeCounters {
    /// Bumps one counter.
    pub fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests served at any degraded tier.
    pub fn degraded_total(&self) -> u64 {
        self.degraded.iter().map(|d| d.load(Ordering::Relaxed)).sum()
    }
}

/// One client's token bucket.
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Default cap on distinct client buckets ([`RateLimiter::with_cap`]
/// overrides it). Sized like the dedup window: enough for every live
/// client of a busy shard, small enough that a churn attack tops out in
/// the low megabytes.
pub const RATE_BUCKET_CAP: usize = 4096;

/// A bucket evicted this recently gets a second chance instead (it
/// belongs to a live client; evicting it would hand the client a fresh
/// burst allowance).
const EVICT_IDLE_FLOOR: Duration = Duration::from_secs(1);

/// Per-client token-bucket rate limiting: `rate` tokens per second,
/// burst capacity of `2 × rate`. `None` disables limiting entirely.
///
/// The bucket map is capped (the §6i dedup-window idiom): client ids
/// arrive off the wire, so an adversary churning fresh ids must not
/// grow server memory without bound. Eviction is second-chance FIFO on
/// insertion order — a candidate touched within [`EVICT_IDLE_FLOOR`]
/// rotates to the back (bounded times per insert) instead of being
/// dropped, so live clients keep their debt and only idle buckets fall
/// out. Evictions are counted: a climbing `rate_buckets_evicted` under
/// steady traffic is the signature of an id-churn attack.
pub struct RateLimiter {
    rate: Option<u32>,
    cap: usize,
    evicted: AtomicU64,
    /// Bucket map plus insertion-order queue; both behind one lock so
    /// they can never disagree.
    buckets: Mutex<(HashMap<String, Bucket>, VecDeque<String>)>,
}

impl RateLimiter {
    /// A limiter admitting `rate` requests/second per client id.
    pub fn new(rate: Option<u32>) -> RateLimiter {
        RateLimiter::with_cap(rate, RATE_BUCKET_CAP)
    }

    /// A limiter with an explicit bucket cap (tests use tiny caps).
    pub fn with_cap(rate: Option<u32>, cap: usize) -> RateLimiter {
        RateLimiter {
            rate,
            cap: cap.max(1),
            evicted: AtomicU64::new(0),
            buckets: Mutex::new((HashMap::new(), VecDeque::new())),
        }
    }

    /// Buckets dropped by the cap so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Distinct clients currently tracked (test observability).
    pub fn tracked(&self) -> usize {
        self.buckets.lock().unwrap().0.len()
    }

    /// Takes one token for `client`; `false` means reject with `429`.
    pub fn admit(&self, client: &str) -> bool {
        let Some(rate) = self.rate else {
            return true;
        };
        if rate == 0 {
            return false;
        }
        let burst = f64::from(rate) * 2.0;
        let now = Instant::now();
        let mut guard = self.buckets.lock().unwrap();
        let (buckets, order) = &mut *guard;
        if !buckets.contains_key(client) {
            if buckets.len() >= self.cap {
                self.evict(buckets, order, now);
            }
            buckets.insert(
                client.to_string(),
                Bucket { tokens: burst, last: now },
            );
            order.push_back(client.to_string());
        }
        let b = buckets.get_mut(client).expect("bucket just ensured");
        let elapsed = now.duration_since(b.last).as_secs_f64();
        b.tokens = (b.tokens + elapsed * f64::from(rate)).min(burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Drops one bucket to make room: the oldest insertion whose client
    /// has been idle past the floor. The rotation scan is bounded, so a
    /// pathological all-live map still evicts in O(bound).
    fn evict(&self, buckets: &mut HashMap<String, Bucket>, order: &mut VecDeque<String>, now: Instant) {
        const MAX_ROTATIONS: usize = 8;
        for _ in 0..MAX_ROTATIONS {
            let Some(victim) = order.pop_front() else {
                return;
            };
            // Stale slot: the bucket was already evicted under a later
            // queue entry for the same id; skip without counting.
            let Some(b) = buckets.get(&victim) else {
                continue;
            };
            if now.duration_since(b.last) < EVICT_IDLE_FLOOR && order.len() >= MAX_ROTATIONS {
                // Recently live: second chance.
                order.push_back(victim);
                continue;
            }
            buckets.remove(&victim);
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Everything scanned was live: evict the oldest anyway — the cap
        // is a hard bound, fairness to one hot bucket is not.
        while let Some(victim) = order.pop_front() {
            if buckets.remove(&victim).is_some() {
                self.evicted.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ladder_matches_the_documented_thresholds() {
        let bound = 8;
        assert_eq!(tier_for_depth(0, bound), Some(0));
        assert_eq!(tier_for_depth(1, bound), Some(0));
        assert_eq!(tier_for_depth(2, bound), Some(1));
        assert_eq!(tier_for_depth(3, bound), Some(1));
        assert_eq!(tier_for_depth(4, bound), Some(2));
        assert_eq!(tier_for_depth(5, bound), Some(2));
        assert_eq!(tier_for_depth(6, bound), Some(3));
        assert_eq!(tier_for_depth(7, bound), Some(3));
        assert_eq!(tier_for_depth(8, bound), None, "at the bound: shed");
        assert_eq!(tier_for_depth(99, bound), None);
    }

    #[test]
    fn tiny_bounds_still_shed_at_the_bound() {
        assert_eq!(tier_for_depth(0, 1), Some(0));
        assert_eq!(tier_for_depth(1, 1), None);
    }

    #[test]
    fn unlimited_rate_always_admits() {
        let rl = RateLimiter::new(None);
        for _ in 0..10_000 {
            assert!(rl.admit("c"));
        }
    }

    #[test]
    fn bucket_map_is_capped_and_counts_evictions() {
        let rl = RateLimiter::with_cap(Some(100), 8);
        // Churn 1000 distinct client ids: memory must stay at the cap
        // and the overflow must be counted, not leaked.
        for i in 0..1000 {
            assert!(rl.admit(&format!("churn-{i}")));
        }
        assert!(rl.tracked() <= 8, "tracked {} exceeds cap", rl.tracked());
        assert_eq!(rl.evicted(), 1000 - rl.tracked() as u64);
    }

    #[test]
    fn eviction_resets_a_returning_clients_bucket() {
        // A client whose bucket is evicted and who then returns gets a
        // fresh burst — the documented (and bounded) cost of the cap.
        let rl = RateLimiter::with_cap(Some(1), 2);
        assert!(rl.admit("victim"));
        assert!(rl.admit("victim"));
        assert!(!rl.admit("victim"), "burst of 2 exhausted");
        for i in 0..10 {
            rl.admit(&format!("churn-{i}"));
        }
        assert!(rl.evicted() > 0);
        assert!(rl.admit("victim"), "returning client starts a fresh bucket");
    }

    #[test]
    fn uncapped_clients_within_cap_are_never_evicted() {
        let rl = RateLimiter::with_cap(Some(100), 64);
        for i in 0..64 {
            assert!(rl.admit(&format!("c{i}")));
        }
        assert_eq!(rl.evicted(), 0);
        assert_eq!(rl.tracked(), 64);
    }

    #[test]
    fn bucket_exhausts_at_burst_and_zero_rate_rejects() {
        let rl = RateLimiter::new(Some(5));
        // Burst capacity 10: a tight loop of 40 requests can only be
        // admitted ~10 times (refilling one token takes 200ms).
        let admitted = (0..40).filter(|_| rl.admit("c")).count();
        assert!((10..20).contains(&admitted), "burst ≈ 2×rate, got {admitted}");
        // Independent clients have independent buckets.
        assert!(rl.admit("other"));
        let rl0 = RateLimiter::new(Some(0));
        assert!(!rl0.admit("c"));
    }
}
