//! Per-tenant quality of service: priority classes, class-aware shed
//! thresholds, and the weighted-fair queue that sits between admission
//! and the worker pool.
//!
//! ## Why a second queue
//!
//! Admission (the bounded `inflight` counter) decides *whether* a
//! request gets in; it says nothing about *order*. The worker pool's
//! channel is FIFO, so before this module a flooding tenant that kept
//! the queue legally below the bound still serialised everyone else
//! behind its backlog. The WFQ holds admitted-but-undispatched jobs in
//! per-tenant queues and releases them to the pool one worker-slot at a
//! time, smallest virtual finish first — so the pool never holds more
//! than `workers` jobs and its FIFO order cannot undo the fair order.
//!
//! ## Virtual-time math
//!
//! Classic WFQ (a.k.a. packetised GPS): the queue keeps a virtual clock
//! `V` that advances to the finish tag of each dispatched job. A job of
//! class cost `c` arriving at tenant `t` with weight `w` is stamped
//!
//! ```text
//! start(j)  = max(V, finish(previous job of t))
//! finish(j) = start(j) + SCALE · c / w
//! ```
//!
//! and dispatch always picks the smallest `finish` across tenant queue
//! heads (ties broken by tenant name, so the schedule is deterministic).
//! Two properties fall out:
//!
//! * **weighted shares** — tenants with backlogs receive service in
//!   proportion to `w / c`; a flooder is throttled to its share, never
//!   starved, never able to starve;
//! * **memoryless idleness** — `max(V, …)` means an idle tenant earns no
//!   credit: its next job competes from the current clock, it cannot
//!   burst ahead on banked time.
//!
//! ## Classes
//!
//! The three priority classes map onto both knobs:
//!
//! | class       | WFQ cost | shed bound      | extra tier |
//! |-------------|----------|-----------------|------------|
//! | interactive | 1        | `bound`         | —          |
//! | batch       | 2        | `bound − bound/8` | —        |
//! | background  | 4        | `bound − bound/4` | +1       |
//!
//! Cost scales a job's virtual length, so at equal weight an
//! interactive tenant outpaces a batch one 2:1 and a background one
//! 4:1. The shed bound shrinks for lower classes — background sheds
//! first, interactive last — and background additionally enters the
//! degradation ladder one tier early. Bare peers that never send a
//! class land on `interactive`, which reproduces the pre-QoS behaviour
//! exactly.

use std::collections::{BTreeMap, VecDeque};

/// Fixed-point scale for virtual time: one unit of service cost at
/// weight 1 advances the clock by this much. Large enough that integer
/// division by any sane weight keeps plenty of resolution.
const SCALE: u64 = 1 << 20;

/// Upper bound on a configured tenant weight; keeps `SCALE / w` well
/// away from zero so finish tags always advance.
pub const MAX_WEIGHT: u32 = 1 << 16;

/// A request's priority class. Order matters: the discriminant indexes
/// per-class counter arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Latency-sensitive traffic: full shed bound, unit cost.
    Interactive = 0,
    /// Throughput traffic: slightly earlier shed, double cost.
    Batch = 1,
    /// Best-effort traffic: sheds first, degrades a tier early,
    /// quadruple cost.
    Background = 2,
}

impl Class {
    /// Every class, in discriminant order.
    pub const ALL: [Class; 3] = [Class::Interactive, Class::Batch, Class::Background];

    /// Parses a wire class name. `None` is the absent field (defaults to
    /// interactive, the pre-QoS behaviour); `Some(Err)` is a `400`.
    pub fn parse(name: Option<&str>) -> Result<Class, String> {
        match name {
            None => Ok(Class::Interactive),
            Some("interactive") => Ok(Class::Interactive),
            Some("batch") => Ok(Class::Batch),
            Some("background") => Ok(Class::Background),
            Some(other) => Err(format!("unknown class `{other}`")),
        }
    }

    /// The wire / metrics-label name.
    pub fn name(self) -> &'static str {
        match self {
            Class::Interactive => "interactive",
            Class::Batch => "batch",
            Class::Background => "background",
        }
    }

    /// The WFQ service cost multiplier.
    pub fn cost(self) -> u64 {
        match self {
            Class::Interactive => 1,
            Class::Batch => 2,
            Class::Background => 4,
        }
    }

    /// Index into per-class counter arrays.
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// The pressure tier for a queue depth under a bound, *per class*: the
/// effective bound shrinks for lower classes (background sheds first)
/// and background enters the degradation ladder one tier early.
/// `Class::Interactive` reproduces [`super::tier_for_depth`] exactly.
pub fn tier_for_class(depth: usize, bound: usize, class: Class) -> Option<u8> {
    let eff = match class {
        Class::Interactive => bound,
        Class::Batch => bound - bound / 8,
        Class::Background => bound - bound / 4,
    }
    .max(1);
    let tier = super::tier_for_depth(depth, eff)?;
    Some(match class {
        Class::Background => (tier + 1).min(3),
        _ => tier,
    })
}

/// One queued job: the pool token it was admitted under, its virtual
/// finish tag, and the payload to hand the pool at dispatch.
struct Item<T> {
    token: u64,
    finish: u64,
    payload: T,
}

/// One tenant's FIFO backlog plus its WFQ state.
struct TenantQ<T> {
    weight: u32,
    last_finish: u64,
    q: VecDeque<Item<T>>,
}

/// The weighted-fair queue. Generic over the payload so the scheduler
/// is testable (and property-testable) without a worker pool behind it.
///
/// `BTreeMap` rather than `HashMap`: dispatch scans tenant heads for the
/// minimum finish tag, and the ordered map makes tie-breaks (and thus
/// the whole schedule) deterministic across runs and platforms.
pub struct WfqQueue<T> {
    vtime: u64,
    default_weight: u32,
    weights: BTreeMap<String, u32>,
    tenants: BTreeMap<String, TenantQ<T>>,
    len: usize,
}

impl<T> WfqQueue<T> {
    /// An empty queue. `default_weight` applies to tenants not named in
    /// `weights`; both are clamped to `1..=MAX_WEIGHT`.
    pub fn new(default_weight: u32, weights: &[(String, u32)]) -> WfqQueue<T> {
        WfqQueue {
            vtime: 0,
            default_weight: default_weight.clamp(1, MAX_WEIGHT),
            weights: weights
                .iter()
                .map(|(t, w)| (t.clone(), (*w).clamp(1, MAX_WEIGHT)))
                .collect(),
            tenants: BTreeMap::new(),
            len: 0,
        }
    }

    /// The configured weight for `tenant`.
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.weights.get(tenant).copied().unwrap_or(self.default_weight)
    }

    /// Queued (not yet dispatched) jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued jobs for one tenant — the quota gate reads this.
    pub fn queued_of(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.q.len())
    }

    /// Enqueues a job, stamping its virtual finish tag. Within a tenant
    /// the queue is strictly FIFO: `last_finish` is monotone, so a later
    /// push can never be tagged earlier than the tenant's backlog.
    pub fn push(&mut self, tenant: &str, class: Class, token: u64, payload: T) {
        let weight = self.weight_of(tenant);
        let tq = self.tenants.entry(tenant.to_string()).or_insert(TenantQ {
            weight,
            last_finish: 0,
            q: VecDeque::new(),
        });
        tq.weight = weight;
        let start = self.vtime.max(tq.last_finish);
        let finish = start + SCALE.saturating_mul(class.cost()) / u64::from(tq.weight);
        tq.last_finish = finish;
        tq.q.push_back(Item { token, finish, payload });
        self.len += 1;
    }

    /// Dispatches the job with the smallest virtual finish tag (ties by
    /// tenant name), advancing the virtual clock to its tag.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let tenant = self
            .tenants
            .iter()
            .filter_map(|(name, tq)| tq.q.front().map(|item| (item.finish, name)))
            .min()?
            .1
            .clone();
        let tq = self.tenants.get_mut(&tenant).expect("tenant with a queued head");
        let item = tq.q.pop_front().expect("non-empty head");
        if tq.q.is_empty() {
            // Retire the empty per-tenant queue but keep its weight
            // binding in `weights`; `max(V, last_finish)` on the next
            // push makes the retired `last_finish` irrelevant.
            self.tenants.remove(&tenant);
        }
        self.len -= 1;
        self.vtime = self.vtime.max(item.finish);
        Some((item.token, item.payload))
    }

    /// Removes a still-queued job by token (deadline condemnation of a
    /// job that never reached a worker). `None` when the token is not
    /// queued here — i.e. it was already dispatched.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let mut hit: Option<(String, usize)> = None;
        for (name, tq) in &self.tenants {
            if let Some(pos) = tq.q.iter().position(|item| item.token == token) {
                hit = Some((name.clone(), pos));
                break;
            }
        }
        let (name, pos) = hit?;
        let tq = self.tenants.get_mut(&name).expect("tenant just seen");
        let item = tq.q.remove(pos).expect("position just found");
        if tq.q.is_empty() {
            self.tenants.remove(&name);
        }
        self.len -= 1;
        Some(item.payload)
    }

    /// The position `token` would be dispatched at if nothing else
    /// arrived: 0 = next. `None` when not queued. This is the starvation
    /// bound the regression test pins — an interactive arrival's
    /// position is bounded by the competing tenants' weight ratios, no
    /// matter how deep a flooder's backlog is.
    pub fn dispatch_position(&self, token: u64) -> Option<usize> {
        let target = self
            .tenants
            .iter()
            .flat_map(|(name, tq)| tq.q.iter().map(move |item| (item, name)))
            .find(|(item, _)| item.token == token)?;
        let (target_item, target_tenant) = target;
        let mut ahead = 0;
        for (name, tq) in &self.tenants {
            for item in &tq.q {
                if (item.finish, name.as_str()) < (target_item.finish, target_tenant.as_str()) {
                    ahead += 1;
                }
            }
        }
        Some(ahead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parse_defaults_bare_to_interactive() {
        assert_eq!(Class::parse(None), Ok(Class::Interactive));
        assert_eq!(Class::parse(Some("interactive")), Ok(Class::Interactive));
        assert_eq!(Class::parse(Some("batch")), Ok(Class::Batch));
        assert_eq!(Class::parse(Some("background")), Ok(Class::Background));
        assert!(Class::parse(Some("platinum")).is_err());
    }

    #[test]
    fn interactive_tier_ladder_matches_legacy() {
        for depth in 0..70 {
            assert_eq!(
                tier_for_class(depth, 64, Class::Interactive),
                super::super::tier_for_depth(depth, 64),
                "depth {depth}"
            );
        }
    }

    #[test]
    fn background_sheds_first_and_degrades_early() {
        let bound = 32;
        // Background's effective bound is 24: sheds while interactive
        // still serves.
        assert_eq!(tier_for_class(24, bound, Class::Background), None);
        assert_eq!(tier_for_class(24, bound, Class::Batch), Some(3));
        assert_eq!(tier_for_class(24, bound, Class::Interactive), Some(3));
        // Batch sheds at 28; interactive holds to the full bound.
        assert_eq!(tier_for_class(28, bound, Class::Batch), None);
        assert_eq!(tier_for_class(28, bound, Class::Interactive), Some(3));
        assert_eq!(tier_for_class(32, bound, Class::Interactive), None);
        // At zero depth background already runs one tier degraded.
        assert_eq!(tier_for_class(0, bound, Class::Background), Some(1));
        assert_eq!(tier_for_class(0, bound, Class::Interactive), Some(0));
        // Tiny bounds stay shed-correct for every class.
        for class in Class::ALL {
            assert_eq!(tier_for_class(1, 1, class), None, "{class:?}");
        }
    }

    #[test]
    fn equal_weights_round_robin() {
        let mut q: WfqQueue<&str> = WfqQueue::new(1, &[]);
        for i in 0..3 {
            q.push("a", Class::Interactive, i, "a");
            q.push("b", Class::Interactive, 10 + i, "b");
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn weights_skew_the_interleave() {
        // Weight 2 vs 1, both backlogged: the heavy tenant gets two
        // dispatches per light dispatch.
        let mut q: WfqQueue<&str> = WfqQueue::new(1, &[("heavy".to_string(), 2)]);
        for i in 0..8 {
            q.push("heavy", Class::Interactive, i, "h");
            q.push("light", Class::Interactive, 100 + i, "l");
        }
        let first6: Vec<&str> =
            (0..6).map(|_| q.pop().expect("queued").1).collect();
        let heavies = first6.iter().filter(|p| **p == "h").count();
        assert_eq!(heavies, 4, "2:1 weights give a 2:1 interleave, got {first6:?}");
    }

    #[test]
    fn class_cost_throttles_within_equal_weights() {
        // Same weight, interactive vs background backlog: cost 1 vs 4
        // gives the interactive tenant 4 dispatches per background one.
        let mut q: WfqQueue<&str> = WfqQueue::new(1, &[]);
        for i in 0..10 {
            q.push("fg", Class::Interactive, i, "fg");
            q.push("bg", Class::Background, 100 + i, "bg");
        }
        let first10: Vec<&str> = (0..10).map(|_| q.pop().expect("queued").1).collect();
        let fg = first10.iter().filter(|p| **p == "fg").count();
        assert_eq!(fg, 8, "cost 4:1 gives a 4:1 interleave, got {first10:?}");
    }

    #[test]
    fn within_tenant_order_is_fifo_even_across_classes() {
        let mut q: WfqQueue<u32> = WfqQueue::new(1, &[]);
        q.push("t", Class::Background, 1, 1);
        q.push("t", Class::Interactive, 2, 2);
        q.push("t", Class::Interactive, 3, 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, [1, 2, 3], "a cheaper later job must not overtake");
    }

    #[test]
    fn idle_tenant_earns_no_credit() {
        let mut q: WfqQueue<&str> = WfqQueue::new(1, &[]);
        // `b` floods and is served for a while; `a` was idle throughout.
        for i in 0..50 {
            q.push("b", Class::Interactive, i, "b");
        }
        for _ in 0..40 {
            q.pop();
        }
        // `a` arrives now: it is next-ish (competes from the current
        // clock), not owed 40 back-dispatches.
        q.push("a", Class::Interactive, 999, "a");
        let pos = q.dispatch_position(999).unwrap();
        assert!(pos <= 1, "idle tenant competes from now, pos {pos}");
        // And conversely `b`'s remaining backlog still drains.
        let rest: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(rest.len(), 11);
    }

    #[test]
    fn remove_unqueues_only_queued_tokens() {
        let mut q: WfqQueue<&str> = WfqQueue::new(1, &[]);
        q.push("t", Class::Interactive, 1, "x");
        q.push("t", Class::Interactive, 2, "y");
        let (tok, _) = q.pop().unwrap();
        assert_eq!(tok, 1);
        assert!(q.remove(1).is_none(), "dispatched token is not removable");
        assert_eq!(q.remove(2), Some("y"));
        assert!(q.is_empty());
        assert_eq!(q.queued_of("t"), 0);
    }
}
