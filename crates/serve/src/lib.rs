//! # `mcc-serve` — the compile-as-a-service daemon
//!
//! A long-running server accepting compile requests over newline-
//! delimited JSON ([`proto`]) on TCP ([`tcp`]) or through the in-process
//! client API ([`Server::handle_line`]), dispatching onto the shared
//! worker pool ([`mcc_harness::pool`]) through the content-addressed
//! cache. The robustness machinery is the point:
//!
//! * **bounded admission** — at most `queue_bound` compile requests are
//!   in flight; the rest are shed with a structured `503`, so memory is
//!   bounded by construction ([`admission`]);
//! * **load-shedding tiers** — rising queue depth shrinks compaction
//!   budgets, then skips disk persistence, then forces sequential-only
//!   compaction, before anything is shed;
//! * **per-request deadlines** — the supervisor condemns an overdue
//!   attempt ([`mcc_harness::WorkerPool::condemn`]), answers `504`, and
//!   a replacement worker keeps the pool at capacity;
//! * **per-client rate limiting** — a token bucket per client id
//!   (`429` when dry);
//! * **per-machine circuit breakers** — a machine whose compiles keep
//!   panicking or timing out is rejected-fast (`503`) for a cool-down,
//!   reusing the campaign breaker bank verbatim;
//! * **panic containment** — every compile runs behind the pool's
//!   `catch_unwind`; a panicking request answers `500` and the daemon
//!   (and the connection) live on;
//! * **graceful drain** — [`Server::drain`] stops admission, lets the
//!   in-flight finish (or deadline out), flushes the cache stats
//!   journal, and joins the supervisor; every admitted request still
//!   gets exactly one response.
//!
//! The invariant the tests enforce end to end: **every admitted request
//! resolves to exactly one structured response** — success, compile
//! error, panic, deadline, or drain — and nothing is ever silently
//! dropped.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mcc_cache::Persist;
use mcc_core::{Compiler, CompilerOptions, SourceLang};
use mcc_harness::{BreakerBank, BreakerConfig, PoolHandle, TaskOutcome, WorkerPool};

pub mod admission;
pub mod buf;
pub mod dedup;
pub mod metrics;
pub mod proto;
pub mod proto2;
pub mod qos;
pub mod tcp;
pub mod trace;

pub use admission::{tier_for_depth, RateLimiter, ServeCounters};
pub use dedup::{Claim, DedupWindow};
pub use proto::{parse_request, CompileReq, Request, Response};
pub use qos::{tier_for_class, Class, WfqQueue};

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads compiling requests.
    pub workers: usize,
    /// Maximum admitted-but-unresolved compile requests; everything past
    /// this is shed with a `503`.
    pub queue_bound: usize,
    /// Default per-request deadline (a request's `deadline_ms` may only
    /// tighten it).
    pub deadline: Duration,
    /// Per-client token-bucket rate (requests/second); `None` = off.
    pub rate_per_client: Option<u32>,
    /// Per-machine circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// TCP connections idle longer than this are reaped (`None` = never);
    /// reaped connections bump the `idle_reaped` counter.
    pub idle_timeout: Option<Duration>,
    /// Capacity of the idempotency window: how many `(client, request_id)`
    /// keys the server remembers for exactly-once retries.
    pub dedup_window: usize,
    /// WFQ weight for tenants not named in [`ServeConfig::tenant_weights`].
    pub default_weight: u32,
    /// Per-tenant WFQ weight overrides (`(tenant, weight)`).
    pub tenant_weights: Vec<(String, u32)>,
    /// Maximum *queued* (admitted but not yet dispatched) requests one
    /// tenant may hold; excess is shed `503`. `0` disables the quota.
    pub tenant_quota: usize,
    /// Per-request trace journal path (`None` = tracing off). The file
    /// is truncated at start; records are FNV-sealed JSONL ([`trace`]).
    pub trace_path: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_bound: 64,
            deadline: Duration::from_millis(10_000),
            rate_per_client: None,
            breaker: BreakerConfig::default(),
            idle_timeout: Some(Duration::from_millis(30_000)),
            dedup_window: 4096,
            default_weight: 1,
            tenant_weights: Vec::new(),
            tenant_quota: 0,
            trace_path: None,
        }
    }
}

/// How often the supervisor wakes to scan deadlines and the drain flag.
const SUPERVISOR_TICK: Duration = Duration::from_millis(2);

/// What a worker returns for one compile request.
type CompileResult = Result<CompileOk, String>;

/// The success payload of one compile.
struct CompileOk {
    instrs: usize,
    ops: usize,
    spills: usize,
    algorithm: String,
    cached: Option<&'static str>,
    checksum: u64,
    /// The content address, so the supervisor can memoize the response
    /// constants for the synchronous fast path.
    key: u128,
}

/// The deterministic part of a `200` response, memoized per content
/// address once a compile resolves. Everything here is a pure function
/// of the cache key; only `cached` and `tier` vary per request.
#[derive(Clone)]
struct RespConsts {
    instrs: usize,
    ops: usize,
    spills: usize,
    algorithm: String,
    checksum: u64,
}

/// One admitted request awaiting resolution.
struct Pending {
    id: String,
    machine: String,
    /// The pressure tier the request was admitted at (echoed in the
    /// `200` so clients can group conformance checks by tier).
    tier: u8,
    deadline: Instant,
    responder: mpsc::Sender<Response>,
    /// QoS accounting identity for the metrics/trace layer.
    client: String,
    tenant: String,
    class: Class,
    /// Intake timestamp: the latency histograms measure from here.
    enqueued: Instant,
}

/// One compile job waiting in (or released from) the weighted-fair
/// queue — exactly what the pool runs.
type Job = mcc_harness::Task<CompileResult>;

/// The fair-queueing stage between admission and the pool: queued jobs
/// plus the count currently handed to workers. Jobs are released only
/// while `dispatched < workers`, so the pool's FIFO channel never holds
/// a backlog that could re-serialise the fair order.
struct QosState {
    wfq: WfqQueue<Job>,
    dispatched: usize,
}

struct Inner {
    cfg: ServeConfig,
    counters: ServeCounters,
    limiter: RateLimiter,
    /// Admitted-but-unresolved compile requests (the bounded queue).
    inflight: AtomicUsize,
    /// Token generator for pool submissions.
    next_token: AtomicU64,
    draining: AtomicBool,
    pending: Mutex<HashMap<u64, Pending>>,
    /// (bank, logical now): one tick per resolution, like the campaign
    /// supervisor, so breaker behaviour is deterministic under test.
    breakers: Mutex<(BreakerBank, u64)>,
    /// The exactly-once window for enveloped requests.
    dedup: DedupWindow,
    /// Memoized per-(machine, lang, options) compile constants: the
    /// `Compiler` (a `MachineDesc` clone per construction otherwise) and
    /// the cache-key prefix (a full MDL render per derivation
    /// otherwise). Both are deterministic functions of the key — see
    /// [`mcc_cache::canonical_key_prefix`] for why name-keying is sound
    /// for the canonical machine set — and together they take the
    /// per-request key cost from ~100µs to well under 1µs.
    compilers: Mutex<HashMap<ConstsKey, CompilerConsts>>,
    /// Memoized response constants per content address (see
    /// [`RespConsts`]): together with the cache's memory tier this lets
    /// the intake thread answer a warm key synchronously — no queue
    /// slot, no pool round trip — which is what a pipelined wire peer
    /// needs for a whole burst to resolve in one scheduling quantum.
    responses: Mutex<HashMap<u128, RespConsts>>,
    /// The weighted-fair queue between admission and the pool.
    qos: Mutex<QosState>,
    /// The per-tenant/class/tier metrics registry behind the `metrics` op.
    metrics: metrics::QosMetrics,
    /// The per-request trace journal (`--trace`), when configured.
    trace: Option<Mutex<trace::TraceWriter>>,
    handle: PoolHandle<CompileResult>,
    started: Instant,
}

/// Memo key for [`Inner::compile_consts`]: lowercased machine name,
/// language name, canonical options string.
type ConstsKey = (String, &'static str, String);

/// Memo value for [`Inner::compile_consts`]: the constructed compiler
/// and the cache-key prefix it implies.
type CompilerConsts = (Arc<Compiler>, mcc_cache::KeyPrefix);

impl Inner {
    /// The memoized compile constants for `(machine, lang, opts)`,
    /// building and caching them on first sight. `machine` must already
    /// have passed [`mcc_machine::machines::is_known`].
    fn compile_consts(
        &self,
        machine: &str,
        lang: SourceLang,
        opts: &CompilerOptions,
    ) -> (Arc<Compiler>, mcc_cache::KeyPrefix) {
        let key = (
            machine.to_ascii_lowercase(),
            lang.name(),
            mcc_cache::canonical_options(opts),
        );
        if let Some(hit) = self.compilers.lock().unwrap().get(&key) {
            return hit.clone();
        }
        let desc = mcc_machine::machines::by_name(&key.0)
            .expect("compile_consts requires a validated machine name");
        let prefix = mcc_cache::key_prefix(&desc, lang, opts);
        let entry = (Arc::new(Compiler::with_options(desc, opts.clone())), prefix);
        self.compilers.lock().unwrap().insert(key, entry.clone());
        entry
    }
}

/// The daemon: construct with [`Server::start`], feed it frames with
/// [`Server::handle_line`] (or serve TCP via [`tcp::serve`]), and stop it
/// with [`Server::drain`] + [`Server::shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

/// Applies a pressure tier to a request's compiler options: tier 1+
/// shrinks the exact-search budget, tier 3 forces sequential-only
/// compaction. (Tier 2's persistence skip is applied at the cache call,
/// not here.) Pure, so the ladder is unit-testable.
pub fn options_for_tier(mut opts: CompilerOptions, tier: u8) -> CompilerOptions {
    opts.bb_budget = mcc_compact::budget_for_pressure(opts.bb_budget, tier);
    if tier >= 3 {
        opts.algorithm = mcc_compact::Algorithm::Sequential;
    }
    opts
}

/// The persist policy for a pressure tier: tier 2+ keeps artifacts out
/// of the disk tier so fsyncs leave the critical path.
pub fn persist_for_tier(tier: u8) -> Persist {
    if tier >= 2 {
        Persist::Memory
    } else {
        Persist::Disk
    }
}

/// Resolves an algorithm name from the wire (the CLI's names).
fn algo_from_name(name: &str) -> Option<mcc_compact::Algorithm> {
    use mcc_compact::Algorithm as A;
    Some(match name {
        "linear" => A::Linear,
        "critpath" => A::CriticalPath,
        "levelpack" => A::LevelPack,
        "tokoro" => A::Tokoro,
        "optimal" => A::BranchBound,
        "sequential" => A::Sequential,
        _ => return None,
    })
}

/// 64-bit FNV-1a over an artifact's canonical serialisation: the
/// conformance checksum clients use to prove cache invisibility (a warm
/// hit must equal a cold compile byte for byte).
fn artifact_checksum(art: &mcc_core::Artifact) -> u64 {
    mcc_cache::disk::fnv1a(mcc_cache::serialize_artifact(art).as_bytes())
}

impl Server {
    /// Starts the worker pool and the supervisor thread.
    pub fn start(cfg: ServeConfig) -> Server {
        let pool: WorkerPool<CompileResult> = WorkerPool::new(cfg.workers);
        let handle = pool.handle();
        let trace = cfg.trace_path.as_ref().and_then(|p| {
            match trace::TraceWriter::create(p) {
                Ok(w) => Some(Mutex::new(w)),
                Err(e) => {
                    // Tracing is observability: a bad path degrades it,
                    // never the daemon.
                    eprintln!("mcc serve: trace disabled ({}: {e})", p.display());
                    None
                }
            }
        });
        let inner = Arc::new(Inner {
            breakers: Mutex::new((BreakerBank::new(cfg.breaker), 0)),
            limiter: RateLimiter::new(cfg.rate_per_client),
            dedup: DedupWindow::new(cfg.dedup_window),
            qos: Mutex::new(QosState {
                wfq: WfqQueue::new(cfg.default_weight, &cfg.tenant_weights),
                dispatched: 0,
            }),
            metrics: metrics::QosMetrics::default(),
            trace,
            cfg,
            counters: ServeCounters::default(),
            inflight: AtomicUsize::new(0),
            next_token: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            pending: Mutex::new(HashMap::new()),
            compilers: Mutex::new(HashMap::new()),
            responses: Mutex::new(HashMap::new()),
            handle,
            started: Instant::now(),
        });
        let sup_inner = Arc::clone(&inner);
        let supervisor = std::thread::spawn(move || supervise(sup_inner, pool));
        Server {
            inner,
            supervisor: Some(supervisor),
        }
    }

    /// Handles one frame from `client` and blocks until its single
    /// response is ready. `ping`/`stats` and every rejection resolve
    /// immediately; admitted compiles resolve when a worker (or the
    /// deadline) does. A `drain` frame begins the drain and answers
    /// `200` at once.
    pub fn handle_line(&self, line: &str, client: &str) -> Response {
        match self.submit_line(line, client) {
            Submitted::Done(r) => r,
            // The supervisor guarantees exactly one send per admitted
            // request, so a closed channel is unreachable; answer 500
            // rather than panicking a connection if it ever regresses.
            Submitted::Pending(rx) => rx
                .recv()
                .unwrap_or_else(|_| Response::error("", 500, "response channel lost")),
        }
    }

    /// Handles one wire frame, enveloped or bare, with panic containment
    /// and exactly-once semantics for enveloped frames.
    ///
    /// * bare JSON — the original [`Server::handle_line`] path, unchanged;
    /// * `@mcc1` envelope — the `(cid, rid)` key goes through the
    ///   idempotency window: duplicates replay the recorded response (or
    ///   wait for the in-flight original) instead of re-executing, and the
    ///   response is wrapped back with the same identity and a fresh
    ///   checksum;
    /// * corrupt envelope — counted, answered with a *bare* `400` (the
    ///   identity fields cannot be trusted), never executed.
    pub fn handle_frame(&self, line: &str, client: &str) -> String {
        let c = self.counters();
        match proto::unwrap_envelope(line) {
            proto::Envelope::Bare => tcp::handle_contained(self, line, client).to_line(),
            proto::Envelope::Corrupt(reason) => {
                c.bump(&c.corrupt_frames);
                Response::error("", 400, &reason).to_line()
            }
            proto::Envelope::Enveloped { cid, rid, body } => {
                match self.inner.dedup.claim(&cid, rid) {
                    Claim::Replay(resp) => {
                        c.bump(&c.replayed);
                        resp
                    }
                    Claim::Wait(rx) => {
                        c.bump(&c.replayed);
                        rx.recv_timeout(self.inner.cfg.deadline + Duration::from_secs(5))
                            .unwrap_or_else(|_| {
                                let id = proto::frame_id(&body);
                                proto::wrap_envelope(
                                    &cid,
                                    rid,
                                    &Response::error(&id, 504, "duplicate wait timed out")
                                        .to_line(),
                                )
                            })
                    }
                    Claim::Fresh => {
                        // The envelope's client id is the logical identity:
                        // rate limiting and dedup follow the client across
                        // reconnects, not the ephemeral socket address.
                        let r = tcp::handle_contained(self, &format!("{body}\n"), &cid);
                        // Transient rejections must not be replayed: a
                        // retried frame deserves a fresh admission attempt.
                        let record = !matches!(r.code, 429 | 503);
                        let wrapped = proto::wrap_envelope(&cid, rid, &r.to_line());
                        self.inner.dedup.resolve(&cid, rid, &wrapped, record);
                        wrapped
                    }
                }
            }
        }
    }

    /// Non-blocking intake: parses and either resolves the frame
    /// immediately or admits it and hands back the response channel.
    pub fn submit_line(&self, line: &str, client: &str) -> Submitted {
        let req = match proto::parse_request(line) {
            Ok(r) => r,
            Err(reason) => {
                self.inner.counters.bump(&self.inner.counters.bad_requests);
                return Submitted::Done(Response::error(&proto::frame_id(line), 400, &reason));
            }
        };
        match req {
            Request::Ping => {
                // The pong doubles as the router's health probe, so it
                // carries what a probe needs: queue pressure (a saturated
                // backend is a hedging candidate) and the drain flag (a
                // draining backend must leave the ring).
                let draining = self.inner.draining.load(Ordering::SeqCst);
                let mut r = Response::new(&proto::frame_id(line), 200);
                r.push_str("pong", "mcc-serve");
                r.push_num("uptime_ms", self.inner.started.elapsed().as_millis() as u64);
                r.push_num("queue_depth", self.queue_depth() as u64);
                r.push_str("draining", if draining { "true" } else { "false" });
                // Child-facing readiness for the fleet supervisor: a pong
                // means the shard is accepting, `ready` folds in the drain
                // flag, and the pid lets the supervisor confirm it is
                // talking to the child it actually spawned.
                r.push_str("ready", if draining { "false" } else { "true" });
                r.push_num("pid", u64::from(std::process::id()));
                Submitted::Done(r)
            }
            Request::Stats => {
                let mut r = self.stats_response();
                r.id = proto::frame_id(line);
                Submitted::Done(r)
            }
            Request::Metrics => {
                let mut r = self.metrics_response();
                r.id = proto::frame_id(line);
                Submitted::Done(r)
            }
            Request::Drain => {
                self.begin_drain();
                let mut r = Response::new(&proto::frame_id(line), 200);
                r.push_str("draining", "true");
                Submitted::Done(r)
            }
            // Ring membership is a router concern: a shard answering
            // `join`/`leave` itself would fork the membership view.
            Request::Join(j) => Submitted::Done(Response::error(
                &j.id,
                400,
                "join is a router admin op, not a shard op",
            )),
            Request::Leave { .. } => Submitted::Done(Response::error(
                &proto::frame_id(line),
                400,
                "leave is a router admin op, not a shard op",
            )),
            Request::Compile(c) => self.submit_compile(c, client),
        }
    }

    /// Admits (or rejects) one compile request.
    fn submit_compile(&self, req: CompileReq, client: &str) -> Submitted {
        let inner = &*self.inner;
        let counters = &inner.counters;
        let arrived = Instant::now();
        // QoS identity: the tenant defaults to the transport client id
        // so bare peers keep working, the class to interactive so the
        // pre-QoS shed thresholds apply unchanged.
        let tenant = req.tenant.clone().unwrap_or_else(|| client.to_string());
        let class = match Class::parse(req.class.as_deref()) {
            Ok(c) => c,
            Err(reason) => {
                counters.bump(&counters.bad_requests);
                observe(inner, client, &tenant, Class::Interactive, &req.id, 400, 0, 0);
                return Submitted::Done(Response::error(&req.id, 400, &reason));
            }
        };
        // Every early resolution flows through here so the metrics and
        // trace layers see rejections, not just admissions.
        let reject = |code: u16, reason: &str| {
            observe(inner, client, &tenant, class, &req.id, code, 0, us_since(arrived));
            Submitted::Done(Response::error(&req.id, code, reason))
        };
        if inner.draining.load(Ordering::SeqCst) {
            counters.bump(&counters.drain_rejects);
            return reject(503, "draining");
        }
        if !inner.limiter.admit(client) {
            counters.bump(&counters.rate_limited);
            return reject(429, "rate limited");
        }

        // Validate names before spending a pool slot. `is_known` avoids
        // building the description on the hot path; the memoized
        // `compile_consts` below builds it once per (machine, options).
        if !mcc_machine::machines::is_known(&req.machine) {
            counters.bump(&counters.bad_requests);
            return reject(400, &format!("unknown machine `{}`", req.machine));
        }
        let Some(lang) = SourceLang::from_name(&req.lang) else {
            counters.bump(&counters.bad_requests);
            return reject(400, &format!("unknown language `{}`", req.lang));
        };
        let mut opts = CompilerOptions::default();
        if let Some(name) = &req.algo {
            match algo_from_name(name) {
                Some(a) => opts.algorithm = a,
                None => {
                    counters.bump(&counters.bad_requests);
                    return reject(400, &format!("unknown algorithm `{name}`"));
                }
            }
        }

        // Per-machine breaker: a key that keeps panicking or timing out
        // is rejected fast until its cool-down elapses.
        {
            let mut b = inner.breakers.lock().unwrap();
            let now = b.1;
            if b.0.admit(&req.machine, now) == mcc_harness::Admit::Reject {
                counters.bump(&counters.breaker_rejects);
                return reject(503, &format!("breaker open for machine `{}`", req.machine));
            }
        }

        // Synchronous fast path: a key whose artifact is warm in the
        // memory tier — and whose response constants a prior resolution
        // memoized — is answered from the intake thread, consuming no
        // queue slot and no pool round trip. Every gate above (drain,
        // rate limit, validation, breaker) has already been applied;
        // the breaker clock and the counters tick exactly as a pooled
        // resolution would. A full queue still sheds everything.
        if let Some(tier) = tier_for_class(
            inner.inflight.load(Ordering::SeqCst),
            inner.cfg.queue_bound,
            class,
        ) {
            let t_opts = options_for_tier(opts.clone(), tier);
            let (_, prefix) = inner.compile_consts(&req.machine, lang, &t_opts);
            let key = mcc_cache::key_from_prefix(prefix, &req.src);
            let consts = inner.responses.lock().unwrap().get(&key.0).cloned();
            if let Some(rc) = consts {
                if mcc_cache::memory_hit_keyed(key) {
                    counters.bump(&counters.accepted);
                    if tier > 0 {
                        counters.bump(&counters.degraded[usize::from(tier) - 1]);
                        if tier >= 2 {
                            mcc_cache::set_persist_override(Some(Persist::Memory));
                        }
                    }
                    counters.bump(&counters.completed);
                    breaker_result(inner, &req.machine, true);
                    observe(inner, client, &tenant, class, &req.id, 200, tier, us_since(arrived));
                    let mut r = Response::new(&req.id, 200);
                    r.push_num("instrs", rc.instrs as u64);
                    r.push_num("ops", rc.ops as u64);
                    r.push_num("spills", rc.spills as u64);
                    r.push_str("algorithm", &rc.algorithm);
                    r.push_str("cached", "memory");
                    r.push_str("checksum", &format!("{:016x}", rc.checksum));
                    r.push_num("tier", u64::from(tier));
                    return Submitted::Done(r);
                }
            }
        }

        // Per-tenant quota: one tenant may not own the whole backlog,
        // no matter how far under the global bound it is.
        if inner.cfg.tenant_quota > 0
            && inner.qos.lock().unwrap().wfq.queued_of(&tenant) >= inner.cfg.tenant_quota
        {
            counters.bump(&counters.quota_shed);
            return reject(503, "tenant quota exceeded");
        }

        // The bounded queue: reserve a slot or shed. compare_exchange so
        // concurrent submitters can never overshoot the bound. The
        // effective bound is class-scaled: background sheds first,
        // interactive last.
        let tier = loop {
            let depth = inner.inflight.load(Ordering::SeqCst);
            let Some(tier) = tier_for_class(depth, inner.cfg.queue_bound, class) else {
                counters.bump(&counters.shed);
                counters.bump(&counters.shed_by_class[class.idx()]);
                return reject(503, "queue full: shed");
            };
            if inner
                .inflight
                .compare_exchange(depth, depth + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break tier;
            }
        };
        counters.bump(&counters.accepted);
        if tier > 0 {
            counters.bump(&counters.degraded[usize::from(tier) - 1]);
            if tier >= 2 {
                // Global persistence override for any other in-process
                // compile paths; cleared when pressure drops (below).
                mcc_cache::set_persist_override(Some(Persist::Memory));
            }
        }

        let opts = options_for_tier(opts, tier);
        let persist = persist_for_tier(tier);
        let deadline = inner
            .cfg
            .deadline
            .min(Duration::from_millis(req.deadline_ms.unwrap_or(u64::MAX)));

        let (tx, rx) = mpsc::channel();
        let token = inner.next_token.fetch_add(1, Ordering::Relaxed);
        inner.pending.lock().unwrap().insert(
            token,
            Pending {
                id: req.id.clone(),
                machine: req.machine.clone(),
                tier,
                deadline: Instant::now() + deadline,
                responder: tx,
                client: client.to_string(),
                tenant: tenant.clone(),
                class,
                enqueued: arrived,
            },
        );
        let (compiler, prefix) = inner.compile_consts(&req.machine, lang, &opts);
        let src = req.src;
        let job: Job = Box::new(move || {
            let key = mcc_cache::key_from_prefix(prefix, &src);
            match mcc_cache::compile_cached_keyed(key, &compiler, lang, &src, persist) {
                Ok(art) => Ok(CompileOk {
                    instrs: art.stats.micro_instrs,
                    ops: art.stats.micro_ops,
                    spills: art.stats.spills,
                    algorithm: art.stats.algorithm_used.clone(),
                    cached: art.stats.cached,
                    checksum: artifact_checksum(&art),
                    key: key.0,
                }),
                Err(e) => Err(e.to_string()),
            }
        });
        // Into the weighted-fair queue, not straight to the pool: the
        // dispatcher releases jobs one free worker at a time in virtual-
        // finish order, so a flooding tenant waits its turn.
        inner
            .qos
            .lock()
            .unwrap()
            .wfq
            .push(&tenant, class, token, job);
        dispatch_ready(inner);
        Submitted::Pending(rx)
    }

    /// Renders the `stats` response: queue depth, shed/degrade/breaker
    /// counters, and the cache hit rate.
    fn stats_response(&self) -> Response {
        let inner = &*self.inner;
        let c = &inner.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut r = Response::new("", 200);
        r.push_num("queue_depth", inner.inflight.load(Ordering::SeqCst) as u64);
        r.push_num("queue_bound", inner.cfg.queue_bound as u64);
        r.push_num("workers", inner.cfg.workers as u64);
        r.push_num("accepted", load(&c.accepted));
        r.push_num("completed", load(&c.completed));
        r.push_num("compile_errors", load(&c.compile_errors));
        r.push_num("bad_requests", load(&c.bad_requests));
        r.push_num("rate_limited", load(&c.rate_limited));
        r.push_num("shed", load(&c.shed));
        r.push_num("breaker_rejects", load(&c.breaker_rejects));
        r.push_num("drain_rejects", load(&c.drain_rejects));
        r.push_num("deadline_expired", load(&c.deadline_expired));
        r.push_num("panics", load(&c.panics));
        r.push_num("idle_reaped", load(&c.idle_reaped));
        r.push_num("replayed", load(&c.replayed));
        r.push_num("oversized_frames", load(&c.oversized_frames));
        r.push_num("corrupt_frames", load(&c.corrupt_frames));
        r.push_num("v2_connections", load(&c.v2_connections));
        r.push_num("v2_frames", load(&c.v2_frames));
        r.push_num("degraded_t1", load(&c.degraded[0]));
        r.push_num("degraded_t2", load(&c.degraded[1]));
        r.push_num("degraded_t3", load(&c.degraded[2]));
        // QoS fields (absent from pre-WFQ servers; aggregating peers
        // must treat them as 0 when missing — see the route crate's
        // cross-version parse test).
        r.push_num("rate_buckets_evicted", inner.limiter.evicted());
        r.push_num("quota_shed", load(&c.quota_shed));
        r.push_num("wfq_depth", inner.qos.lock().unwrap().wfq.len() as u64);
        for class in Class::ALL {
            r.push_num(&format!("shed_{}", class.name()), load(&c.shed_by_class[class.idx()]));
            r.push_num(
                &format!("class_served_{}", class.name()),
                load(&c.served_by_class[class.idx()]),
            );
        }
        let by_tenant = inner.metrics.served_by_tenant();
        r.push_str(
            "tenants",
            &by_tenant.iter().map(|(t, _)| t.as_str()).collect::<Vec<_>>().join(","),
        );
        for (t, n) in &by_tenant {
            r.push_num(&format!("tenant_served_{t}"), *n);
        }
        let breakers = inner.breakers.lock().unwrap();
        r.push_num("breaker_trips", breakers.0.trips());
        r.push_str("breakers_open", &breakers.0.degraded_keys().join(","));
        drop(breakers);
        let cache = mcc_cache::global().counters();
        let lookups = cache.hits() + cache.misses;
        r.push_num("cache_hits", cache.hits());
        r.push_num("cache_misses", cache.misses);
        r.push_num(
            "cache_hit_permille",
            (cache.hits() * 1000).checked_div(lookups).unwrap_or(0),
        );
        r.push_str(
            "draining",
            if inner.draining.load(Ordering::SeqCst) { "true" } else { "false" },
        );
        r
    }

    /// Renders the `metrics` response: the full Prometheus text
    /// exposition in the `text` field (JSON-escaped; clients unescape
    /// via [`Response::field_str`]).
    fn metrics_response(&self) -> Response {
        let mut r = Response::new("", 200);
        r.push_str("format", "prometheus-text");
        r.push_str("text", &self.metrics_text());
        r
    }

    /// The raw Prometheus text exposition for this server.
    pub fn metrics_text(&self) -> String {
        let inner = &*self.inner;
        let c = &inner.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let gauge = |name: &str, help: &str, v: u64| {
            (name.to_string(), help.to_string(), "gauge", String::new(), v)
        };
        let counter = |name: &str, help: &str, v: u64| {
            (name.to_string(), help.to_string(), "counter", String::new(), v)
        };
        let cache = mcc_cache::global().counters();
        let extra = vec![
            gauge(
                "mcc_serve_queue_depth",
                "Admitted-but-unresolved compile requests.",
                inner.inflight.load(Ordering::SeqCst) as u64,
            ),
            gauge(
                "mcc_serve_wfq_depth",
                "Admitted requests still queued in the weighted-fair queue.",
                inner.qos.lock().unwrap().wfq.len() as u64,
            ),
            gauge(
                "mcc_serve_draining",
                "1 while the server is draining.",
                u64::from(inner.draining.load(Ordering::SeqCst)),
            ),
            gauge(
                "mcc_serve_uptime_ms",
                "Milliseconds since the server started.",
                inner.started.elapsed().as_millis() as u64,
            ),
            counter("mcc_serve_accepted_total", "Compile requests admitted.", load(&c.accepted)),
            counter("mcc_serve_completed_total", "Admitted requests answered 200.", load(&c.completed)),
            counter("mcc_serve_shed_total", "Requests shed 503 at the class bound.", load(&c.shed)),
            counter(
                "mcc_serve_quota_shed_total",
                "Requests shed 503 by their tenant's queued quota.",
                load(&c.quota_shed),
            ),
            counter("mcc_serve_rate_limited_total", "Requests rejected 429.", load(&c.rate_limited)),
            counter(
                "mcc_serve_breaker_rejects_total",
                "Requests rejected 503 by an open breaker.",
                load(&c.breaker_rejects),
            ),
            counter(
                "mcc_serve_deadline_expired_total",
                "Admitted requests answered 504.",
                load(&c.deadline_expired),
            ),
            counter("mcc_serve_panics_total", "Contained pipeline panics.", load(&c.panics)),
            counter(
                "mcc_serve_rate_buckets_evicted_total",
                "Per-client rate buckets evicted by the cap.",
                inner.limiter.evicted(),
            ),
            counter("mcc_serve_cache_hits_total", "Compile cache hits.", cache.hits()),
            counter("mcc_serve_cache_misses_total", "Compile cache misses.", cache.misses),
        ];
        inner.metrics.render(&extra)
    }

    /// Current counters (for the in-process bench and tests).
    pub fn counters(&self) -> &ServeCounters {
        &self.inner.counters
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.inflight.load(Ordering::SeqCst)
    }

    /// The configured idle-connection timeout (`None` = never reap).
    pub fn config_idle_timeout(&self) -> Option<Duration> {
        self.inner.cfg.idle_timeout
    }

    /// Flips the drain flag: no new compiles are admitted from here on.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Graceful drain: stop admitting, wait for the in-flight requests
    /// to finish or deadline out, flush the cache stats journal. Returns
    /// the number of requests that were still in flight when the drain
    /// began.
    pub fn drain(&self) -> usize {
        self.begin_drain();
        let at_start = self.queue_depth();
        // Everything pending carries a deadline, and the supervisor
        // condemns overdue attempts — so this loop terminates.
        while self.queue_depth() > 0 {
            std::thread::sleep(SUPERVISOR_TICK);
        }
        mcc_cache::flush_global_stats();
        at_start
    }

    /// Stops the supervisor and the pool. Implies [`Server::drain`].
    pub fn shutdown(mut self) {
        self.drain();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_drain();
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

/// The result of [`Server::submit_line`].
pub enum Submitted {
    /// Resolved immediately (controls, rejections, and errors).
    Done(Response),
    /// Admitted: the single response arrives on this channel.
    Pending(mpsc::Receiver<Response>),
}

/// The supervisor loop: drains pool outcomes into responses, enforces
/// deadlines by condemnation, and exits once draining and empty.
fn supervise(inner: Arc<Inner>, mut pool: WorkerPool<CompileResult>) {
    let counters = &inner.counters;
    loop {
        match pool.recv_timeout(SUPERVISOR_TICK) {
            Ok((token, outcome)) => {
                // Whatever the outcome, a worker slot just freed: the
                // dispatcher may release the next fair-queue head.
                {
                    let mut q = inner.qos.lock().unwrap();
                    q.dispatched = q.dispatched.saturating_sub(1);
                }
                let Some(p) = inner.pending.lock().unwrap().remove(&token) else {
                    // Already condemned and answered 504.
                    dispatch_ready(&inner);
                    continue;
                };
                let response = match outcome {
                    TaskOutcome::Done(Ok(ok)) => {
                        counters.bump(&counters.completed);
                        breaker_result(&inner, &p.machine, true);
                        inner.responses.lock().unwrap().insert(
                            ok.key,
                            RespConsts {
                                instrs: ok.instrs,
                                ops: ok.ops,
                                spills: ok.spills,
                                algorithm: ok.algorithm.clone(),
                                checksum: ok.checksum,
                            },
                        );
                        let mut r = Response::new(&p.id, 200);
                        r.push_num("instrs", ok.instrs as u64);
                        r.push_num("ops", ok.ops as u64);
                        r.push_num("spills", ok.spills as u64);
                        r.push_str("algorithm", &ok.algorithm);
                        r.push_str("cached", ok.cached.unwrap_or("cold"));
                        r.push_str("checksum", &format!("{:016x}", ok.checksum));
                        r.push_num("tier", u64::from(p.tier));
                        r
                    }
                    TaskOutcome::Done(Err(msg)) => {
                        // A compile error is the *pipeline working*: it
                        // neither trips the breaker nor counts as
                        // service degradation.
                        counters.bump(&counters.compile_errors);
                        breaker_result(&inner, &p.machine, true);
                        Response::error(&p.id, 400, &msg)
                    }
                    TaskOutcome::Panicked(text) => {
                        counters.bump(&counters.panics);
                        breaker_result(&inner, &p.machine, false);
                        Response::error(&p.id, 500, &format!("panic contained: {text}"))
                    }
                };
                observe(
                    &inner,
                    &p.client,
                    &p.tenant,
                    p.class,
                    &p.id,
                    response.code,
                    p.tier,
                    us_since(p.enqueued),
                );
                // Decrement before sending: a client that reacts to its
                // response must observe the freed queue slot.
                inner.inflight.fetch_sub(1, Ordering::SeqCst);
                maybe_clear_pressure(&inner);
                dispatch_ready(&inner);
                let _ = p.responder.send(response);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }

        // Deadline scan: condemn overdue attempts and answer 504 now.
        // A still-queued job is simply unqueued; a dispatched one is
        // condemned in the pool, where the replacement worker keeps the
        // pool at capacity.
        let now = Instant::now();
        let overdue: Vec<u64> = inner
            .pending
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(t, _)| *t)
            .collect();
        for token in overdue {
            let Some(p) = inner.pending.lock().unwrap().remove(&token) else {
                continue;
            };
            let was_queued = inner.qos.lock().unwrap().wfq.remove(token).is_some();
            if !was_queued {
                pool.condemn(token);
                let mut q = inner.qos.lock().unwrap();
                q.dispatched = q.dispatched.saturating_sub(1);
            }
            counters.bump(&counters.deadline_expired);
            breaker_result(&inner, &p.machine, false);
            observe(
                &inner,
                &p.client,
                &p.tenant,
                p.class,
                &p.id,
                504,
                p.tier,
                us_since(p.enqueued),
            );
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            maybe_clear_pressure(&inner);
            dispatch_ready(&inner);
            let _ = p.responder.send(Response::error(&p.id, 504, "deadline expired"));
        }

        if inner.draining.load(Ordering::SeqCst) && inner.inflight.load(Ordering::SeqCst) == 0 {
            break;
        }
    }
    pool.shutdown();
}

/// Microseconds since `start`, saturating into the histogram domain.
fn us_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Releases fair-queue heads to the pool while worker slots are free.
/// Jobs are handed over in virtual-finish order, at most `workers` at a
/// time, so the pool's FIFO channel never re-serialises the fair order.
fn dispatch_ready(inner: &Inner) {
    let mut q = inner.qos.lock().unwrap();
    let slots = inner.cfg.workers.max(1);
    while q.dispatched < slots {
        let Some((token, job)) = q.wfq.pop() else {
            break;
        };
        q.dispatched += 1;
        inner.handle.submit(token, job);
    }
}

/// Records one resolved request in the per-class counters, the metrics
/// registry, and (when configured) the trace journal.
#[allow(clippy::too_many_arguments)]
fn observe(
    inner: &Inner,
    client: &str,
    tenant: &str,
    class: Class,
    id: &str,
    code: u16,
    tier: u8,
    us: u64,
) {
    if code == 200 {
        inner.counters.bump(&inner.counters.served_by_class[class.idx()]);
        inner.metrics.record_tier(class, tier);
    }
    inner.metrics.record(tenant, class, code, Some(us));
    if let Some(tw) = &inner.trace {
        tw.lock().unwrap().record(&trace::TraceRecord {
            seq: 0, // stamped by the writer
            client: client.to_string(),
            tenant: tenant.to_string(),
            class,
            id: id.to_string(),
            code,
            tier,
            us,
        });
    }
}

/// Advances breaker logical time and records one request's outcome.
fn breaker_result(inner: &Inner, machine: &str, success: bool) {
    let mut b = inner.breakers.lock().unwrap();
    b.1 += 1;
    let now = b.1;
    if success {
        b.0.on_success(machine);
    } else {
        b.0.on_failure(machine, now);
    }
}

/// Clears the global persistence override once the queue has fallen back
/// below the tier-2 threshold.
fn maybe_clear_pressure(inner: &Inner) {
    let depth = inner.inflight.load(Ordering::SeqCst);
    if tier_for_depth(depth, inner.cfg.queue_bound).is_some_and(|t| t < 2) {
        mcc_cache::set_persist_override(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_bound: 4,
            deadline: Duration::from_millis(5_000),
            ..ServeConfig::default()
        }
    }

    const SRC: &str = "reg a = R0\nconst a, 7\nadd a, a, 1\nexit a\n";

    #[test]
    fn compile_request_answers_200_with_stats() {
        let s = Server::start(tiny());
        let line = proto::compile_line("r1", "hm1", "yalll", SRC);
        let r = s.handle_line(&line, "t");
        assert_eq!(r.code, 200, "got: {}", r.to_line());
        let rendered = r.to_line();
        assert!(Response::field_num(&rendered, "instrs").unwrap() > 0);
        assert_eq!(Response::field_str(&rendered, "id").as_deref(), Some("r1"));
        assert!(Response::field_str(&rendered, "checksum").is_some());
        s.shutdown();
    }

    #[test]
    fn warm_hit_has_identical_checksum() {
        let s = Server::start(tiny());
        let line = proto::compile_line("a", "vm1", "yalll", SRC);
        let cold = s.handle_line(&line, "t").to_line();
        let warm = s.handle_line(&line, "t").to_line();
        assert_eq!(
            Response::field_str(&cold, "checksum"),
            Response::field_str(&warm, "checksum"),
            "cache hits must be byte-identical to cold compiles"
        );
        s.shutdown();
    }

    #[test]
    fn bad_frames_get_structured_400s() {
        let s = Server::start(tiny());
        for bad in ["garbage", "{\"op\":\"warp\"}", "{\"op\":\"compile\",\"id\":\"x\"}"] {
            let r = s.handle_line(bad, "t");
            assert_eq!(r.code, 400, "frame {bad:?}");
        }
        let r = s.handle_line(
            &proto::compile_line("x", "not-a-machine", "yalll", SRC),
            "t",
        );
        assert_eq!(r.code, 400);
        let r = s.handle_line(&proto::compile_line("x", "hm1", "klingon", SRC), "t");
        assert_eq!(r.code, 400);
        assert!(s.counters().bad_requests.load(Ordering::Relaxed) >= 5);
        s.shutdown();
    }

    #[test]
    fn compile_errors_are_400_not_500() {
        let s = Server::start(tiny());
        let r = s.handle_line(&proto::compile_line("e", "hm1", "yalll", "reg a = NOPE\n"), "t");
        assert_eq!(r.code, 400);
        assert!(r.to_line().contains("error"));
        s.shutdown();
    }

    #[test]
    fn ping_and_stats_respond_immediately() {
        let s = Server::start(tiny());
        let r = s.handle_line("{\"op\":\"ping\"}", "t");
        assert_eq!(r.code, 200);
        assert!(r.to_line().contains("pong"));
        let line = s.handle_line("{\"op\":\"stats\"}", "t").to_line();
        assert_eq!(Response::field_num(&line, "queue_bound"), Some(4));
        assert_eq!(Response::field_num(&line, "shed"), Some(0));
        s.shutdown();
    }

    #[test]
    fn draining_rejects_new_compiles_with_503() {
        let s = Server::start(tiny());
        s.begin_drain();
        let r = s.handle_line(&proto::compile_line("d", "hm1", "yalll", SRC), "t");
        assert_eq!(r.code, 503);
        assert!(r.to_line().contains("draining"));
        s.shutdown();
    }

    #[test]
    fn rate_limiter_answers_429() {
        let mut cfg = tiny();
        cfg.rate_per_client = Some(0);
        let s = Server::start(cfg);
        let r = s.handle_line(&proto::compile_line("r", "hm1", "yalll", SRC), "greedy");
        assert_eq!(r.code, 429);
        assert_eq!(s.counters().rate_limited.load(Ordering::Relaxed), 1);
        s.shutdown();
    }

    #[test]
    fn deadline_expiry_answers_504_and_server_survives() {
        let mut cfg = tiny();
        cfg.workers = 1;
        cfg.queue_bound = 64;
        let s = Server::start(cfg);
        // Occupy the single worker with a queue of distinct exact-search
        // compiles (unique sources defeat the process-global cache),
        // then submit a victim whose deadline is already past. The
        // victim's completion can only be *answered* by the supervisor,
        // which deadline-scans after every answered filler — so as long
        // as the victim lands in `pending` before the last filler's
        // outcome is drained, a scan sees it overdue and condemns it
        // first. The filler queue is tens of milliseconds deep against a
        // sub-millisecond submission gap.
        let mut fillers = Vec::new();
        for f in 0..8 {
            let mut filler_src = format!("; filler {f} pid {}\n", std::process::id());
            for r in 0..8 {
                filler_src.push_str(&format!("reg x{r} = R{r}\nconst x{r}, {r}\n"));
            }
            for i in 0..10 {
                for r in 0..8 {
                    filler_src.push_str(&format!("add x{r}, x{r}, {}\n", i + 1));
                }
            }
            filler_src.push_str("exit x0\n");
            let filler_line = format!(
                "{{\"op\":\"compile\",\"id\":\"filler{f}\",\"machine\":\"hm1\",\"lang\":\"yalll\",\"algo\":\"optimal\",\"src\":\"{}\"}}",
                mcc_harness::json::esc(&filler_src)
            );
            match s.submit_line(&filler_line, "t") {
                Submitted::Pending(rx) => fillers.push(rx),
                Submitted::Done(r) => panic!("filler rejected: {}", r.to_line()),
            }
        }
        let victim_line = format!(
            "{{\"op\":\"compile\",\"id\":\"victim\",\"machine\":\"hm1\",\"lang\":\"yalll\",\"deadline_ms\":0,\"src\":\"{}\"}}",
            mcc_harness::json::esc(SRC)
        );
        let r = s.handle_line(&victim_line, "t");
        assert_eq!(r.code, 504, "got: {}", r.to_line());
        for filler in fillers {
            let f = filler.recv_timeout(Duration::from_secs(60)).expect("filler answered");
            assert_eq!(f.code, 200, "filler got: {}", f.to_line());
        }
        // The daemon still serves after a condemnation.
        let r = s.handle_line(&proto::compile_line("after", "hm1", "yalll", SRC), "t");
        assert_eq!(r.code, 200, "got: {}", r.to_line());
        assert_eq!(s.counters().deadline_expired.load(Ordering::Relaxed), 1);
        s.shutdown();
    }

    #[test]
    fn tier_options_ladder_applies() {
        let base = CompilerOptions::default();
        let t0 = options_for_tier(base.clone(), 0);
        assert_eq!(t0.bb_budget, base.bb_budget);
        let t1 = options_for_tier(base.clone(), 1);
        assert!(t1.bb_budget < base.bb_budget);
        let t3 = options_for_tier(base.clone(), 3);
        assert_eq!(t3.algorithm, mcc_compact::Algorithm::Sequential);
        assert_eq!(persist_for_tier(0), Persist::Disk);
        assert_eq!(persist_for_tier(2), Persist::Memory);
        assert_eq!(persist_for_tier(3), Persist::Memory);
    }

    #[test]
    fn overload_sheds_with_503_and_every_request_answers() {
        // 1-worker, bound-2 server: a burst of slow-ish requests must
        // shed deterministically past the bound, and every submission
        // still resolves to exactly one response.
        let s = Server::start(ServeConfig {
            workers: 1,
            queue_bound: 2,
            deadline: Duration::from_millis(5_000),
            ..ServeConfig::default()
        });
        let mut pendings = Vec::new();
        let mut immediate = Vec::new();
        for i in 0..8 {
            // Distinct sources defeat the cache so each compile costs
            // real work and the queue actually fills.
            let src = format!("reg a = R0\nconst a, {i}\nadd a, a, 1\nexit a\n");
            match s.submit_line(&proto::compile_line(&format!("b{i}"), "hm1", "yalll", &src), "t") {
                Submitted::Done(r) => immediate.push(r),
                Submitted::Pending(rx) => pendings.push(rx),
            }
        }
        assert!(
            immediate.iter().all(|r| r.code == 503),
            "immediate resolutions in a burst are sheds"
        );
        assert!(
            !immediate.is_empty(),
            "a burst of 8 against bound 2 must shed"
        );
        let mut answered = 0;
        for rx in pendings {
            let r = rx.recv_timeout(Duration::from_secs(30)).expect("response");
            assert_eq!(r.code, 200);
            answered += 1;
        }
        assert_eq!(
            answered + immediate.len(),
            8,
            "exactly one response per request"
        );
        assert!(s.counters().shed.load(Ordering::Relaxed) > 0);
        s.shutdown();
    }
}
