//! The server-side idempotency window: a bounded LRU keyed on
//! `(client_id, request_id)` that makes retries exactly-once.
//!
//! A client that loses a connection after the server executed its request
//! (but before the response arrived) retries the *same* enveloped frame on a
//! fresh connection. The window recognises the key and replays the recorded
//! response instead of re-executing — the reconnect-and-resend path in
//! `TcpBackend::call` is safe because of this window, not in spite of it.
//!
//! Three states per key:
//!
//! * absent — first sighting, the caller executes ([`Claim::Fresh`]);
//! * in flight — a duplicate arrived while the original is still executing
//!   (the chaos proxy's duplicate-delivery fault does exactly this); the
//!   duplicate parks on a channel and receives the original's response
//!   ([`Claim::Wait`]);
//! * done — the response is recorded and replayed verbatim ([`Claim::Replay`]).
//!
//! Transient rejections (`429` rate-limited, `503` shed/draining) are **not**
//! recorded: a retry of a shed request must get a fresh chance at admission,
//! so the caller passes `record = false` and the key is forgotten.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

/// The caller's verdict on one `(cid, rid)` sighting.
pub enum Claim {
    /// First sighting: execute, then [`DedupWindow::resolve`].
    Fresh,
    /// Seen and finished: send this recorded response, do not execute.
    Replay(String),
    /// Seen and still executing: wait for the original's response.
    Wait(Receiver<String>),
}

enum Entry {
    Inflight(Vec<Sender<String>>),
    Done(String),
}

struct Inner {
    entries: HashMap<(String, u64), Entry>,
    /// Insertion order for eviction; may hold stale keys of unrecorded
    /// entries, skipped lazily.
    order: VecDeque<(String, u64)>,
}

/// Bounded idempotency window. All operations are O(1) amortised; eviction
/// scans past in-flight entries (rotating them to the back) with a bounded
/// number of steps.
pub struct DedupWindow {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl DedupWindow {
    /// A window remembering at most `capacity` request keys.
    pub fn new(capacity: usize) -> DedupWindow {
        DedupWindow {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Claims one `(cid, rid)` sighting.
    pub fn claim(&self, cid: &str, rid: u64) -> Claim {
        let key = (cid.to_string(), rid);
        let mut g = self.inner.lock().unwrap();
        if let Some(entry) = g.entries.get_mut(&key) {
            return match entry {
                Entry::Done(resp) => Claim::Replay(resp.clone()),
                Entry::Inflight(waiters) => {
                    let (tx, rx) = channel();
                    waiters.push(tx);
                    Claim::Wait(rx)
                }
            };
        }
        g.entries.insert(key.clone(), Entry::Inflight(Vec::new()));
        g.order.push_back(key);
        self.evict(&mut g);
        Claim::Fresh
    }

    /// Records (or forgets, when `record` is false) the response for a key
    /// previously claimed [`Claim::Fresh`], and wakes any parked duplicates
    /// with the response either way.
    pub fn resolve(&self, cid: &str, rid: u64, response: &str, record: bool) {
        let key = (cid.to_string(), rid);
        let mut g = self.inner.lock().unwrap();
        let waiters = match g.entries.get_mut(&key) {
            Some(Entry::Inflight(w)) => std::mem::take(w),
            _ => Vec::new(),
        };
        if record {
            g.entries.insert(key, Entry::Done(response.to_string()));
        } else {
            // Transient rejection: forget the key so a retry re-attempts
            // admission. The stale order slot is skipped at eviction time.
            g.entries.remove(&key);
        }
        drop(g);
        for w in waiters {
            let _ = w.send(response.to_string());
        }
    }

    /// Number of keys currently remembered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// True when no keys are remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn evict(&self, g: &mut Inner) {
        let mut scans = g.order.len();
        while g.entries.len() > self.capacity && scans > 0 {
            scans -= 1;
            let Some(key) = g.order.pop_front() else { break };
            match g.entries.get(&key) {
                // Stale slot (entry was forgotten by an unrecorded resolve).
                None => continue,
                // Never evict a request that is still executing — rotate it
                // to the back and keep scanning.
                Some(Entry::Inflight(_)) => g.order.push_back(key),
                Some(Entry::Done(_)) => {
                    g.entries.remove(&key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_returns_recorded_response_without_reexecution() {
        let w = DedupWindow::new(8);
        assert!(matches!(w.claim("c", 1), Claim::Fresh));
        w.resolve("c", 1, "resp-1\n", true);
        match w.claim("c", 1) {
            Claim::Replay(r) => assert_eq!(r, "resp-1\n"),
            _ => panic!("expected replay"),
        }
        // Replays are repeatable.
        assert!(matches!(w.claim("c", 1), Claim::Replay(_)));
    }

    #[test]
    fn distinct_request_ids_never_dedup() {
        let w = DedupWindow::new(8);
        assert!(matches!(w.claim("c", 1), Claim::Fresh));
        w.resolve("c", 1, "resp-1\n", true);
        assert!(matches!(w.claim("c", 2), Claim::Fresh), "new rid executes");
        assert!(matches!(w.claim("d", 1), Claim::Fresh), "new cid executes");
    }

    #[test]
    fn eviction_at_capacity_drops_oldest_done_entry() {
        let w = DedupWindow::new(3);
        for rid in 0..3 {
            assert!(matches!(w.claim("c", rid), Claim::Fresh));
            w.resolve("c", rid, "r\n", true);
        }
        assert_eq!(w.len(), 3);
        assert!(matches!(w.claim("c", 3), Claim::Fresh));
        w.resolve("c", 3, "r\n", true);
        assert_eq!(w.len(), 3, "window stays bounded");
        // The oldest key (rid 0) was evicted: it executes again.
        assert!(matches!(w.claim("c", 0), Claim::Fresh));
        // A newer key is still remembered.
        assert!(matches!(w.claim("c", 3), Claim::Replay(_)));
    }

    #[test]
    fn eviction_skips_inflight_entries() {
        let w = DedupWindow::new(2);
        assert!(matches!(w.claim("c", 0), Claim::Fresh)); // stays in flight
        assert!(matches!(w.claim("c", 1), Claim::Fresh));
        w.resolve("c", 1, "r\n", true);
        assert!(matches!(w.claim("c", 2), Claim::Fresh)); // forces eviction
        // rid 1 (done) was evicted, not rid 0 (in flight).
        assert!(matches!(w.claim("c", 0), Claim::Wait(_)));
        assert!(matches!(w.claim("c", 1), Claim::Fresh));
    }

    #[test]
    fn duplicate_in_flight_waits_and_gets_the_original_response() {
        let w = DedupWindow::new(8);
        assert!(matches!(w.claim("c", 7), Claim::Fresh));
        let rx = match w.claim("c", 7) {
            Claim::Wait(rx) => rx,
            _ => panic!("expected wait"),
        };
        w.resolve("c", 7, "the-answer\n", true);
        assert_eq!(rx.recv().unwrap(), "the-answer\n");
    }

    #[test]
    fn transient_rejections_are_not_recorded() {
        let w = DedupWindow::new(8);
        assert!(matches!(w.claim("c", 9), Claim::Fresh));
        w.resolve("c", 9, "shed\n", false);
        assert!(w.is_empty());
        // The retry executes afresh instead of replaying the 503.
        assert!(matches!(w.claim("c", 9), Claim::Fresh));
    }
}
