//! Structured per-request trace records: a JSONL append log with the
//! campaign journal's sealing discipline ([`mcc_harness::journal`]) —
//! every line carries an FNV-1a seal over its body and a dense sequence
//! number, so a torn tail (a crash mid-append, a truncated copy) is
//! detectable and replay recovers exactly the durable prefix.
//!
//! One record per resolved compile request:
//!
//! ```text
//! {"seq":1,"client":"c1","tenant":"acme","class":"interactive",
//!  "id":"r1","code":200,"tier":0,"us":412,"sum":"<fnv1a:016x>"}
//! ```
//!
//! Unlike the campaign journal the trace is *observability, not
//! recovery*: records are buffered and flushed per record but not
//! fsync'd (the serve path must not pay an fsync per request), so a
//! power loss can lose buffered lines — but never corrupt the readable
//! prefix, which is the property [`replay`] checks and the diurnal
//! bench gates on.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use mcc_harness::json::{esc, get_num, get_str, parse_object};
use mcc_harness::journal::fnv1a;

use crate::qos::Class;

/// One per-request trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Dense 1-based sequence number.
    pub seq: u64,
    /// Transport client identity the frame arrived under.
    pub client: String,
    /// Resolved tenant (defaults to the client id on bare frames).
    pub tenant: String,
    /// Priority class the request ran at.
    pub class: Class,
    /// Request id echoed from the frame.
    pub id: String,
    /// Response code.
    pub code: u16,
    /// Pressure tier (meaningful for admitted requests; 0 otherwise).
    pub tier: u8,
    /// Latency in microseconds, intake to resolution.
    pub us: u64,
}

impl TraceRecord {
    /// Renders the sealed JSONL line.
    fn to_line(&self, seq: u64) -> String {
        let body = format!(
            "{{\"seq\":{seq},\"client\":\"{}\",\"tenant\":\"{}\",\"class\":\"{}\",\"id\":\"{}\",\"code\":{},\"tier\":{},\"us\":{}}}",
            esc(&self.client),
            esc(&self.tenant),
            self.class.name(),
            esc(&self.id),
            self.code,
            self.tier,
            self.us
        );
        let sum = fnv1a(body.as_bytes());
        format!("{},\"sum\":\"{sum:016x}\"}}\n", &body[..body.len() - 1])
    }

    /// Parses and verifies one sealed line. `None` for anything torn:
    /// missing seal, bad checksum, missing fields.
    fn from_line(line: &str) -> Option<(u64, TraceRecord)> {
        let line = line.trim_end_matches('\n');
        let idx = line.rfind(",\"sum\":\"")?;
        let hex = line.get(idx + 8..idx + 24)?;
        // Seals are canonical lowercase hex; `from_str_radix` alone
        // would also accept a case-flipped seal as intact.
        if !hex.chars().all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c)) {
            return None;
        }
        let sum = u64::from_str_radix(hex, 16).ok()?;
        if !line.ends_with("\"}") || line.len() != idx + 26 {
            return None;
        }
        let body = format!("{}}}", &line[..idx]);
        if fnv1a(body.as_bytes()) != sum {
            return None;
        }
        let m = parse_object(&body)?;
        let seq = get_num(&m, "seq")?;
        let class = Class::parse(Some(&get_str(&m, "class")?)).ok()?;
        Some((
            seq,
            TraceRecord {
                seq,
                client: get_str(&m, "client")?,
                tenant: get_str(&m, "tenant")?,
                class,
                id: get_str(&m, "id")?,
                code: u16::try_from(get_num(&m, "code")?).ok()?,
                tier: u8::try_from(get_num(&m, "tier")?).ok()?,
                us: get_num(&m, "us")?,
            },
        ))
    }
}

/// The append-side writer. One per server, behind the server's mutex.
pub struct TraceWriter {
    out: BufWriter<File>,
    seq: u64,
}

impl TraceWriter {
    /// Creates (truncating) the trace at `path`. Each server run owns
    /// its trace file; replay is for post-mortems, not resume.
    pub fn create(path: &Path) -> std::io::Result<TraceWriter> {
        Ok(TraceWriter {
            out: BufWriter::new(File::create(path)?),
            seq: 0,
        })
    }

    /// Appends one sealed record, stamping the next sequence number.
    pub fn record(&mut self, rec: &TraceRecord) {
        self.seq += 1;
        let line = rec.to_line(self.seq);
        // A full disk degrades tracing, never the serve path.
        let _ = self.out.write_all(line.as_bytes());
        let _ = self.out.flush();
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.seq
    }
}

/// Replays a trace file: every sealed, sequence-dense record from the
/// start, stopping at the first torn line. Returns the records plus
/// whether a torn tail was dropped.
pub fn replay(path: &Path) -> std::io::Result<(Vec<TraceRecord>, bool)> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    let mut torn = false;
    let mut buf = String::new();
    loop {
        buf.clear();
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            break;
        }
        if !buf.ends_with('\n') {
            // No newline made it to disk: classic torn tail.
            torn = true;
            break;
        }
        match TraceRecord::from_line(&buf) {
            Some((seq, rec)) if seq == records.len() as u64 + 1 => records.push(rec),
            _ => {
                // Torn, corrupt, or out of sequence: drop it and
                // everything after — the prefix is the durable truth.
                torn = true;
                break;
            }
        }
    }
    Ok((records, torn))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            seq: i,
            client: format!("c{i}"),
            tenant: "acme".to_string(),
            class: Class::Batch,
            id: format!("r{i}"),
            code: 200,
            tier: (i % 4) as u8,
            us: i * 37,
        }
    }

    #[test]
    fn records_round_trip_through_the_seal() {
        let r = rec(1);
        let line = r.to_line(1);
        let (seq, back) = TraceRecord::from_line(&line).expect("sealed line parses");
        assert_eq!(seq, 1);
        assert_eq!(back, r);
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let line = rec(1).to_line(1);
        for i in 0..line.len() - 1 {
            let mut bytes = line.clone().into_bytes();
            bytes[i] ^= 0x20;
            let flipped = String::from_utf8_lossy(&bytes).into_owned();
            if flipped == line {
                continue;
            }
            assert!(
                TraceRecord::from_line(&flipped).is_none(),
                "flip at {i} accepted: {flipped}"
            );
        }
    }

    #[test]
    fn replay_recovers_the_prefix_and_drops_the_torn_tail() {
        let dir = std::env::temp_dir().join(format!("mcc-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");

        let mut w = TraceWriter::create(&path).unwrap();
        for i in 1..=5 {
            w.record(&rec(i));
        }
        drop(w);

        // Clean file: everything replays, nothing torn.
        let (recs, torn) = replay(&path).unwrap();
        assert_eq!(recs.len(), 5);
        assert!(!torn);
        assert_eq!(recs[4].client, "c5");

        // Tear the tail: append half a record (no newline, no seal).
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(b"{\"seq\":6,\"client\":\"c6\",\"tena");
        std::fs::write(&path, &raw).unwrap();
        let (recs, torn) = replay(&path).unwrap();
        assert_eq!(recs.len(), 5, "prefix survives the torn tail");
        assert!(torn);

        // Corrupt a middle record: replay stops there.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"code\":200", "\"code\":500", 1);
        std::fs::write(&path, corrupted).unwrap();
        let (recs, torn) = replay(&path).unwrap();
        assert_eq!(recs.len(), 0, "corruption in record 1 drops the rest");
        assert!(torn);

        std::fs::remove_dir_all(&dir).ok();
    }
}
