//! The survey's §2.1.5 microtrap hazard, end to end.
//!
//! ```text
//! program incread(n)
//! begin reg[n] := reg[n]+1; mbr := readmem(reg[n]) end
//! ```
//!
//! "The memory fetch may lead to a pagefault. The microprogram will be
//! restarted from the beginning after the pagefault has been taken care
//! of. If reg[n] corresponds to a register which is also part of the
//! macroarchitecture and is therefore saved and restored, it will be
//! erroneously incremented a second time."
//!
//! This example (1) compiles `incread`, (2) shows the compiler's
//! trap-safety warning, (3) demonstrates the double increment in the
//! simulator, and (4) shows the restart-safe rewrite.
//!
//! ```sh
//! cargo run --example incread_trap
//! ```

use mcc::core::Compiler;
use mcc::machine::machines::hm1;
use mcc::sim::{SimOptions, PAGE_WORDS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = hm1();
    let compiler = Compiler::new(m.clone());

    // The buggy original: R0 (macro-visible) incremented before the read.
    let buggy = "\
program incread;
begin
    R0 + 1 -> R0;
    comment the load below may pagefault and restart the program;
end";
    let _ = buggy; // SIMPL has no memory ops; build the load in YALLL:
    let buggy = "\
reg n = R0
reg data = R5
inc n
load data, n
exit data
";
    let art = compiler.compile_yalll(buggy)?;

    println!("=== compiler warnings for incread ===");
    for w in &art.warnings {
        println!("  warning: {}", w.message);
    }
    assert!(
        !art.warnings.is_empty(),
        "the trap-safety analysis must flag incread"
    );

    // Run with the touched page unmapped: the restart double-increments.
    let n0: u64 = 0x1000 - 1; // incremented to 0x1000 → page 16 faults
    let page = 0x1000 / PAGE_WORDS;
    let r0 = m.resolve_reg_name("R0").unwrap();

    let mut sim = art.simulator();
    sim.set_reg(r0, n0);
    let stats = sim.run(&SimOptions {
        unmapped_pages: vec![page],
        ..Default::default()
    })?;
    let n_after = sim.reg(r0);
    println!("\n=== buggy incread ===");
    println!("  n before: {n0:#06x}");
    println!("  n after : {n_after:#06x}   (traps: {}, restarts: {})", stats.traps, stats.restarts);
    assert_eq!(n_after, n0 + 2, "the paper's double increment");
    println!("  ✗ n was incremented TWICE — the paper's bug, reproduced");

    // The restart-safe version: compute the address in a scratch register
    // and commit to R0 only after the faultable read. The scratch is
    // bound EXPLICITLY: left symbolic, the register allocator would
    // happily coalesce it back into R0 (t's live range begins exactly
    // where n's ends) and silently reintroduce the bug — a vivid instance
    // of §2.1.4's allocation/correctness interdependence.
    let safe = "\
reg n = R0
reg t = R4
reg data = R5
move t, n
inc t
load data, t
move n, t
exit data
";
    let art = compiler.compile_yalll(safe)?;
    assert!(
        art.warnings.is_empty(),
        "safe version should not warn: {:?}",
        art.warnings
    );
    let mut sim = art.simulator();
    sim.set_reg(r0, n0);
    let stats = sim.run(&SimOptions {
        unmapped_pages: vec![page],
        ..Default::default()
    })?;
    println!("\n=== restart-safe incread ===");
    println!("  n after : {:#06x}   (traps: {})", sim.reg(r0), stats.traps);
    assert_eq!(sim.reg(r0), n0 + 1);
    println!("  ✓ exactly one increment despite the pagefault restart");
    Ok(())
}
