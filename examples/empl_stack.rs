//! The survey's §2.2.2 EMPL example: a `STACK` extension type with
//! `PUSH`/`POP` operations, plus EMPL's symbolic variables, operator
//! declarations and the multiply nobody's hardware had.
//!
//! EMPL is the frontend that exercises the register allocator: none of
//! its variables name machine registers.
//!
//! ```sh
//! cargo run --example empl_stack
//! ```

use mcc::core::Compiler;
use mcc::machine::machines::{hm1, wm64};

const SRC: &str = "
/* The paper's extension statement, §2.2.2 */
TYPE STACK
  DECLARE STK(16) FIXED;
  DECLARE STKPTR FIXED;
  INITIALLY DO; STKPTR = 0; END;
  PUSH: OPERATION ACCEPTS (VALUE);
    MICROOP PUSH 3 0;   /* a PUSH micro-op would be used if the machine had one */
    IF STKPTR = 16 THEN ERROR;
    ELSE DO; STKPTR = STKPTR + 1; STK(STKPTR) = VALUE; END;
  END;
  POP: OPERATION RETURNS (VALUE);
    MICROOP POP 3 0;
    IF STKPTR = 0 THEN ERROR;
    ELSE DO; VALUE = STK(STKPTR); STKPTR = STKPTR - 1; END;
  END;
ENDTYPE;

DECLARE ADDRESS_STK STACK;
DECLARE X FIXED; DECLARE Y FIXED; DECLARE Z FIXED;

/* reverse three values through the stack */
X = 6; Y = 7;
Z = X * Y;              /* multiply: expanded to a shift-add loop */
PUSH(ADDRESS_STK, X);
PUSH(ADDRESS_STK, Y);
PUSH(ADDRESS_STK, Z);
X = POP(ADDRESS_STK);   /* 42 */
Y = POP(ADDRESS_STK);   /* 7  */
Z = POP(ADDRESS_STK);   /* 6  */
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for m in [hm1(), wm64()] {
        let name = m.name.clone();
        let compiler = Compiler::new(m);
        let art = compiler.compile_empl(SRC)?;
        let (sim, stats) = art.run()?;

        let x = art.read_symbol(&sim, "X").unwrap();
        let y = art.read_symbol(&sim, "Y").unwrap();
        let z = art.read_symbol(&sim, "Z").unwrap();
        let err = art.read_symbol(&sim, "ERROR").unwrap();

        println!("EMPL stack example on {name}:");
        println!(
            "  {} µinstrs, {} spills, {} cycles; memory arrays: {:?}",
            art.stats.micro_instrs, art.stats.spills, stats.cycles,
            art.memory_symbols.keys().collect::<Vec<_>>(),
        );
        println!("  X={x} Y={y} Z={z} ERROR={err}");
        assert_eq!((x, y, z, err), (42, 7, 6, 0));
        println!("  ✓ 6×7 pushed and popped back in reverse\n");
    }

    // Stack overflow trips the ERROR path.
    let overflow = "
TYPE S
  DECLARE A(2) FIXED;
  DECLARE P FIXED;
  INITIALLY DO; P = 0; END;
  PUSH: OPERATION ACCEPTS (V);
    IF P = 2 THEN ERROR; ELSE DO; P = P + 1; A(P) = V; END;
  END;
ENDTYPE;
DECLARE T S;
DECLARE I FIXED;
I = 0;
PUSH(T, I); PUSH(T, I); PUSH(T, I);
";
    let compiler = Compiler::new(hm1());
    let art = compiler.compile_empl(overflow)?;
    let (sim, _) = art.run()?;
    assert_eq!(art.read_symbol(&sim, "ERROR"), Some(1));
    println!("overflowing a 2-slot stack sets ERROR=1  ✓ (the paper's guard)");
    Ok(())
}
