program mpy;
# the survey's section 2.2.3 example: multiply by repeated addition #
var localstore: array [0..31] of seq [15..0] bit with LS;
const minus1 = 0xFFFF;
var left_alu_in: seq [15..0] bit with R1;
var right_alu_in: seq [15..0] bit with R2;
var aluout: seq [15..0] bit with R3;
syn mpr = localstore[0],
    mpnd = localstore[1],
    product = localstore[2];
begin
    mpr := 6;
    mpnd := 7;
    product := 0;
    assert(product = 0);
    repeat
        cocycle
            left_alu_in := product;
            right_alu_in := mpnd;
            aluout := left_alu_in + right_alu_in;
            product := aluout
        end;
        cocycle
            left_alu_in := mpr;
            right_alu_in := minus1;
            aluout := left_alu_in + right_alu_in;
            mpr := aluout
        end
    until aluout = 0;
end
