//! The survey's §2.2.4 YALLL example: transliterate a null-terminated
//! string through a table — compiled for **two different machines** by
//! changing only the register-binding header, exactly as the paper did
//! for the HP300 and the VAX-11.
//!
//! The clean HM-1 stands in for the HP300; the baroque BX-2 for the VAX.
//! "The HP implementation performed a lot better than the VAX
//! implementation" — watch the cycle counts.
//!
//! ```sh
//! cargo run --example transliterate
//! ```

use mcc::core::{Artifact, Compiler};
use mcc::machine::machines::{bx2, hm1};
use mcc::machine::MachineDesc;
use mcc::sim::SimOptions;

/// The program body is machine-independent; only the header binds names
/// to machine registers (paper: the versions "differ only in the
/// declaration part").
fn program(header: &str) -> String {
    format!(
        "\
{header}
loop: load char, str       ; get addressed character
    jump out if char = 0    ; quit if zero
    add addr, char, tbl     ; add to table base address
    load char, addr         ; fetch character from table
    stor char, str          ; replace character in string
    add str, str, 1         ; bump string address
    jump loop
out: exit
"
    )
}

fn run_on(m: MachineDesc, header: &str) -> Result<(Artifact, u64), Box<dyn std::error::Error>> {
    let compiler = Compiler::new(m);
    let art = compiler.compile_yalll(&program(header))?;

    let mut sim = art.simulator();
    // String "HELLO" at 0x100 (one char per word), table at 0x200 maps
    // letters to lowercase (c + 32).
    let text = b"HELLO";
    for (i, &c) in text.iter().enumerate() {
        sim.set_mem(0x100 + i as u64, c as u64);
    }
    sim.set_mem(0x100 + text.len() as u64, 0);
    for c in 0..=255u64 {
        let mapped = if (65..=90).contains(&c) { c + 32 } else { c };
        sim.set_mem(0x200 + c, mapped);
    }
    let stats = sim.run(&SimOptions::default())?;

    let out: Vec<u8> = (0..text.len())
        .map(|i| sim.mem(0x100 + i as u64) as u8)
        .collect();
    assert_eq!(&out, b"hello", "transliteration wrong on {}", art.machine.name);
    Ok((art, stats.cycles))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // HM-1 header: plenty of registers.
    let (hm_art, hm_cycles) = run_on(hm1(), "reg str = R1\nreg tbl = R2\nreg char = R3\nreg addr = R4\nconst str, 0x100\nconst tbl, 0x200")?;
    // BX-2 header: the same program, G registers.
    let (bx_art, bx_cycles) = run_on(bx2(), "reg str = G1\nreg tbl = G2\nreg char = G3\nreg addr = G4\nconst str, 0x100\nconst tbl, 0x200")?;

    println!("YALLL transliterate, one source, two machines (paper §2.2.4):");
    println!(
        "  {:<18} {:>12} {:>10} {:>12}",
        "machine", "microinstrs", "cycles", "word bits"
    );
    for (art, cycles) in [(&hm_art, hm_cycles), (&bx_art, bx_cycles)] {
        println!(
            "  {:<18} {:>12} {:>10} {:>12}",
            art.machine.name,
            art.stats.micro_instrs,
            cycles,
            art.machine.control_word_bits()
        );
    }
    println!(
        "\n  HM-1 runs {:.2}x faster — \"the HP implementation performed a lot\n  \
         better than the VAX implementation\"",
        bx_cycles as f64 / hm_cycles as f64
    );
    assert!(bx_cycles > hm_cycles);
    Ok(())
}
