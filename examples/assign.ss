program assign;
# smallest S* program with a WP-verified assertion #
var x: seq [15..0] bit;
begin
    x := 3;
    assert(x = 3);
end
