//! MPGL's unique idea (§2.2.5): "a complete machine specification is part
//! of the program and the compiler uses this specification to generate
//! code". This example defines a brand-new 8-bit microarchitecture in MDL
//! text, parses it, and compiles + runs a YALLL program for it — no Rust
//! code describes the machine.
//!
//! ```sh
//! cargo run --example custom_machine
//! ```

use mcc::core::Compiler;
use mcc::machine::mdl;

/// "PICO-8": an 8-bit machine with 8 registers, a two-phase cycle, an ALU
/// and a move path that can run in parallel.
const PICO8: &str = "\
machine PICO-8 width 8 phases 2
file R count 8 width 8 macro
file S count 2 width 8
file F count 1 width 8
special mar = S 0
special mbr = S 1
special flags = F 0
service interrupt 20 trap 100
class gp = R[0..8]
class mv = R[0..8], S[0..2]
resource alu kind alu
resource bus kind bus
resource mem kind memory
resource seq kind sequencer
field alu_op width 4
field alu_a width 3
field alu_b width 3
field alu_d width 3
field alu_sel width 1
field mv_op width 2
field mv_s width 4
field mv_d width 4
field mem_op width 2
field imm width 8
field seq_op width 3
field cond width 3
field addr width 8
cond true
cond zero
cond notzero
cond neg
cond notneg
cond carry
cond notcarry
cond uf
template add semantic alu.add
  dst gp
  src gp
  src gp
  flags
  set alu_op = const 1
  set alu_sel = const 0
  set alu_a = src 0
  set alu_b = src 1
  set alu_d = dst
  occupy alu 0..2
end
template sub semantic alu.sub
  dst gp
  src gp
  src gp
  flags
  set alu_op = const 2
  set alu_sel = const 0
  set alu_a = src 0
  set alu_b = src 1
  set alu_d = dst
  occupy alu 0..2
end
template and semantic alu.and
  dst gp
  src gp
  src gp
  flags
  set alu_op = const 3
  set alu_sel = const 0
  set alu_a = src 0
  set alu_b = src 1
  set alu_d = dst
  occupy alu 0..2
end
template or semantic alu.or
  dst gp
  src gp
  src gp
  flags
  set alu_op = const 4
  set alu_sel = const 0
  set alu_a = src 0
  set alu_b = src 1
  set alu_d = dst
  occupy alu 0..2
end
template xor semantic alu.xor
  dst gp
  src gp
  src gp
  flags
  set alu_op = const 5
  set alu_sel = const 0
  set alu_a = src 0
  set alu_b = src 1
  set alu_d = dst
  occupy alu 0..2
end
template pass semantic alu.pass
  dst gp
  src gp
  flags
  set alu_op = const 6
  set alu_sel = const 0
  set alu_a = src 0
  set alu_d = dst
  occupy alu 0..2
end
template addi semantic alu.add
  dst gp
  src gp
  imm 8
  flags
  set alu_op = const 1
  set alu_sel = const 1
  set alu_a = src 0
  set alu_d = dst
  set imm = imm
  occupy alu 0..2
end
template subi semantic alu.sub
  dst gp
  src gp
  imm 8
  flags
  set alu_op = const 2
  set alu_sel = const 1
  set alu_a = src 0
  set alu_d = dst
  set imm = imm
  occupy alu 0..2
end
template shr semantic shift.shr
  dst gp
  src gp
  imm 3
  flags
  set alu_op = const 7
  set alu_sel = const 0
  set alu_a = src 0
  set alu_d = dst
  set imm = imm
  occupy alu 0..2
end
template shl semantic shift.shl
  dst gp
  src gp
  imm 3
  flags
  set alu_op = const 8
  set alu_sel = const 0
  set alu_a = src 0
  set alu_d = dst
  set imm = imm
  occupy alu 0..2
end
template mov semantic move
  dst mv
  src mv
  set mv_op = const 1
  set mv_s = src 0
  set mv_d = dst
  occupy bus 0..1
end
template ldi semantic loadimm
  dst mv
  imm 8
  set mv_op = const 2
  set mv_d = dst
  set imm = imm
  occupy bus 0..1
end
template read semantic memread
  reads S 0
  writes S 1
  set mem_op = const 1
  occupy mem 0..2
end
template write semantic memwrite
  reads S 0
  reads S 1
  set mem_op = const 2
  occupy mem 0..2
end
template jmp semantic jump
  target
  set seq_op = const 1
  set addr = target
  occupy seq 1..2
end
template br semantic branch
  cond
  target
  set seq_op = const 2
  set cond = cond
  set addr = target
  occupy seq 1..2
end
template halt semantic halt
  set seq_op = const 3
  occupy seq 1..2
end
template poll semantic poll
  set seq_op = const 4
  occupy seq 1..2
end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = mdl::parse(PICO8)?;
    machine.validate()?;
    println!(
        "parsed `{}` from MDL: {}-bit control word, {} templates",
        machine.name,
        machine.control_word_bits(),
        machine.templates.len()
    );

    // Sum 1..=10 on the brand-new machine.
    let src = "\
reg n = R0
reg acc = R1
const n, 10
const acc, 0
loop: jump done if n = 0
    add acc, acc, n
    sub n, n, 1
    jump loop
done: exit acc
";
    let compiler = Compiler::new(machine);
    let art = compiler.compile_yalll(src)?;
    let (sim, stats) = art.run()?;
    let acc = art.read_symbol(&sim, "acc").unwrap();
    println!(
        "sum(1..=10) on PICO-8 = {acc} in {} cycles ({} microinstructions)",
        stats.cycles, art.stats.micro_instrs
    );
    assert_eq!(acc, 55);

    // Round-trip: the machine survives serialisation.
    let text = mdl::to_mdl(compiler.machine());
    let back = mdl::parse(&text)?;
    assert_eq!(back.templates.len(), compiler.machine().templates.len());
    println!("MDL round-trip OK — MPGL's machine-specification idea, reproduced");
    Ok(())
}
