//! The survey's §2.2.1 SIMPL example: floating-point multiplication by
//! shift-and-add, adapted from the paper's 64-bit format to HM-1's 16-bit
//! words (sign 1 bit · exponent 5 bits · mantissa 10 bits).
//!
//! Both inputs are assumed positive and overflow is ignored — exactly the
//! simplifications the paper makes. The microcoded result is checked
//! against a Rust model of the same algorithm.
//!
//! ```sh
//! cargo run --example fp_multiply
//! ```

use mcc::core::Compiler;
use mcc::machine::machines::hm1;

/// The paper's algorithm, executed in Rust for reference: the SIMPL loop
/// `while R2 <> 0 do { ACC shr 1; R2 shr 1; if UF then ACC += R1 }`
/// multiplies mantissas high-to-low.
fn reference(r1: u16, r2: u16) -> u16 {
    const M3: u16 = 0x7C00; // exponent field
    const M4: u16 = 0x03FF; // mantissa field
    let mut r3 = 0u16;
    let mut acc = r1 & M3;
    let e2 = r2 & M3;
    acc = acc.wrapping_add(e2);
    r3 |= acc;
    let mut m1 = r1 & M4;
    let mut m2 = r2 & M4;
    acc = 0;
    while m2 != 0 {
        let uf = m2 & 1 != 0;
        acc >>= 1;
        m2 >>= 1;
        if uf {
            acc = acc.wrapping_add(m1);
        }
        let _ = &mut m1;
    }
    r3 | acc
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's program, §2.2.1 (16-bit field masks).
    let src = "\
program fpmul;
const M3 = 0x7C00;
const M4 = 0x03FF;
begin
    R1 & M3 -> ACC;
    R2 & M3 -> R4;
    R4 + ACC -> ACC;
    R3 | ACC -> R3;
    R1 & M4 -> R1;
    R2 & M4 -> R2;
    0 -> ACC;
    while R2 <> 0 do
    begin
        ACC shr 1 -> ACC;
        R2 shr 1 -> R2;
        if UF = 1 then R1 + ACC -> ACC;
    end;
    R3 | ACC -> R3;
end";

    let m = hm1();
    let compiler = Compiler::new(m.clone());
    let art = compiler.compile_simpl(src)?;

    // 1.5 × 2.5 in our toy format: exp bias 15.
    // 1.5  = mantissa 0b1100000000 (1.1₂), exp 15
    // 2.5  = mantissa 0b0100000000 (1.01₂ × 2¹), exp 16
    let a: u16 = (15 << 10) | 0b11_0000_0000;
    let b: u16 = (16 << 10) | 0b01_0000_0000;

    let r1 = m.resolve_reg_name("R1").unwrap();
    let r2 = m.resolve_reg_name("R2").unwrap();
    let r3 = m.resolve_reg_name("R3").unwrap();

    let mut sim = art.simulator();
    sim.set_reg(r1, a as u64);
    sim.set_reg(r2, b as u64);
    let stats = sim.run(&Default::default())?;

    let got = sim.reg(r3) as u16;
    let want = reference(a, b);
    println!("SIMPL fp multiply on {}:", art.machine.name);
    println!("  inputs   : {a:#06x} × {b:#06x}");
    println!("  microcode: {} instructions", art.stats.micro_instrs);
    println!("  cycles   : {}", stats.cycles);
    println!("  result   : {got:#06x} (expected {want:#06x})");
    assert_eq!(got, want, "microcode disagrees with the reference model");
    println!("  ✓ matches the reference model");
    Ok(())
}
