//! S\* (§2.2.3): explicit parallelism and machine-verified assertions.
//!
//! The paper's MPY program multiplies by repeated addition, developed
//! together with its correctness conditions. This example shows the three
//! pillars of the S\* design as reproduced by the toolkit:
//!
//! 1. **explicit composition** — a `cobegin` group must fit one
//!    microinstruction; the compiler *checks* rather than schedules,
//!    and rejects groups the hardware cannot take;
//! 2. **machine-bound data** — `localstore` is the LS register file,
//!    `syn` renames its cells;
//! 3. **verification** — `assert(…)` feeds Hoare triples to the
//!    weakest-precondition checker *and* compiles to runtime checks.
//!
//! ```sh
//! cargo run --example sstar_verified
//! ```

use mcc::core::Compiler;
use mcc::machine::machines::hm1;
use mcc::verify::Verdict;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Multiplication by repeated addition, paper-style, with assertions.
    let src = "\
program mpy;
var localstore: array [0..31] of seq [15..0] bit with LS;
var a: seq [15..0] bit with R1;
var counter: seq [15..0] bit with R2;
var product: seq [15..0] bit with R3;
syn mpr = localstore[0], mpnd = localstore[1];
begin
    mpr := 7;
    mpnd := 6;
    assert(mpr = 7 and mpnd = 6);
    product := 0;
    a := mpnd;
    counter := mpr;
    # product accumulates a × (mpr - counter) — paper's loop invariant #
    while counter <> 0 do
        # accumulate, then count down #
        product := product + a;
        counter := counter - 1;
    od;
    assert(product = 42);
end";

    let m = hm1();
    let program = mcc::sstar::parse(src, &m)
        .map_err(|e| e.render(src))?;

    // Static verification of the straight-line segments.
    println!("=== static verification (weakest preconditions) ===");
    for (idx, verdict) in program.check_asserts(16) {
        let a = &program.asserts[idx - 1];
        let v = match &verdict {
            Verdict::Valid => "VALID (exhaustive)".to_string(),
            Verdict::ProbablyValid { samples } => format!("probably valid ({samples} samples)"),
            Verdict::Invalid { env } => format!("INVALID, counterexample {env:?}"),
        };
        println!("  assert({}) → {v}", a.text.trim());
    }

    // Compile and run: the runtime checks agree.
    let compiler = Compiler::new(m);
    let art = compiler.compile_sstar(src)?;
    let (sim, stats) = art.run()?;
    let product = art.read_symbol(&sim, "product").unwrap();
    let aflag = art.read_symbol(&sim, "ASSERT").unwrap();
    println!("\n=== execution on {} ===", art.machine.name);
    println!("  product = {product}, assert flag = {aflag}, cycles = {}", stats.cycles);
    assert_eq!(product, 42);
    assert_eq!(aflag, 0, "no runtime assertion fired");

    // Explicit parallelism: a schedulable cobegin (move bus ∥ shifter)…
    let par_ok = "\
program par;
var a: seq [15..0] bit with R1, b: seq [15..0] bit with R2,
    c: seq [15..0] bit with R3;
begin
    a := 3;
    cobegin b := a; c := c shr 1 coend;
end";
    let art = Compiler::new(hm1()).compile_sstar(par_ok)?;
    println!("\ncobegin (mov ∥ shr): OK — {} µinstrs", art.stats.micro_instrs);

    // …and an unschedulable one: two moves need the single move bus.
    let par_bad = "\
program par;
var a: seq [15..0] bit with R1, b: seq [15..0] bit with R2,
    c: seq [15..0] bit with R3, d: seq [15..0] bit with R4;
begin
    cobegin b := a; d := c coend;
end";
    match Compiler::new(hm1()).compile_sstar(par_bad) {
        Err(e) => println!("cobegin (mov ∥ mov): rejected as it must be —\n  {e}"),
        Ok(_) => panic!("HM-1 has one move bus; this must not co-schedule"),
    }
    println!("\n\"the programmer must have intimate knowledge of the specific machine\" — §2.2.3");
    Ok(())
}
