//! Quickstart: compile a small YALLL program for the HM-1 horizontal
//! machine, look at the microcode, and run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mcc::core::Compiler;
use mcc::machine::machines::hm1;
use mcc::machine::format_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // GCD of two numbers, YALLL style. `a` and `b` are bound to machine
    // registers; `t` is symbolic — the compiler allocates it (§2.2.4 of
    // the survey leaves open whether binding is required; we support both).
    let src = "\
; gcd(a, b) by repeated subtraction (Euclid)
reg a = R0
reg b = R1
reg t
const a, 252
const b, 105
loop: jump done if b = 0
    jump swap if a < b
    sub a, a, b
    jump loop
swap: move t, a
    move a, b
    move b, t
    jump loop
done: exit a
";

    let compiler = Compiler::new(hm1());
    let artifact = compiler.compile_yalll(src)?;

    println!("=== microcode for {} ===", artifact.machine.name);
    println!("{}", format_program(&artifact.machine, &artifact.program));
    println!(
        "{} microinstructions, {} micro-operations ({:.2} ops/instr)",
        artifact.stats.micro_instrs,
        artifact.stats.micro_ops,
        artifact.stats.packing_ratio()
    );

    let (sim, stats) = artifact.run()?;
    let gcd = artifact.read_symbol(&sim, "a").expect("symbol a");
    println!("\ngcd(252, 105) = {gcd} in {} cycles", stats.cycles);
    assert_eq!(gcd, 21);

    // The same binary, encoded for the control store:
    let words = artifact.encode()?;
    println!(
        "control store: {} words x {} bits",
        words.len(),
        artifact.machine.control_word_bits()
    );
    Ok(())
}
